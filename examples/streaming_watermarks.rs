//! Event-time streaming: raw, slightly out-of-order sensor streams windowed
//! by watermarks on the local nodes, with late events dropped and counted.
//!
//! ```sh
//! cargo run --release --example streaming_watermarks
//! ```
//!
//! Unlike the other examples (which pre-group events into windows), this one
//! feeds each local node its raw event stream. Every node derives tumbling
//! windows from event timestamps, advances its watermark as `max event time
//! − allowed lateness`, and ships closed windows through the normal Dema
//! protocol. A burst of stale events demonstrates the late-event policy.

use dema::cluster::runner::run_cluster_streaming;
use dema::cluster::ClusterConfig;
use dema::core::event::Event;
use dema::core::quantile::Quantile;
use dema::gen::SoccerGenerator;

fn main() {
    let window_len = 1_000;
    let lateness_ms = 50;

    // Three sensors: mostly in order, but each 100 ms chunk arrives locally
    // shuffled, and node 2 replays a stale burst from 3 seconds ago.
    let mut streams: Vec<Vec<Event>> = (0..3u64)
        .map(|n| {
            let mut events: Vec<Event> = SoccerGenerator::new(n, 1, 5_000, 0)
                .take(5 * 5_000)
                .collect();
            for chunk in events.chunks_mut(200) {
                chunk.reverse(); // bounded out-of-orderness (~40 ms)
            }
            events
        })
        .collect();
    let stale: Vec<Event> = (0..500)
        .map(|i| Event::new(123, 1_000 + i % 500, 900_000 + i))
        .collect();
    streams[2].extend(stale); // arrives after second 4 → far behind watermark

    let config = ClusterConfig::dema_fixed(500, Quantile::MEDIAN);
    let report = run_cluster_streaming(&config, streams, window_len, lateness_ms)
        .expect("streaming run failed");

    println!("window | exact median | events | latency");
    println!("-------+--------------+--------+--------");
    for o in &report.outcomes {
        println!(
            "{:>6} | {:>12} | {:>6} | {:>5} µs",
            o.window.0,
            o.value.map_or("—".into(), |v| v.to_string()),
            o.total_events,
            o.latency_us
        );
    }
    println!();
    println!(
        "late events dropped: {} (stale burst behind the {} ms watermark slack)",
        report.late_events, lateness_ms
    );
    println!(
        "events processed   : {}",
        report.total_events - report.late_events
    );
    assert_eq!(report.late_events, 500);
}
