//! Quickstart: exact decentralized medians over a two-node edge topology.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Two simulated edge nodes each produce 10 000 soccer-sensor events per
//! second. Every second, the cluster computes the *exact* global median
//! while shipping only slice synopses and a handful of candidate events to
//! the root — watch the traffic column.

use dema::cluster::{run_cluster, runner::data_traffic, ClusterConfig};
use dema::core::quantile::Quantile;
use dema::gen::SoccerGenerator;

fn main() {
    let windows = 5;
    let rate = 10_000;
    let gamma = 500;

    // Each node replays the sensor stream from a different position, as in
    // the paper's generator setup.
    let inputs: Vec<_> = (0..2u64)
        .map(|n| SoccerGenerator::new(n, 1, rate, 0).take_windows(windows, 1_000))
        .collect();
    let total_events: usize = inputs.iter().flatten().map(Vec::len).sum();

    let config = ClusterConfig::dema_fixed(gamma, Quantile::MEDIAN);
    let report = run_cluster(&config, inputs).expect("cluster run failed");

    println!("window | exact median | window size | candidates | latency");
    println!("-------+--------------+-------------+------------+--------");
    for o in &report.outcomes {
        println!(
            "{:>6} | {:>12} | {:>11} | {:>10} | {:>5} µs",
            o.window.0,
            o.value.map_or("—".into(), |v| v.to_string()),
            o.total_events,
            o.candidate_events,
            o.latency_us,
        );
    }

    let traffic = data_traffic(&report).plus(&report.control_traffic);
    println!();
    println!("events generated            : {total_events}");
    println!("events-on-wire (synopses + candidates): {}", traffic.events);
    println!(
        "network reduction vs centralized       : {:.1} %",
        100.0 * (1.0 - traffic.events as f64 / total_events as f64)
    );
    println!("bytes on wire               : {}", traffic.bytes);
    println!(
        "throughput                  : {:.0} events/s",
        report.throughput_eps()
    );
}
