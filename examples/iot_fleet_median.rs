//! IoT fleet monitoring: p50/p95 temperature percentiles across a fleet of
//! gateways with very different sensor populations.
//!
//! ```sh
//! cargo run --release --example iot_fleet_median
//! ```
//!
//! The scenario from the paper's introduction: many devices behind a few
//! edge gateways, each gateway seeing a different value distribution (a
//! freezer warehouse, an office floor, a server room, a rooftop array) and a
//! different event rate. Exact percentiles are required — a sketch that is
//! off by half a degree can mask an alarm threshold — but shipping every
//! reading to the cloud would saturate the uplink. Dema ships synopses.

use dema::cluster::{run_cluster, runner::data_traffic, ClusterConfig};
use dema::core::event::Event;
use dema::core::quantile::Quantile;
use dema::gen::{EventStream, StreamConfig, ValueDistribution};

struct Gateway {
    name: &'static str,
    dist: ValueDistribution,
    events_per_second: u64,
}

fn main() {
    // Temperatures in milli-degrees so integers carry the precision.
    let fleet = [
        Gateway {
            name: "freezer-warehouse",
            dist: ValueDistribution::Normal {
                mean: -18_000.0,
                std_dev: 1_500.0,
            },
            events_per_second: 4_000,
        },
        Gateway {
            name: "office-floor",
            dist: ValueDistribution::Normal {
                mean: 21_500.0,
                std_dev: 800.0,
            },
            events_per_second: 1_000,
        },
        Gateway {
            name: "server-room",
            dist: ValueDistribution::Clustered {
                centers: vec![24_000, 31_000],
                spread: 600,
            },
            events_per_second: 8_000,
        },
        Gateway {
            name: "rooftop-array",
            dist: ValueDistribution::RandomWalk {
                start: 15_000,
                max_step: 40,
                lo: -5_000,
                hi: 45_000,
            },
            events_per_second: 2_000,
        },
    ];

    let windows = 4;
    let inputs: Vec<Vec<Vec<Event>>> = fleet
        .iter()
        .enumerate()
        .map(|(i, gw)| {
            EventStream::new(
                gw.dist.clone(),
                StreamConfig {
                    seed: 7 + i as u64,
                    events_per_second: gw.events_per_second,
                    ..Default::default()
                },
            )
            .take_windows(windows, 1_000)
        })
        .collect();

    println!("fleet:");
    for gw in &fleet {
        println!("  {:<18} {:>6} readings/s", gw.name, gw.events_per_second);
    }
    println!();

    for (label, q) in [
        ("p50", Quantile::MEDIAN),
        ("p95", Quantile::new(0.95).unwrap()),
    ] {
        let report = run_cluster(&ClusterConfig::dema_fixed(512, q), inputs.clone())
            .expect("cluster run failed");
        let traffic = data_traffic(&report).plus(&report.control_traffic);
        println!("{label} per one-second window (exact, °C):");
        for o in &report.outcomes {
            println!(
                "  window {} → {:>7.2} °C   (l_G = {}, {} candidate events fetched)",
                o.window.0,
                o.value.unwrap_or(0) as f64 / 1000.0,
                o.total_events,
                o.candidate_events,
            );
        }
        println!(
            "  uplink usage: {} of {} events ({:.2} %)\n",
            traffic.events,
            report.total_events,
            100.0 * traffic.events as f64 / report.total_events as f64
        );
    }
}
