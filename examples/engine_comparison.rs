//! Side-by-side engine comparison on identical inputs — a miniature of the
//! paper's evaluation (Figures 5 and 6) on your machine.
//!
//! ```sh
//! cargo run --release --example engine_comparison
//! ```

use dema::cluster::config::{ClusterConfig, EngineKind, GammaMode};
use dema::cluster::runner::{data_traffic, run_cluster};
use dema::core::coordinator::quantile_ground_truth;
use dema::core::event::Event;
use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::gen::SoccerGenerator;

fn main() {
    let windows = 4;
    let rate = 20_000;
    let inputs: Vec<Vec<Vec<Event>>> = (0..2u64)
        .map(|n| SoccerGenerator::new(n, 1, rate, 0).take_windows(windows, 1_000))
        .collect();

    // Ground truth for the accuracy column.
    let truth: Vec<Option<i64>> = (0..windows)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, Quantile::MEDIAN)
                .ok()
                .map(|e| e.value)
        })
        .collect();

    let engines = [
        EngineKind::Dema {
            gamma: GammaMode::Fixed(1_000),
            strategy: SelectionStrategy::WindowCut,
        },
        EngineKind::Centralized,
        EngineKind::DecSort,
        EngineKind::TdigestCentral { compression: 100.0 },
        EngineKind::TdigestDistributed { compression: 100.0 },
        EngineKind::KllDistributed { k: 256 },
    ];

    println!(
        "{:<13} | {:>12} | {:>11} | {:>12} | {:>9} | accuracy",
        "engine", "throughput", "p50 latency", "wire events", "wire KB"
    );
    println!("{}", "-".repeat(78));
    for engine in engines {
        let config = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let report = run_cluster(&config, inputs.clone()).expect("run failed");
        let traffic = data_traffic(&report).plus(&report.control_traffic);
        // Mean percentage error vs ground truth, as in the paper's Fig 7b.
        let mpe: f64 = report
            .values()
            .iter()
            .zip(&truth)
            .filter_map(|(got, want)| match (got, want) {
                (Some(g), Some(w)) => {
                    Some((*g as f64 - *w as f64).abs() / (*w as f64).abs().max(1.0))
                }
                _ => None,
            })
            .sum::<f64>()
            / windows as f64;
        println!(
            "{:<13} | {:>9.0}/s | {:>8} µs | {:>12} | {:>9.1} | {:.4} %",
            engine.label(),
            report.throughput_eps(),
            report.latency.quantile(0.5).unwrap_or(0),
            traffic.events,
            traffic.bytes as f64 / 1024.0,
            100.0 * mpe,
        );
    }
    println!("\n(2 local nodes, {windows} windows of {rate} events/s each, median, γ = 1000)");
}
