//! The adaptive slice factor in action (§3.3 of the paper).
//!
//! ```sh
//! cargo run --release --example adaptive_gamma
//! ```
//!
//! The run starts with a deliberately terrible γ = 2 (every slice holds two
//! events, so the identification step ships everything). The root observes
//! each window's size and candidate count, re-optimizes
//! `γ* = √(2·l_G / m)`, and broadcasts the new factor. Watch γ and the
//! per-window wire traffic converge.

use dema::cluster::config::{ClusterConfig, EngineKind, GammaMode, Topology, TransportKind};
use dema::cluster::run_cluster;
use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::gen::SoccerGenerator;

fn main() {
    let windows = 12;
    let rate = 5_000;
    let inputs: Vec<_> = (0..2u64)
        .map(|n| SoccerGenerator::new(100 + n, 1, rate, 0).take_windows(windows, 1_000))
        .collect();

    let config = ClusterConfig {
        quantile: Quantile::MEDIAN,
        engine: EngineKind::Dema {
            gamma: GammaMode::Adaptive { initial: 2 },
            strategy: SelectionStrategy::WindowCut,
        },
        transport: TransportKind::Mem,
        topology: Topology::Star,
        // Pace windows so γ updates land before the next window is sliced,
        // as they would with real one-second tumbling windows.
        pace_window_ms: Some(20),
        extra_quantiles: Vec::new(),
        resilience: None,
        faults: Vec::new(),
        threads: None,
        pipeline_depth: dema::cluster::root::PIPELINE_DEPTH,
        membership: dema::cluster::config::MembershipPlan::default(),
    };
    let report = run_cluster(&config, inputs).expect("cluster run failed");

    println!("window |     γ | synopses | candidate events | cost model (events on wire)");
    println!("-------+-------+----------+------------------+----------------------------");
    for o in &report.outcomes {
        let wire = 2 * o.synopses + o.candidate_events.saturating_sub(2 * o.candidate_slices);
        println!(
            "{:>6} | {:>5} | {:>8} | {:>16} | {:>10}",
            o.window.0, o.gamma, o.synopses, o.candidate_events, wire
        );
    }
    let first = &report.outcomes[0];
    let last = report.outcomes.last().unwrap();
    let wire = |o: &dema::cluster::WindowOutcome| {
        2 * o.synopses + o.candidate_events.saturating_sub(2 * o.candidate_slices)
    };
    println!();
    println!(
        "γ adapted from {} to {}; per-window traffic dropped {:.1}×",
        first.gamma,
        last.gamma,
        wire(first) as f64 / wire(last).max(1) as f64
    );
}
