//! Sliding-window Dema: exact quantiles over overlapping windows with
//! pane-level synopsis sharing and a root-side candidate cache.
//!
//! ```sh
//! cargo run --release --example sliding_windows
//! ```
//!
//! The paper evaluates tumbling windows; this extension slides a 2-second
//! window every 500 ms. Each 500 ms pane is sorted and γ-sliced once; all
//! four windows covering a pane reuse its synopses, and candidate slices
//! fetched for one window are served from cache for the next.

use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::core::sliding::{sliding_quantiles, SlidingConfig};
use dema::gen::SoccerGenerator;

fn main() {
    let nodes: Vec<Vec<dema::core::event::Event>> = (0..3u64)
        .map(|n| {
            SoccerGenerator::new(n, 1, 4_000, 0)
                .take(6 * 4_000)
                .collect()
        })
        .collect();

    let config = SlidingConfig {
        window_len: 2_000,
        slide: 500,
        gamma: 256,
        quantile: Quantile::MEDIAN,
        strategy: SelectionStrategy::WindowCut,
    };
    let (results, stats) = sliding_quantiles(&nodes, config).expect("sliding run failed");

    println!("window (ms)      | exact median | events");
    println!("-----------------+--------------+-------");
    for r in &results {
        println!(
            "[{:>5}, {:>5})   | {:>12} | {:>6}",
            r.start,
            r.end,
            r.value.map_or("—".into(), |v| v.to_string()),
            r.total_events
        );
    }
    println!();
    println!("windows evaluated          : {}", stats.windows);
    println!("total events               : {}", stats.total_events);
    println!(
        "synopses shipped           : {} (each pane sliced once, shared 4×)",
        stats.synopses_sent
    );
    println!(
        "candidate events shipped   : {}",
        stats.candidate_events_sent
    );
    println!(
        "candidate events from cache: {} ({:.0} % of selections served locally)",
        stats.candidate_events_saved,
        100.0 * stats.candidate_events_saved as f64
            / (stats.candidate_events_sent + stats.candidate_events_saved).max(1) as f64
    );
    println!(
        "wire events vs centralized : {:.2} %",
        100.0 * (2 * stats.synopses_sent + stats.candidate_events_sent) as f64
            / stats.total_events as f64
    );
}
