//! The same Dema protocol over real TCP sockets (loopback), hosted on
//! the reactor runtime.
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! ```
//!
//! Everything is identical to the in-memory runs — same engines, same
//! messages, same byte accounting — except the frames genuinely cross
//! nonblocking sockets: the reactor's source sweep drains readable
//! connections and a per-connection outbound buffer absorbs partial
//! writes until the link is writable again. Useful to sanity-check that
//! the transport abstraction hides nothing.

use dema::cluster::config::{ClusterConfig, TransportKind};
use dema::cluster::runner::{data_traffic, run_cluster};
use dema::core::quantile::Quantile;
use dema::gen::SoccerGenerator;

fn main() {
    let inputs: Vec<_> = (0..3u64)
        .map(|n| SoccerGenerator::new(n, 1, 5_000, 0).take_windows(3, 1_000))
        .collect();

    let mut mem_cfg = ClusterConfig::dema_fixed(250, Quantile::MEDIAN);
    mem_cfg.transport = TransportKind::Mem;
    let mut tcp_cfg = mem_cfg.clone();
    tcp_cfg.transport = TransportKind::Tcp;

    let mem = run_cluster(&mem_cfg, inputs.clone()).expect("mem run failed");
    let tcp = run_cluster(&tcp_cfg, inputs).expect("tcp run failed");

    println!("window | median (mem) | median (tcp)");
    for (a, b) in mem.outcomes.iter().zip(&tcp.outcomes) {
        println!(
            "{:>6} | {:>12} | {:>12}",
            a.window.0,
            a.value.unwrap_or(0),
            b.value.unwrap_or(0)
        );
        assert_eq!(a.value, b.value, "transports must agree");
    }
    let (mb, tb) = (data_traffic(&mem).bytes, data_traffic(&tcp).bytes);
    println!(
        "\ndata-plane bytes  mem: {mb}   tcp: {tb}   (identical: {})",
        mb == tb
    );
    println!(
        "reactor sweeps    mem: {}   tcp: {}   (events: {} / {})",
        mem.reactor.ticks, tcp.reactor.ticks, mem.reactor.events, tcp.reactor.events
    );
    println!(
        "wall time         mem: {:?}   tcp: {:?}",
        mem.wall_time, tcp.wall_time
    );
}
