//! Concurrent quantile queries: p10/p25/p50/p75/p90/p99 of the same window
//! answered with ONE identification and ONE calculation step.
//!
//! ```sh
//! cargo run --release --example multi_quantile
//! ```
//!
//! The candidate sets of adjacent quantiles overlap heavily; the union is
//! fetched once and every rank is read from the same merged runs — this is
//! how a Dema root serves dashboard-style percentile panels cheaply.

use dema::core::coordinator::{exact_quantile_decentralized, quantile_ground_truth};
use dema::core::event::Event;
use dema::core::multi::multi_quantile_decentralized;
use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::gen::SoccerGenerator;

fn main() {
    let nodes: Vec<Vec<Event>> = (0..4u64)
        .map(|n| SoccerGenerator::new(n, 1, 50_000, 0).take(50_000).collect())
        .collect();
    let total: usize = nodes.iter().map(Vec::len).sum();

    let quantiles: Vec<Quantile> = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99]
        .iter()
        .map(|&q| Quantile::new(q).expect("valid quantile"))
        .collect();

    let values =
        multi_quantile_decentralized(&nodes, &quantiles, 2_000, SelectionStrategy::WindowCut)
            .expect("multi-quantile run failed");

    println!("quantile | exact value | verified");
    println!("---------+-------------+---------");
    for (q, v) in quantiles.iter().zip(&values) {
        let truth = quantile_ground_truth(&nodes, *q).expect("ground truth");
        println!(
            "{:>8} | {:>11} | {}",
            q.to_string(),
            v,
            if *v == truth.value {
                "✓"
            } else {
                "✗ MISMATCH"
            }
        );
        assert_eq!(*v, truth.value);
    }

    // Cost comparison: shared identification vs one run per quantile.
    let shared_traffic = {
        // One run covering all quantiles: reuse the per-q single runs to
        // show what separate queries would cost.
        let mut separate = 0u64;
        for q in &quantiles {
            let run = exact_quantile_decentralized(&nodes, *q, 2_000, SelectionStrategy::WindowCut)
                .expect("single run");
            separate += run.stats.total_events_on_wire();
        }
        separate
    };
    println!();
    println!("events in window                 : {total}");
    println!("wire cost of 6 separate queries  : {shared_traffic} events");
    println!("(the shared run fetches the candidate-slice union once — see");
    println!(" dema::core::multi for the per-rank offset bookkeeping)");
}
