//! Failure injection: the system must *detect* protocol faults — corrupted
//! candidate replies, replies for unselected slices, truncated frames,
//! inconsistent synopses — rather than silently emitting wrong quantiles.

use dema::cluster::config::{EngineKind, GammaMode};
use dema::cluster::root::RootNode;
use dema::cluster::ClusterError;
use dema::core::event::{Event, NodeId, WindowId};
use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::core::slice::cut_into_slices;
use dema::core::DemaError;
use dema::metrics::NetworkCounters;
use dema::net::mem::link;
use dema::net::{MsgReceiver, MsgSender};
use dema::wire::{Message, WireError};

fn events(vals: &[i64]) -> Vec<Event> {
    vals.iter()
        .enumerate()
        .map(|(i, &v)| Event::new(v, 0, i as u64))
        .collect()
}

fn dema_root(n_locals: usize, control: Vec<Box<dyn MsgSender>>) -> RootNode {
    RootNode::new(
        Quantile::MEDIAN,
        EngineKind::Dema {
            gamma: GammaMode::Fixed(4),
            strategy: SelectionStrategy::WindowCut,
        },
        n_locals,
        1,
        control,
        dema::cluster::local::new_close_times(),
    )
}

/// Feed the root valid synopses and capture the candidate request.
fn setup_identification(
    root: &mut RootNode,
    rx: &mut dyn MsgReceiver,
) -> (Vec<dema::core::slice::Slice>, Vec<u32>) {
    let slices = cut_into_slices(
        NodeId(0),
        WindowId(0),
        events(&(0..16).collect::<Vec<i64>>()),
        4,
    )
    .unwrap();
    root.handle(Message::SynopsisBatch {
        node: NodeId(0),
        window: WindowId(0),
        synopses: slices.iter().map(|s| s.synopsis(4).unwrap()).collect(),
    })
    .unwrap();
    let Message::CandidateRequest { slices: wanted, .. } = rx.recv().unwrap() else {
        panic!("expected candidate request");
    };
    (slices, wanted)
}

#[test]
fn truncated_reply_events_are_detected() {
    let (tx, mut rx) = link(NetworkCounters::new_shared());
    let mut root = dema_root(1, vec![Box::new(tx)]);
    let (slices, wanted) = setup_identification(&mut root, &mut rx);
    // Drop one event from the requested slice (runs are immutable shared
    // views, so tampering means re-wrapping a mutated copy).
    let mut tampered = slices[wanted[0] as usize].events.to_vec();
    tampered.pop();
    let payload = dema::core::shared::SharedRun::from_vec(tampered);
    let err = root
        .handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(wanted[0], payload)],
        })
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Core(DemaError::CorruptCandidate(_))),
        "{err:?}"
    );
}

#[test]
fn swapped_values_in_reply_are_detected() {
    let (tx, mut rx) = link(NetworkCounters::new_shared());
    let mut root = dema_root(1, vec![Box::new(tx)]);
    let (slices, wanted) = setup_identification(&mut root, &mut rx);
    // Replace the slice contents with different values of the same count.
    let fake: Vec<Event> = events(&[100, 101, 102, 103]);
    assert_eq!(fake.len(), slices[wanted[0] as usize].events.len());
    let err = root
        .handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(wanted[0], fake.into())],
        })
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Core(DemaError::CorruptCandidate(_))),
        "{err:?}"
    );
}

#[test]
fn unsorted_reply_is_detected() {
    let (tx, mut rx) = link(NetworkCounters::new_shared());
    let mut root = dema_root(1, vec![Box::new(tx)]);
    let (slices, wanted) = setup_identification(&mut root, &mut rx);
    let mut tampered = slices[wanted[0] as usize].events.to_vec();
    tampered.swap(1, 2);
    let payload = dema::core::shared::SharedRun::from_vec(tampered);
    let err = root
        .handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(wanted[0], payload)],
        })
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Core(DemaError::CorruptCandidate(_))),
        "{err:?}"
    );
}

#[test]
fn reply_for_unselected_slice_is_rejected() {
    let (tx, mut rx) = link(NetworkCounters::new_shared());
    let mut root = dema_root(1, vec![Box::new(tx)]);
    let (slices, wanted) = setup_identification(&mut root, &mut rx);
    // Pick a slice index that was *not* requested.
    let unrequested = (0..slices.len() as u32)
        .find(|i| !wanted.contains(i))
        .unwrap();
    let err = root
        .handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(unrequested, slices[unrequested as usize].events.clone())],
        })
        .unwrap_err();
    assert!(matches!(err, ClusterError::Protocol(_)), "{err:?}");
}

#[test]
fn reply_for_unknown_window_is_rejected() {
    let mut root = dema_root(1, vec![]);
    let err = root
        .handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(99),
            slices: vec![],
        })
        .unwrap_err();
    assert!(matches!(err, ClusterError::Protocol(_)), "{err:?}");
}

#[test]
fn event_batch_to_dema_root_is_a_protocol_error() {
    let mut root = dema_root(1, vec![]);
    let err = root
        .handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: events(&[1]),
        })
        .unwrap_err();
    assert!(matches!(err, ClusterError::Protocol(_)), "{err:?}");
}

#[test]
fn corrupted_wire_bytes_never_decode() {
    // Bit-flip every byte of a valid frame payload: decoding must fail or
    // produce a *different* message — never panic.
    let msg = Message::SynopsisBatch {
        node: NodeId(3),
        window: WindowId(7),
        synopses: vec![],
    };
    let bytes = msg.to_bytes();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.to_vec();
        corrupted[i] ^= 0xFF;
        match Message::decode(&corrupted) {
            Ok(decoded) => assert_ne!(decoded, msg, "flip at byte {i} went unnoticed"),
            Err(WireError::BadTag(_) | WireError::Truncated | WireError::BadLength(_)) => {}
        }
    }
}

#[test]
fn responder_failure_surfaces_as_error_not_wrong_answer() {
    // A local whose store lost the window must produce an error on the
    // responder side (protocol violation), never a fabricated reply.
    use dema::cluster::local::{run_responder, LocalShared};
    let (mut data_tx, _data_rx) = link(NetworkCounters::new_shared());
    let (mut ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
    let shared = LocalShared::new(4);
    ctl_tx
        .send(&Message::CandidateRequest {
            window: WindowId(5),
            slices: vec![0],
        })
        .unwrap();
    drop(ctl_tx);
    let res = run_responder(NodeId(0), &mut ctl_rx, &mut data_tx, &shared);
    assert!(matches!(res, Err(ClusterError::Protocol(_))));
}
