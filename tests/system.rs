//! Cross-crate system tests: the whole stack (generators → SPE → cluster →
//! sketches) agreeing with itself on realistic scenarios.

use dema::cluster::config::{ClusterConfig, EngineKind, GammaMode};
use dema::cluster::runner::{data_traffic, run_cluster};
use dema::core::coordinator::{exact_quantile_decentralized, quantile_ground_truth};
use dema::core::event::Event;
use dema::core::quantile::Quantile;
use dema::core::selector::SelectionStrategy;
use dema::gen::{EventStream, SoccerGenerator, StreamConfig, ValueDistribution};
use dema::sketch::{QuantileSketch, TDigest};
use dema::spe::aggregate::QuantileAgg;
use dema::spe::{WindowAssigner, WindowOperator};

fn soccer_inputs(n: usize, windows: usize, rate: u64) -> Vec<Vec<Vec<Event>>> {
    (0..n)
        .map(|i| SoccerGenerator::new(900 + i as u64, 1, rate, 0).take_windows(windows, 1000))
        .collect()
}

/// The cluster (threads + transports + protocol) and the single-process
/// reference coordinator must produce identical results — the distributed
/// implementation adds no behaviour.
#[test]
fn cluster_matches_reference_coordinator() {
    let inputs = soccer_inputs(3, 3, 2_000);
    let report = run_cluster(
        &ClusterConfig::dema_fixed(128, Quantile::MEDIAN),
        inputs.clone(),
    )
    .unwrap();
    for (w, outcome) in report.outcomes.iter().enumerate() {
        let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
        let reference = exact_quantile_decentralized(
            &per_node,
            Quantile::MEDIAN,
            128,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(outcome.value, Some(reference.result), "window {w}");
        assert_eq!(outcome.total_events, reference.stats.total_events);
        assert_eq!(
            outcome.candidate_events,
            reference.stats.candidate_events_sent
        );
        assert_eq!(outcome.synopses, reference.stats.synopses_sent);
    }
}

/// A single-node SPE window operator computing the holistic median over the
/// concatenated streams must agree with the decentralized cluster.
#[test]
fn spe_operator_agrees_with_cluster() {
    let inputs = soccer_inputs(2, 3, 1_500);
    // Feed all nodes' events into one central operator.
    let mut op = WindowOperator::new(
        WindowAssigner::Tumbling { len: 1000 },
        QuantileAgg::median(),
    );
    for node in &inputs {
        for window in node {
            for e in window {
                op.ingest(e);
            }
        }
    }
    let spe_results: Vec<Option<i64>> = op
        .advance_watermark(3_000)
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let report = run_cluster(&ClusterConfig::dema_fixed(64, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.values(), spe_results);
}

/// The distributed t-digest engine is as accurate as a hand-built local
/// t-digest over the combined stream.
#[test]
fn distributed_tdigest_matches_local_digest() {
    let inputs = soccer_inputs(2, 2, 2_000);
    let report = run_cluster(
        &ClusterConfig::baseline(
            EngineKind::TdigestDistributed { compression: 100.0 },
            Quantile::MEDIAN,
        ),
        inputs.clone(),
    )
    .unwrap();
    for (w, outcome) in report.outcomes.iter().enumerate() {
        let mut digest = TDigest::new(100.0);
        for node in &inputs {
            for e in &node[w] {
                digest.insert(e.value as f64);
            }
        }
        let local = digest.quantile(0.5).unwrap();
        let cluster = outcome.value.unwrap() as f64;
        // Merge order differs, so allow a small relative gap.
        let rel = (local - cluster).abs() / local.abs().max(1.0);
        assert!(rel < 0.02, "window {w}: local {local} vs cluster {cluster}");
    }
}

/// Accuracy experiment shape (Fig 7b): Dema and the centralized baseline are
/// bit-exact; t-digest is close but not exact on continuous data.
#[test]
fn accuracy_ordering_matches_paper() {
    let inputs = soccer_inputs(3, 3, 3_000);
    let truth: Vec<Option<i64>> = (0..3)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, Quantile::MEDIAN)
                .ok()
                .map(|e| e.value)
        })
        .collect();
    let dema = run_cluster(
        &ClusterConfig::dema_fixed(256, Quantile::MEDIAN),
        inputs.clone(),
    )
    .unwrap();
    let central = run_cluster(
        &ClusterConfig::baseline(EngineKind::Centralized, Quantile::MEDIAN),
        inputs.clone(),
    )
    .unwrap();
    let tdigest = run_cluster(
        &ClusterConfig::baseline(
            EngineKind::TdigestCentral { compression: 100.0 },
            Quantile::MEDIAN,
        ),
        inputs,
    )
    .unwrap();
    assert_eq!(dema.values(), truth, "Dema must be 100% accurate");
    assert_eq!(central.values(), truth, "centralized is the ground truth");
    let mut exact_hits = 0;
    for (got, want) in tdigest.values().iter().zip(&truth) {
        let (g, w) = (got.unwrap() as f64, want.unwrap() as f64);
        assert!(
            (g - w).abs() / w.abs().max(1.0) < 0.05,
            "tdigest far off: {g} vs {w}"
        );
        if g as i64 == w as i64 {
            exact_hits += 1;
        }
    }
    assert!(
        exact_hits < 3,
        "t-digest should not be bit-exact on this data"
    );
}

/// Dema's network reduction grows with the window size (the 99 % headline
/// needs big windows; shape must be monotone).
#[test]
fn network_savings_grow_with_window_size() {
    let mut savings = Vec::new();
    for rate in [1_000u64, 10_000, 50_000] {
        let inputs = soccer_inputs(2, 2, rate);
        let gamma = (rate / 20).max(16);
        let report =
            run_cluster(&ClusterConfig::dema_fixed(gamma, Quantile::MEDIAN), inputs).unwrap();
        let traffic = data_traffic(&report).plus(&report.control_traffic);
        savings.push(1.0 - traffic.events as f64 / report.total_events as f64);
    }
    // Larger windows amortize the synopsis overhead: the smallest window is
    // the worst, and large windows push savings past 90 %. (The exact curve
    // depends on how the fixed γ heuristic interacts with overlap, so we
    // assert the shape, not monotonicity to the percent.)
    let first = savings[0];
    assert!(
        savings.iter().skip(1).all(|&s| s > first),
        "savings not improving: {savings:?}"
    );
    assert!(
        savings.iter().copied().fold(f64::MIN, f64::max) > 0.9,
        "{savings:?}"
    );
    assert!(savings.iter().all(|&s| s > 0.8), "{savings:?}");
}

/// Different quantiles over identical inputs all remain exact end-to-end
/// (Fig 8a's precondition).
#[test]
fn all_quantiles_exact_end_to_end() {
    let inputs = soccer_inputs(3, 2, 2_000);
    for q in [0.25, 0.3, 0.5, 0.75, 0.9] {
        let q = Quantile::new(q).unwrap();
        let truth: Vec<Option<i64>> = (0..2)
            .map(|w| {
                let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
                quantile_ground_truth(&per_node, q).ok().map(|e| e.value)
            })
            .collect();
        let report = run_cluster(&ClusterConfig::dema_fixed(100, q), inputs.clone()).unwrap();
        assert_eq!(report.values(), truth, "q = {q}");
    }
}

/// Mixed generator types across nodes — a realistic heterogeneous edge.
#[test]
fn heterogeneous_generators_end_to_end() {
    let mk = |dist, seed, rate| {
        EventStream::new(
            dist,
            StreamConfig {
                seed,
                events_per_second: rate,
                ..Default::default()
            },
        )
        .take_windows(2, 1000)
    };
    let inputs = vec![
        mk(
            ValueDistribution::Normal {
                mean: 0.0,
                std_dev: 1_000.0,
            },
            1,
            4_000,
        ),
        mk(
            ValueDistribution::Uniform {
                lo: -10_000,
                hi: 10_000,
            },
            2,
            500,
        ),
        mk(ValueDistribution::Zipf { n: 1_000, s: 1.3 }, 3, 8_000),
        SoccerGenerator::new(4, 1, 2_000, 0).take_windows(2, 1000),
    ];
    let truth: Vec<Option<i64>> = (0..2)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, Quantile::MEDIAN)
                .ok()
                .map(|e| e.value)
        })
        .collect();
    let report = run_cluster(&ClusterConfig::dema_fixed(128, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.values(), truth);
}

/// Adaptive γ with drifting event rates keeps exactness while re-tuning.
#[test]
fn adaptive_gamma_under_rate_drift() {
    // Rate quadruples midway: the controller must follow.
    let slow: Vec<Vec<Vec<Event>>> = (0..2u64)
        .map(|n| SoccerGenerator::new(50 + n, 1, 1_000, 0).take_windows(4, 1000))
        .collect();
    let fast: Vec<Vec<Vec<Event>>> = (0..2u64)
        .map(|n| SoccerGenerator::new(60 + n, 1, 4_000, 0).take_windows(4, 1000))
        .collect();
    let inputs: Vec<Vec<Vec<Event>>> = (0..2)
        .map(|n| {
            let mut w = slow[n].clone();
            w.extend(fast[n].clone());
            w
        })
        .collect();
    let truth: Vec<Option<i64>> = (0..8)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, Quantile::MEDIAN)
                .ok()
                .map(|e| e.value)
        })
        .collect();
    let mut cfg = ClusterConfig::baseline(
        EngineKind::Dema {
            gamma: GammaMode::Adaptive { initial: 32 },
            strategy: SelectionStrategy::WindowCut,
        },
        Quantile::MEDIAN,
    );
    cfg.pace_window_ms = Some(10);
    let report = run_cluster(&cfg, inputs).unwrap();
    assert_eq!(report.values(), truth);
    let early = report.outcomes[3].gamma;
    let late = report.outcomes.last().unwrap().gamma;
    assert!(
        late > early,
        "γ should grow with the rate: {early} → {late}"
    );
}
