//! Reactor-runtime scale and chaos coverage (DESIGN.md §13).
//!
//! The reactor hosts every node role on a handful of event loops, so node
//! count is a wiring parameter, not a thread count. These tests pin the
//! two promises that makes: (1) scale is *free of semantic drift* — a
//! 1000-leaf run over the same global dataset returns bit-identical
//! values to an 8-leaf reference; (2) the fault-tolerance layer still
//! works when its deadlines ride the reactor's timer wheel instead of a
//! `recv_timeout` poll — retry timers demonstrably fire, loss recovers
//! exactly, and a dead responder degrades with the same verdicts the
//! threaded runner produced.

use dema::cluster::config::{ClusterConfig, NodeFaults, Resilience};
use dema::cluster::runner::run_cluster;
use dema::core::coordinator::quantile_ground_truth;
use dema::core::event::Event;
use dema::core::quantile::Quantile;
use dema::net::fault::FaultPlan;

/// One global dataset per window — values `w·10⁶ + j` for `j < total` —
/// dealt round-robin over `leaves` nodes. Any leaf count sees the same
/// per-window multiset, so exact engines must return the same values.
fn dealt_inputs(leaves: usize, windows: u64, total: usize) -> Vec<Vec<Vec<Event>>> {
    assert_eq!(total % leaves, 0, "deal must be even");
    (0..leaves)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..total)
                        .filter(|j| j % leaves == n)
                        .map(|j| {
                            Event::new(
                                w as i64 * 1_000_000 + j as i64,
                                w,
                                w * total as u64 + j as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Scale pin: 1000 leaves on the reactor runtime return values
/// bit-identical to an 8-leaf reference over the same global dataset,
/// and both match the sort oracle.
#[test]
fn thousand_leaves_bit_identical_to_eight_leaf_reference() {
    let (windows, total) = (3u64, 8_000usize);
    let cfg = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);

    let reference_inputs = dealt_inputs(8, windows, total);
    let reference = run_cluster(&cfg, reference_inputs.clone()).expect("8-leaf reference");

    let scaled_inputs = dealt_inputs(1000, windows, total);
    let scaled = run_cluster(&cfg, scaled_inputs).expect("1000-leaf run");

    assert_eq!(scaled.outcomes.len(), windows as usize);
    assert_eq!(
        scaled.values(),
        reference.values(),
        "scaling the leaf count must not move a single bit of the answers"
    );
    assert!(scaled.outcomes.iter().all(|o| o.degraded.is_none()));
    for (w, outcome) in scaled.outcomes.iter().enumerate() {
        let per_node: Vec<Vec<Event>> = reference_inputs.iter().map(|n| n[w].clone()).collect();
        let oracle = quantile_ground_truth(&per_node, Quantile::MEDIAN).expect("oracle");
        assert_eq!(outcome.value, Some(oracle.value), "window {w}");
    }
}

/// Interleaved inputs matching the chaos suite's shape: every node owns
/// values throughout each window's range.
fn interleaved_inputs(nodes: usize, windows: usize, per_window: usize) -> Vec<Vec<Vec<Event>>> {
    (0..nodes)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..per_window)
                        .map(|i| {
                            Event::new(
                                (w * 10_000 + 3 * i + n) as i64,
                                w as u64,
                                (w * per_window + i) as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Chaos on the reactor path, loss flavor: dropped messages are recovered
/// bit-identically, and the proof that the *reactor* drove the recovery is
/// in the loop stats — the supervisor's deadlines fired as reactor timer
/// events, not as poll timeouts.
#[test]
fn reactor_chaos_drops_recover_and_retry_timers_fire() {
    let inputs = interleaved_inputs(3, 6, 50);
    let cfg = ClusterConfig::dema_fixed(8, Quantile::MEDIAN);
    let clean = run_cluster(&cfg, inputs.clone()).expect("clean run");

    let mut chaos_cfg = cfg;
    chaos_cfg.resilience = Some(Resilience {
        request_timeout_ms: 40,
        max_retries: 10,
        liveness_k: 10_000,
        seed: 0xC0FFEE,
    });
    chaos_cfg.faults = (0..3)
        .map(|n| NodeFaults {
            node: n,
            uplink: Some(FaultPlan::new(u64::from(n) ^ 0x11).with_drop(0.1)),
            responder: Some(FaultPlan::new(u64::from(n) ^ 0x22).with_drop(0.1)),
            control: Some(FaultPlan::new(u64::from(n) ^ 0x33).with_drop(0.1)),
        })
        .collect();
    let chaotic = run_cluster(&chaos_cfg, inputs).expect("chaotic run");

    assert_eq!(
        chaotic.values(),
        clean.values(),
        "loss must recover exactly"
    );
    assert!(chaotic.outcomes.iter().all(|o| o.degraded.is_none()));
    assert_eq!(chaotic.fault_stats.nodes_declared_dead, 0);
    assert!(
        chaotic.fault_stats.timeouts + chaotic.fault_stats.retries > 0,
        "a 10% drop matrix must exercise the retry path"
    );
    assert!(
        chaotic.reactor.timers > 0,
        "retry deadlines must fire as reactor timer events"
    );
}

/// Chaos on the reactor path, death flavor: a responder severed mid-run
/// produces the same degradation verdicts the threaded runner's suite
/// pinned — the node is declared dead, affected windows complete degraded
/// naming exactly that node, and the run terminates.
#[test]
fn reactor_chaos_responder_death_matches_threaded_verdicts() {
    let (nodes, windows, per_window) = (3usize, 6usize, 100usize);
    let inputs = interleaved_inputs(nodes, windows, per_window);
    let mut cfg = ClusterConfig::dema_fixed(10, Quantile::MEDIAN);
    cfg.resilience = Some(Resilience {
        request_timeout_ms: 40,
        max_retries: 2,
        liveness_k: 3,
        seed: 0xDEAD,
    });
    cfg.faults = vec![NodeFaults {
        node: 1,
        responder: Some(FaultPlan::new(0xDEAD).with_disconnect_after(1)),
        ..NodeFaults::default()
    }];
    let report = run_cluster(&cfg, inputs).expect("run must not hang");

    assert_eq!(report.outcomes.len(), windows);
    assert_eq!(report.fault_stats.nodes_declared_dead, 1);
    let degraded: Vec<&dema::cluster::report::Degraded> = report
        .outcomes
        .iter()
        .filter_map(|o| o.degraded.as_ref())
        .collect();
    assert!(
        !degraded.is_empty(),
        "the severed responder must degrade windows"
    );
    assert!(degraded.iter().all(|d| d.missing_nodes == vec![1]));
    assert!(report.fault_stats.degraded_windows > 0);
    assert!(
        report.reactor.timers > 0,
        "give-up verdicts ride the same reactor timer wheel"
    );
}
