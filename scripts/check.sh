#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   build (release)  — the experiment binary and benches must compile
#   fmt --check      — first-party crates stay rustfmt-clean (vendored
#                      crates are kept byte-identical to upstream and are
#                      deliberately not checked)
#   test             — unit + property + integration tests, all crates,
#                      run twice: DEMA_THREADS=1 (serial sort path) and
#                      DEMA_THREADS=4 (pool fan-out). The parallel window
#                      sort must be invisible — both passes see identical
#                      results and wire traffic (tests/determinism.rs pins
#                      the counters; this matrix pins everything else)
#   test --strict    — same suite with the checked-invariant layer compiled
#                      into release-style gating (DESIGN.md §8), at both
#                      thread counts, plus an explicit engines-over-TCP
#                      pass so the socket transport is exercised with
#                      checked invariants
#   chaos sweep      — the seeded fault-injection suite under several
#                      CHAOS_SEED values (strict invariants on): recovery
#                      must stay bit-exact and degradation deterministic
#                      for every seed, not just the default. The same
#                      sweep drives the membership-churn scenario
#                      (tests/churn.rs): join/drain under random loss must
#                      recover bit-exact and keep the post-churn steady
#                      state pinned to a fresh final-membership run
#   dema-lint        — repo-specific static analysis (--spec
#                      --concurrency --alloc): R1 no panics in library
#                      code, R2 no lossy `as` casts in rank/gamma
#                      arithmetic, R3/R4 error & wire variants
#                      exercised, R5 no unbounded receives in cluster
#                      code, R6/R7 protocol-spec conformance (handled
#                      variants match the dema-model role spec; every
#                      transition has a test), R8 no stale allow-tags,
#                      R9 no ad-hoc thread::spawn outside the
#                      deterministic sort pool (dema_core::par), R10 no
#                      lock-order inversions in the cross-crate
#                      acquisition graph, R11 no guard held across a
#                      blocking call, R12 no unbounded channels in
#                      hot-path crates, R13 all hot-path locks through
#                      the ranked dema_core::sync wrappers, R15 no raw
#                      allocation sites in marked hot-path regions, R16
#                      frame buffers drawn from dema-wire::pool, R17 no
#                      SharedRun payload copies on send paths.
#                      `dema-lint explain R<n>` decodes any rule id.
#                      Stale baseline entries fail too (baseline only
#                      shrinks; scripts/lint-baseline.txt)
#   alloc gate       — dema-cluster/tests/alloc_gate.rs under --features
#                      strict at DEMA_THREADS=1 and 4: with the counting
#                      allocator armed, a warmed-up Dema star run over
#                      the mem transport performs zero fresh system
#                      allocations (every buffer off the recycling
#                      shelves), stays bit-identical to the warm-up,
#                      and folds its counters into RunReport.alloc (the
#                      dynamic twin of R15–R17)
#   lock-order gate  — dema-cluster/tests/lock_order.rs under --features
#                      strict at DEMA_THREADS=4: repeated runs reuse the
#                      sort pool without leaking workers, a full run
#                      holds the global lock ranking under the armed
#                      runtime tracker, and an intentionally inverted
#                      acquisition proves the tracker fires (the dynamic
#                      twin of R10)
#   model explorer   — bounded interleaving exploration of the real
#                      engines (dema-model): every schedule up to the
#                      budget must finish deadlock-free, spec-legal, with
#                      obligations met and bit-identical exact results.
#                      MODEL_BUDGET (default 1200) scales the smoke run.
#   dema-server gate — the reactor-runtime server binary boots 256 leaves
#                      over mem links and a small cluster over loopback
#                      TCP, both under --features strict (checked
#                      invariants + armed lock tracker): every window must
#                      verify against the binary's built-in sort oracle
#                      and the process must shut down cleanly (exit 0).
#                      The tcp_cluster example runs in the same breath so
#                      example rot fails the gate too (DESIGN.md §13).
#   bench --no-run   — criterion benches must keep compiling
#   clippy           — deny the two lints that reintroduce hot-path copies:
#                      redundant_clone (event buffers must be shared, not
#                      cloned) and needless_collect (no intermediate Vecs
#                      on the merge paths). R1's compiler-side twin — deny
#                      unwrap/expect in non-test library code — lives as
#                      in-crate attributes on the four protocol crates and
#                      fires during this same pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# shellcheck disable=SC2046
cargo fmt --check $(for c in crates/*/; do printf -- '-p %s ' "$(basename "$c")"; done)
for threads in 1 4; do
    DEMA_THREADS="$threads" cargo test -q
    DEMA_THREADS="$threads" cargo test --features strict -q
done
cargo test -q -p dema-cluster --features strict --test engines --test tree tcp
CHAOS_SEEDS="${CHAOS_SEEDS:-1 2 3}"
for seed in $CHAOS_SEEDS; do
    CHAOS_SEED="$seed" cargo test -q -p dema-cluster --features strict --test chaos
    CHAOS_SEED="$seed" cargo test -q -p dema-cluster --features strict --test churn seeded_churn
done
cargo run -q -p dema-lint -- check . --spec --concurrency --alloc
DEMA_THREADS=4 cargo test -q -p dema-cluster --features strict --test lock_order
for threads in 1 4; do
    DEMA_THREADS="$threads" cargo test -q -p dema-cluster --features strict --test alloc_gate
done
MODEL_BUDGET="${MODEL_BUDGET:-1200}" cargo test -q -p dema-model --test explore
cargo run -q --release -p dema --features strict --bin dema-server -- --leaves 256 --quiet
cargo run -q --release -p dema --features strict --bin dema-server -- \
    --leaves 8 --windows 2 --events 50 --transport tcp --quiet
cargo run -q --release -p dema --example tcp_cluster > /dev/null
cargo bench --no-run
cargo clippy --workspace --all-targets -- \
    -D clippy::redundant_clone \
    -D clippy::needless_collect

echo "check.sh: all green"
