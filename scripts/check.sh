#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   build (release)  — the experiment binary and benches must compile
#   test             — unit + property + integration tests, all crates
#   bench --no-run   — criterion benches must keep compiling
#   clippy           — deny the two lints that reintroduce hot-path copies:
#                      redundant_clone (event buffers must be shared, not
#                      cloned) and needless_collect (no intermediate Vecs
#                      on the merge paths)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --no-run
cargo clippy --workspace --all-targets -- \
    -D clippy::redundant_clone \
    -D clippy::needless_collect

echo "check.sh: all green"
