//! Offline shim for the `bytes` crate.
//!
//! Implements the little-endian put/get surface the Dema wire codec uses,
//! backed by plain `Vec<u8>`. `BufMut` is implemented for both [`BytesMut`]
//! and `Vec<u8>` (as in the real crate), which lets encoders write into
//! caller-provided, pooled buffers without an intermediate copy.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Clear contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }

    /// Extract the underlying vector without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

/// Write access to a growable byte sink (little-endian putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source (little-endian getters that advance).
///
/// # Panics
/// Getters panic if the source has too few bytes remaining, matching the
/// real crate; decoders bounds-check before calling.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Take `n` leading bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        assert_eq!(buf.len(), 1 + 4 + 8 + 8 + 8);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn vec_is_a_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(5);
        assert_eq!(v, 5u32.to_le_bytes());
    }
}
