//! Offline shim for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface with a
//! simple wall-clock measurement loop: per benchmark it warms up briefly,
//! then takes `sample_size` timed batches and reports the best-sample
//! mean in ns/iter (best-of keeps numbers stable under CI noise) plus
//! throughput when configured. No plots, no statistics, no saved baselines.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(20);
const TARGET_BATCH: Duration = Duration::from_millis(2);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function label plus a parameter, rendered `label/param`.
    pub fn new(label: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", label.into(), parameter) }
    }

    /// Only a parameter, for groups whose name already names the function.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter of the fastest sample, filled in by [`Bencher::iter`].
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the fastest sample's mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        let mut elapsed;
        loop {
            black_box(f());
            warm_iters += 1;
            elapsed = start.elapsed();
            if elapsed >= WARMUP || warm_iters >= 10_000 {
                break;
            }
        }
        let est_per_iter = elapsed.as_secs_f64() / warm_iters as f64;

        // Size batches so each sample takes roughly TARGET_BATCH.
        let batch = ((TARGET_BATCH.as_secs_f64() / est_per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns_per_iter = best;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, best_ns_per_iter: f64::NAN };
        f(&mut b);
        self.report(&id, b.best_ns_per_iter);
        self
    }

    /// Run a benchmark closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { sample_size: self.sample_size, best_ns_per_iter: f64::NAN };
        f(&mut b, input);
        self.report(&id, b.best_ns_per_iter);
        self
    }

    /// Print and close the group. (Accepts `&mut self` so both
    /// `group.finish()` and drop-without-finish behave.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.3} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.3} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{}: {:.1} ns/iter{}", self.name, id.label, ns, rate);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept (and ignore) criterion CLI flags like `--bench`.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
