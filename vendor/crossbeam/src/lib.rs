//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel`'s unbounded MPSC surface is provided, backed by
//! `std::sync::mpsc`. The repo uses channels fan-in style (many cloned
//! senders, one receiver), which std's mpsc supports directly; error types
//! mirror crossbeam's names so call sites match.

pub mod channel {
    //! Unbounded multi-producer single-consumer channels.

    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending half has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Wait up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
