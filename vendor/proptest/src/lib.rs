//! Offline shim for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use, with deterministic per-test seeding so failures reproduce.
//! Differences from real proptest: no shrinking (a failing case reports its
//! seed instead of a minimal counterexample), and rejection sampling via
//! `prop_assume!` simply retries with the next seed.

pub mod test_runner {
    //! Deterministic case execution: config, RNG, and the test loop.

    pub use rand::rngs::SmallRng as TestRng;
    use rand::SeedableRng;

    /// Failure modes a property-test case can report.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold; the test fails.
        Fail(String),
        /// The generated inputs violate a precondition; retry with new inputs.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Knobs for the test loop.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
        /// Abort if `prop_assume!` rejects this many cases in total.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Default config with a custom case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
        h
    }

    /// Drive one property over `config.cases` deterministic seeds.
    ///
    /// Each case gets an RNG seeded from the test name and case index, so a
    /// failure is reproducible from the seed printed in the panic message.
    /// `PROPTEST_CASES` in the environment overrides the configured count.
    pub fn run_test<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected}) before reaching {cases} accepted"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (reproduce with seed {seed}): {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use super::test_runner::TestRng;
    use rand::{RngExt, SampleRange};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
}

pub mod arbitrary {
    //! Default strategies for primitive types (`any::<T>()`).

    use std::marker::PhantomData;

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Full-domain strategy for `T` (`Copy` so it can seed several arms).
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Reinterpret raw bits: covers subnormals, zeros, infinities.
            // NaN is remapped (it breaks PartialEq-based roundtrip asserts
            // and real proptest's default f64 strategy excludes it too).
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                f64::INFINITY
            } else {
                v
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_nan() {
                f32::INFINITY
            } else {
                v
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strategy,)+);
            $crate::test_runner::run_test(&$config, stringify!($name), |__rng| {
                let ($($parm,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l
                ),
            ));
        }
    }};
}

/// Reject (not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0.0f64..1.0, n in 1u64..=3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=3).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn maps_and_tuples(mut v in vec((0i64..10, 0u64..4), 0..8).prop_map(|pairs| {
            pairs.into_iter().map(|(a, b)| a + b as i64).collect::<Vec<_>>()
        })) {
            v.sort_unstable();
            prop_assert!(v.iter().all(|&s| (0..14).contains(&s)));
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![
            (0u32..4).prop_flat_map(|n| (10u32..20).prop_map(move |m| n * 100 + m)),
            Just(7u32),
        ]) {
            prop_assert!(x == 7 || (x % 100 >= 10 && x % 100 < 20 && x / 100 < 4), "x = {x}");
        }

        #[test]
        fn assume_retries(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::SeedableRng;
        let strat = vec(0u64..1000, 5..10);
        let a = strat.generate(&mut TestRng::seed_from_u64(11));
        let b = strat.generate(&mut TestRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed (reproduce with seed")]
    fn failures_panic_with_seed() {
        crate::test_runner::run_test(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
