//! Offline shim for the `rand` crate.
//!
//! Provides the deterministic-seeding surface the workload generators use:
//! `rngs::SmallRng` (xoshiro256++ seeded through SplitMix64), `SeedableRng`,
//! and `RngExt::random_range` over half-open and inclusive ranges of the
//! primitive integer types and `f64`. Integer sampling uses rejection-free
//! modulo reduction — fine for synthetic workloads, not for cryptography.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits -> unit in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expands the 64-bit seed into full state; this is
            // the standard recommended seeding for the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.random_range(0..10usize);
            assert!(w < 10);
            let f: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let g: f64 = rng.random_range(0.0..3.0);
            assert!((0.0..3.0).contains(&g));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
