//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of `parking_lot` the repo actually uses, backed by
//! `std::sync`. Semantics match `parking_lot` where they differ from `std`:
//! `lock()` never returns a poison error (a poisoned std mutex is recovered
//! transparently, matching `parking_lot`'s no-poisoning behaviour).

use std::fmt;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
