//! Measurement and reporting helpers for the experiment binary.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode, TransportKind};
use dema_cluster::runner::{data_traffic, run_cluster};
use dema_cluster::RunReport;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_metrics::NetworkSnapshot;

/// The four systems the paper compares (§4, "Baselines"), in plot order.
pub fn paper_systems(gamma: u64) -> Vec<(&'static str, EngineKind)> {
    vec![
        (
            "dema",
            EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::WindowCut,
            },
        ),
        ("scotty(centralized)", EngineKind::Centralized),
        ("desis(dec-sort)", EngineKind::DecSort),
        ("tdigest", EngineKind::TdigestCentral { compression: 100.0 }),
    ]
}

/// One measured run of one system.
pub struct Measurement {
    /// System label.
    pub system: String,
    /// Events per wall-clock second.
    pub throughput: f64,
    /// Mean latency in µs.
    pub latency_mean_us: f64,
    /// Median (p50) latency in µs.
    pub latency_p50_us: u64,
    /// Tail (p99) latency in µs.
    pub latency_p99_us: u64,
    /// Total traffic (data + control planes).
    pub traffic: NetworkSnapshot,
    /// Total events ingested.
    pub total_events: u64,
    /// Per-window values, for accuracy computations.
    pub values: Vec<Option<i64>>,
}

/// Run one engine over the inputs and collect a [`Measurement`].
pub fn measure(
    label: &str,
    engine: EngineKind,
    quantile: Quantile,
    inputs: &[Vec<Vec<Event>>],
) -> Measurement {
    measure_with(label, engine, quantile, inputs, TransportKind::Mem)
}

/// [`measure`] with an explicit transport (e.g. a simulated bandwidth cap).
pub fn measure_with(
    label: &str,
    engine: EngineKind,
    quantile: Quantile,
    inputs: &[Vec<Vec<Event>>],
    transport: TransportKind,
) -> Measurement {
    let config = ClusterConfig {
        quantile,
        engine,
        transport,
        topology: dema_cluster::Topology::Star,
        pace_window_ms: None,
        extra_quantiles: Vec::new(),
        resilience: None,
        faults: Vec::new(),
        threads: None,
        pipeline_depth: dema_cluster::root::PIPELINE_DEPTH,
        membership: dema_cluster::config::MembershipPlan::default(),
    };
    let report = run_cluster(&config, inputs.to_vec()).expect("cluster run failed");
    summarize(label, &report)
}

/// [`measure`] with paced windows (compressed real time), so adaptive-γ
/// feedback takes effect between windows.
pub fn measure_paced(
    label: &str,
    engine: EngineKind,
    quantile: Quantile,
    inputs: &[Vec<Vec<Event>>],
    pace_window_ms: u64,
) -> Measurement {
    let config = ClusterConfig {
        quantile,
        engine,
        transport: TransportKind::Mem,
        topology: dema_cluster::Topology::Star,
        pace_window_ms: Some(pace_window_ms),
        extra_quantiles: Vec::new(),
        resilience: None,
        faults: Vec::new(),
        threads: None,
        pipeline_depth: dema_cluster::root::PIPELINE_DEPTH,
        membership: dema_cluster::config::MembershipPlan::default(),
    };
    let report = run_cluster(&config, inputs.to_vec()).expect("cluster run failed");
    summarize(label, &report)
}

/// Condense a [`RunReport`].
pub fn summarize(label: &str, report: &RunReport) -> Measurement {
    Measurement {
        system: label.to_string(),
        throughput: report.throughput_eps(),
        latency_mean_us: report.mean_latency_us().unwrap_or(0.0),
        latency_p50_us: report.latency.quantile(0.5).unwrap_or(0),
        latency_p99_us: report.latency.quantile(0.99).unwrap_or(0),
        traffic: data_traffic(report).plus(&report.control_traffic),
        total_events: report.total_events,
        values: report.values(),
    }
}

/// Mean percentage error of `got` vs `truth` (the paper's accuracy metric:
/// accuracy = 1 − MPE, Fig 7b).
pub fn mean_percentage_error(got: &[Option<i64>], truth: &[Option<i64>]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    for (g, t) in got.iter().zip(truth) {
        if let (Some(g), Some(t)) = (g, t) {
            sum += (*g as f64 - *t as f64).abs() / (*t as f64).abs().max(1.0);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// CSV writer: one file per experiment under the output directory.
pub struct CsvSink {
    dir: PathBuf,
}

impl CsvSink {
    /// Create (and mkdir) a sink rooted at `dir`.
    pub fn new(dir: &Path) -> CsvSink {
        fs::create_dir_all(dir).expect("create results dir");
        CsvSink {
            dir: dir.to_path_buf(),
        }
    }

    /// Write `rows` (already formatted) under `name.csv` with a header.
    pub fn write(&self, name: &str, header: &str, rows: &[String]) {
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{header}").expect("write header");
        for r in rows {
            writeln!(f, "{r}").expect("write row");
        }
        println!("  → wrote {}", path.display());
    }
}

/// Fixed-width table printer for terminal output.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpe_computes_mean_relative_error() {
        let truth = vec![Some(100), Some(200), None];
        let got = vec![Some(110), Some(200), Some(5)];
        let mpe = mean_percentage_error(&got, &truth);
        assert!((mpe - 0.05).abs() < 1e-12, "{mpe}");
    }

    #[test]
    fn mpe_empty_is_zero() {
        assert_eq!(mean_percentage_error(&[], &[]), 0.0);
        assert_eq!(mean_percentage_error(&[None], &[None]), 0.0);
    }

    #[test]
    fn csv_sink_writes_files() {
        let dir = std::env::temp_dir().join(format!("dema-bench-test-{}", std::process::id()));
        let sink = CsvSink::new(&dir);
        sink.write("t", "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn paper_systems_has_four_entries() {
        let systems = paper_systems(10_000);
        assert_eq!(systems.len(), 4);
        assert_eq!(systems[0].0, "dema");
    }
}
