//! Workload construction shared by the experiment binary and the criterion
//! benches.

use dema_core::event::Event;
use dema_gen::SoccerGenerator;

/// Per-node, per-window inputs for a cluster run: `n` local nodes replaying
/// the DEBS-like soccer stream from different positions, with per-node scale
/// rates (the paper's generator setup).
pub fn soccer_inputs(
    n_locals: usize,
    windows: usize,
    events_per_second: u64,
    scales: &[i64],
    seed: u64,
) -> Vec<Vec<Vec<Event>>> {
    (0..n_locals)
        .map(|i| {
            let scale = scales.get(i).copied().unwrap_or(1);
            SoccerGenerator::new(seed + i as u64, scale, events_per_second, 0)
                .take_windows(windows, 1_000)
        })
        .collect()
}

/// Equal scale rates of 1 for every node (the throughput experiments).
pub fn uniform_scales(n: usize) -> Vec<i64> {
    vec![1; n]
}

/// Total event count of an input set.
pub fn total_events(inputs: &[Vec<Vec<Event>>]) -> u64 {
    inputs.iter().flatten().map(|w| w.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_have_requested_shape() {
        let inputs = soccer_inputs(3, 4, 500, &uniform_scales(3), 1);
        assert_eq!(inputs.len(), 3);
        assert!(inputs.iter().all(|n| n.len() == 4));
        assert_eq!(total_events(&inputs), 3 * 4 * 500);
    }

    #[test]
    fn scales_shift_value_ranges() {
        let inputs = soccer_inputs(2, 1, 1000, &[1, 100], 1);
        let max0 = inputs[0][0].iter().map(|e| e.value).max().unwrap();
        let min1 = inputs[1][0].iter().map(|e| e.value).min().unwrap();
        // Scale 100 pushes node 1 well above node 0 (values are 0..=100k).
        assert!(min1 >= 0 && max0 <= 100_000);
        assert!(inputs[1][0].iter().map(|e| e.value).max().unwrap() > max0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = soccer_inputs(2, 2, 300, &[1, 1], 7);
        let b = soccer_inputs(2, 2, 300, &[1, 1], 7);
        assert_eq!(a, b);
    }
}
