#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-bench
//!
//! Experiment harness reproducing every figure of the Dema paper's
//! evaluation (§4), plus criterion microbenchmarks and ablations.
//!
//! The `experiments` binary drives full cluster runs and prints the same
//! series the paper plots:
//!
//! | subcommand | paper | series |
//! |---|---|---|
//! | `fig5a` | Fig 5a | throughput per system |
//! | `fig5b` | Fig 5b | latency per system |
//! | `fig6a` | Fig 6a | network utilization per system |
//! | `fig6b` | Fig 6b | network cost vs #local nodes |
//! | `fig7a` | Fig 7a | throughput vs #local nodes |
//! | `fig7b` | Fig 7b | accuracy (1 − MPE) per system |
//! | `fig8a` | Fig 8a | Dema throughput per quantile |
//! | `fig8b` | Fig 8b | Dema throughput vs γ per scale-rate skew |
//! | `ablate-selector` | — | candidate traffic per selection strategy |
//! | `ablate-adaptive` | — | adaptive vs fixed γ under rate drift |
//!
//! Absolute numbers depend on the host; EXPERIMENTS.md records the *shapes*
//! the paper reports and what this harness measures.

pub mod harness;
pub mod workload;
