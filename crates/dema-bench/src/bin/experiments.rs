//! Regenerate every figure of the Dema paper's evaluation.
//!
//! ```sh
//! cargo run --release -p dema-bench --bin experiments -- all
//! cargo run --release -p dema-bench --bin experiments -- fig6a --events 2000000
//! cargo run --release -p dema-bench --bin experiments -- fig8b --quick
//! ```
//!
//! Each subcommand prints the paper's series as a table and writes a CSV
//! under `results/`. Absolute numbers are host-dependent; EXPERIMENTS.md
//! records the expected *shapes* and the measured outcomes.

use std::path::Path;

use dema_bench::harness::{
    mean_percentage_error, measure, measure_paced, measure_with, paper_systems, print_table,
    CsvSink, Measurement,
};
use dema_bench::workload::{soccer_inputs, total_events, uniform_scales};
use dema_cluster::config::TransportKind;
use dema_cluster::config::{EngineKind, GammaMode};
use dema_core::coordinator::quantile_ground_truth;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;

/// Tunable experiment scale.
#[derive(Debug, Clone, Copy)]
struct Scale {
    /// Events per second per local node for throughput-style figures.
    rate: u64,
    /// Windows per run.
    windows: usize,
    /// Fixed γ used by the paper's main experiments.
    gamma: u64,
    /// Total events per local node for the network-cost figure.
    volume: u64,
    /// Simulated per-node link capacity for the throughput/latency figures
    /// (Mbit/s); 0 = unlimited. The paper's motivation is bandwidth-
    /// constrained edge links, so the default models a fast edge uplink.
    bandwidth_mbps: u64,
}

impl Scale {
    fn default_scale() -> Scale {
        Scale {
            rate: 100_000,
            windows: 5,
            gamma: 10_000,
            volume: 2_000_000,
            bandwidth_mbps: 400,
        }
    }
    fn quick() -> Scale {
        Scale {
            rate: 10_000,
            windows: 3,
            gamma: 1_000,
            volume: 100_000,
            bandwidth_mbps: 100,
        }
    }

    fn transport(&self) -> TransportKind {
        if self.bandwidth_mbps == 0 {
            TransportKind::Mem
        } else {
            TransportKind::Throttled {
                mbits_per_sec: self.bandwidth_mbps,
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--rate" => {
                i += 1;
                scale.rate = args[i].parse().expect("--rate takes a number");
            }
            "--windows" => {
                i += 1;
                scale.windows = args[i].parse().expect("--windows takes a number");
            }
            "--gamma" => {
                i += 1;
                scale.gamma = args[i].parse().expect("--gamma takes a number");
            }
            "--events" => {
                i += 1;
                scale.volume = args[i].parse().expect("--events takes a number");
            }
            "--out" => {
                i += 1;
                out_dir = args[i].clone();
            }
            "--bandwidth" => {
                i += 1;
                scale.bandwidth_mbps = args[i]
                    .parse()
                    .expect("--bandwidth takes Mbit/s (0 = unlimited)");
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with("--") => which.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if which.is_empty() {
        usage();
        std::process::exit(2);
    }
    let sink = CsvSink::new(Path::new(&out_dir));
    let run = |name: &str, sink: &CsvSink| match name {
        "fig5a" => fig5a(scale, sink),
        "fig5b" => fig5b(scale, sink),
        "fig6a" => fig6a(scale, sink),
        "fig6b" => fig6b(scale, sink),
        "fig7a" => fig7a(scale, sink),
        "fig7b" => fig7b(scale, sink),
        "fig8a" => fig8a(scale, sink),
        "fig8b" => fig8b(scale, sink),
        "ablate-selector" => ablate_selector(scale, sink),
        "ablate-adaptive" => ablate_adaptive(scale, sink),
        "ext-sketches" => ext_sketches(scale, sink),
        "ext-multiq" => ext_multiq(scale, sink),
        "ext-sliding" => ext_sliding(scale, sink),
        "sustainable" => sustainable(scale, sink),
        other => {
            eprintln!("unknown experiment {other}");
            usage();
            std::process::exit(2);
        }
    };
    for name in &which {
        if name == "all" {
            for fig in [
                "fig5a",
                "fig5b",
                "fig6a",
                "fig6b",
                "fig7a",
                "fig7b",
                "fig8a",
                "fig8b",
                "ablate-selector",
                "ablate-adaptive",
                "ext-sketches",
                "ext-multiq",
                "ext-sliding",
            ] {
                run(fig, &sink);
            }
        } else {
            run(name, &sink);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <fig5a|fig5b|fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|
                    ablate-selector|ablate-adaptive|ext-sketches|ext-multiq|ext-sliding|
                    sustainable|all>...
       [--quick] [--rate N] [--windows N] [--gamma N] [--events N] [--bandwidth MBPS] [--out DIR]"
    );
}

/// Human-readable bandwidth setting.
fn bandwidth_label(scale: Scale) -> String {
    if scale.bandwidth_mbps == 0 {
        "unlimited links".to_string()
    } else {
        format!("{} Mbit/s per-node links", scale.bandwidth_mbps)
    }
}

/// Figures 5a/5b share their runs: 1 root + 2 locals, median, fixed γ.
fn run_systems(scale: Scale, n_locals: usize) -> Vec<Measurement> {
    let inputs = soccer_inputs(
        n_locals,
        scale.windows,
        scale.rate,
        &uniform_scales(n_locals),
        42,
    );
    let mut systems = paper_systems(scale.gamma.min(scale.rate / 2).max(2));
    // The paper predicts "Tdigest to outperform Dema also with a
    // decentralized setup" — include that extension as a fifth series.
    systems.push((
        "tdigest-dist",
        EngineKind::TdigestDistributed { compression: 100.0 },
    ));
    systems
        .into_iter()
        .map(|(label, engine)| {
            measure_with(label, engine, Quantile::MEDIAN, &inputs, scale.transport())
        })
        .collect()
}

fn fig5a(scale: Scale, sink: &CsvSink) {
    let measurements = run_systems(scale, 2);
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| vec![m.system.clone(), format!("{:.0}", m.throughput)])
        .collect();
    print_table(
        &format!(
            "Figure 5a — throughput (events/s), 2 local nodes, median, {}",
            bandwidth_label(scale)
        ),
        &["system", "throughput"],
        &rows,
    );
    sink.write(
        "fig5a_throughput",
        "system,events_per_second",
        &measurements
            .iter()
            .map(|m| format!("{},{:.0}", m.system, m.throughput))
            .collect::<Vec<_>>(),
    );
}

fn fig5b(scale: Scale, sink: &CsvSink) {
    let measurements = run_systems(scale, 2);
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.system.clone(),
                format!("{:.0}", m.latency_mean_us),
                m.latency_p50_us.to_string(),
                m.latency_p99_us.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 5b — latency (µs), 2 local nodes, median, {}",
            bandwidth_label(scale)
        ),
        &["system", "mean", "p50", "p99"],
        &rows,
    );
    sink.write(
        "fig5b_latency",
        "system,mean_us,p50_us,p99_us",
        &measurements
            .iter()
            .map(|m| {
                format!(
                    "{},{:.0},{},{}",
                    m.system, m.latency_mean_us, m.latency_p50_us, m.latency_p99_us
                )
            })
            .collect::<Vec<_>>(),
    );
}

fn fig6a(scale: Scale, sink: &CsvSink) {
    // Fixed event volume per local node, 1 s windows, γ fixed.
    let windows = 5usize;
    let rate = scale.volume / windows as u64;
    let inputs = soccer_inputs(2, windows, rate, &uniform_scales(2), 42);
    let total = total_events(&inputs);
    let gamma = scale.gamma.min(rate / 2).max(2);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, engine) in paper_systems(gamma) {
        let m = measure(label, engine, Quantile::MEDIAN, &inputs);
        let reduction = 100.0 * (1.0 - m.traffic.events as f64 / total as f64);
        rows.push(vec![
            m.system.clone(),
            m.traffic.events.to_string(),
            format!("{:.1}", m.traffic.bytes as f64 / 1_048_576.0),
            format!("{reduction:.2}"),
        ]);
        csv.push(format!(
            "{},{},{},{reduction:.2}",
            m.system, m.traffic.events, m.traffic.bytes
        ));
    }
    print_table(
        &format!("Figure 6a — network utilization, {total} events total, γ={gamma}"),
        &["system", "events on wire", "MiB on wire", "reduction %"],
        &rows,
    );
    sink.write(
        "fig6a_network",
        "system,wire_events,wire_bytes,reduction_pct",
        &csv,
    );
}

fn fig6b(scale: Scale, sink: &CsvSink) {
    let windows = 3usize;
    let rate = (scale.volume / 4).max(1000) / windows as u64;
    let gamma = scale.gamma.min(rate / 2).max(2);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for n in [2usize, 4, 6, 8] {
        let inputs = soccer_inputs(n, windows, rate, &uniform_scales(n), 42);
        for (label, engine) in paper_systems(gamma) {
            let m = measure(label, engine, Quantile::MEDIAN, &inputs);
            rows.push(vec![
                n.to_string(),
                m.system.clone(),
                m.traffic.events.to_string(),
                format!("{:.1}", m.traffic.bytes as f64 / 1_048_576.0),
            ]);
            csv.push(format!(
                "{n},{},{},{}",
                m.system, m.traffic.events, m.traffic.bytes
            ));
        }
    }
    print_table(
        "Figure 6b — network cost vs number of local nodes",
        &["locals", "system", "events on wire", "MiB on wire"],
        &rows,
    );
    sink.write(
        "fig6b_network_nodes",
        "locals,system,wire_events,wire_bytes",
        &csv,
    );
}

fn fig7a(scale: Scale, sink: &CsvSink) {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for n in [2usize, 4, 6, 8] {
        let inputs = soccer_inputs(n, scale.windows, scale.rate, &uniform_scales(n), 42);
        for (label, engine) in paper_systems(scale.gamma.min(scale.rate / 2).max(2)) {
            if label.starts_with("tdigest") {
                continue; // the paper's Fig 7a compares Dema, Scotty, Desis
            }
            let m = measure_with(label, engine, Quantile::MEDIAN, &inputs, scale.transport());
            rows.push(vec![
                n.to_string(),
                m.system.clone(),
                format!("{:.0}", m.throughput),
            ]);
            csv.push(format!("{n},{},{:.0}", m.system, m.throughput));
        }
    }
    print_table(
        "Figure 7a — scalability: throughput vs number of local nodes",
        &["locals", "system", "events/s"],
        &rows,
    );
    sink.write("fig7a_scalability", "locals,system,events_per_second", &csv);
}

fn fig7b(scale: Scale, sink: &CsvSink) {
    let inputs = soccer_inputs(2, scale.windows, scale.rate, &uniform_scales(2), 42);
    // Ground truth: full global sort (what Scotty computes).
    let truth: Vec<Option<i64>> = (0..scale.windows)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, Quantile::MEDIAN)
                .ok()
                .map(|e| e.value)
        })
        .collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, engine) in paper_systems(scale.gamma.min(scale.rate / 2).max(2)) {
        if label.contains("desis") {
            continue; // the paper's Fig 7b compares Dema, Scotty, Tdigest
        }
        let m = measure(label, engine, Quantile::MEDIAN, &inputs);
        let accuracy = 100.0 * (1.0 - mean_percentage_error(&m.values, &truth));
        rows.push(vec![m.system.clone(), format!("{accuracy:.4}")]);
        csv.push(format!("{},{accuracy:.6}", m.system));
    }
    print_table(
        "Figure 7b — accuracy (1 − MPE, %)",
        &["system", "accuracy %"],
        &rows,
    );
    sink.write("fig7b_accuracy", "system,accuracy_pct", &csv);
}

fn fig8a(scale: Scale, sink: &CsvSink) {
    let inputs = soccer_inputs(2, scale.windows, scale.rate, &uniform_scales(2), 42);
    let gamma = scale.gamma.min(scale.rate / 2).max(2);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, q) in [
        ("p25", Quantile::P25),
        ("p50", Quantile::MEDIAN),
        ("p75", Quantile::P75),
    ] {
        let m = measure(
            "dema",
            EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::WindowCut,
            },
            q,
            &inputs,
        );
        rows.push(vec![label.to_string(), format!("{:.0}", m.throughput)]);
        csv.push(format!("{label},{:.0}", m.throughput));
    }
    print_table(
        "Figure 8a — Dema throughput per quantile function",
        &["quantile", "events/s"],
        &rows,
    );
    sink.write("fig8a_quantiles", "quantile,events_per_second", &csv);
}

fn fig8b(scale: Scale, sink: &CsvSink) {
    // Dema #1 / #2 / #10: scale-rate pairs (1,1), (1,2), (1,10); 30 % quantile.
    let q = Quantile::new(0.3).expect("valid quantile");
    let instances = [
        ("dema#1", [1i64, 1]),
        ("dema#2", [1, 2]),
        ("dema#10", [1, 10]),
    ];
    let gammas: Vec<u64> = [2u64, 10, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&g| g <= scale.rate)
        .collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, scales) in instances {
        let inputs = soccer_inputs(2, scale.windows, scale.rate, &scales, 42);
        for &gamma in &gammas {
            let m = measure(
                name,
                EngineKind::Dema {
                    gamma: GammaMode::Fixed(gamma),
                    strategy: SelectionStrategy::WindowCut,
                },
                q,
                &inputs,
            );
            rows.push(vec![
                name.to_string(),
                gamma.to_string(),
                format!("{:.0}", m.throughput),
            ]);
            csv.push(format!("{name},{gamma},{:.0}", m.throughput));
        }
    }
    print_table(
        "Figure 8b — Dema throughput vs γ under scale-rate skew (30% quantile)",
        &["instance", "γ", "events/s"],
        &rows,
    );
    sink.write("fig8b_adaptivity", "instance,gamma,events_per_second", &csv);
}

/// Ablation: candidate traffic per selection strategy (what the window-cut
/// algorithm saves on overlap-heavy inputs).
fn ablate_selector(scale: Scale, sink: &CsvSink) {
    let inputs = soccer_inputs(4, scale.windows, scale.rate / 2, &uniform_scales(4), 42);
    let gamma = (scale.rate / 100).max(16);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, strategy) in [
        ("window-cut", SelectionStrategy::WindowCut),
        ("classified-scan", SelectionStrategy::ClassifiedScan),
        ("no-cut", SelectionStrategy::NoCut),
    ] {
        let m = measure(
            label,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy,
            },
            Quantile::MEDIAN,
            &inputs,
        );
        rows.push(vec![
            label.to_string(),
            m.traffic.events.to_string(),
            format!("{:.0}", m.throughput),
        ]);
        csv.push(format!("{label},{},{:.0}", m.traffic.events, m.throughput));
    }
    print_table(
        &format!("Ablation — selection strategy (4 overlapping locals, γ={gamma})"),
        &["strategy", "events on wire", "events/s"],
        &rows,
    );
    sink.write(
        "ablate_selector",
        "strategy,wire_events,events_per_second",
        &csv,
    );
}

/// Ablation: adaptive γ vs fixed γ when the event rate drifts.
fn ablate_adaptive(scale: Scale, sink: &CsvSink) {
    // Rate ramps ×4 halfway through the run.
    let half = scale.windows.max(4);
    let mut inputs = soccer_inputs(2, half, scale.rate / 4, &uniform_scales(2), 42);
    let fast = soccer_inputs(2, half, scale.rate, &uniform_scales(2), 77);
    for (node, extra) in inputs.iter_mut().zip(fast) {
        node.extend(extra);
    }
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, mode) in [
        ("adaptive", GammaMode::Adaptive { initial: 64 }),
        (
            "adaptive-per-node",
            GammaMode::AdaptivePerNode { initial: 64 },
        ),
        ("fixed-64", GammaMode::Fixed(64)),
        (
            "fixed-optimal-late",
            GammaMode::Fixed((scale.rate / 10).max(2)),
        ),
    ] {
        let m = measure_paced(
            label,
            EngineKind::Dema {
                gamma: mode,
                strategy: SelectionStrategy::WindowCut,
            },
            Quantile::MEDIAN,
            &inputs,
            5,
        );
        rows.push(vec![
            label.to_string(),
            m.traffic.events.to_string(),
            format!("{:.0}", m.throughput),
        ]);
        csv.push(format!("{label},{},{:.0}", m.traffic.events, m.throughput));
    }
    print_table(
        "Ablation — adaptive vs fixed γ under a 4× rate ramp",
        &["γ policy", "events on wire", "events/s"],
        &rows,
    );
    sink.write(
        "ablate_adaptive",
        "policy,wire_events,events_per_second",
        &csv,
    );
}

/// Extension: accuracy / size / speed of the three from-scratch sketches on
/// identical data, with the exact quantile as ground truth.
fn ext_sketches(scale: Scale, sink: &CsvSink) {
    use dema_sketch::{KllSketch, QDigest, QuantileSketch, TDigest};
    let n = (scale.rate * scale.windows as u64).max(100_000);
    let values: Vec<i64> = dema_gen::SoccerGenerator::new(42, 1, 1_000_000, 0)
        .take(n as usize)
        .map(|e| e.value)
        .collect();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    // Rank error is the canonical sketch metric: where does the estimate's
    // rank land relative to the requested q? (Value-relative error explodes
    // meaninglessly near small-valued quantiles.)
    let rank_of =
        |est: f64| sorted.partition_point(|&v| (v as f64) <= est) as f64 / sorted.len() as f64;
    fn measure_sketch<S: QuantileSketch>(
        name: &str,
        mut sketch: S,
        values: &[i64],
        rank_of: &dyn Fn(f64) -> f64,
        size_of: impl FnOnce(&mut S) -> usize,
        rows: &mut Vec<Vec<String>>,
        csv: &mut Vec<String>,
    ) {
        let start = std::time::Instant::now();
        for &v in values {
            sketch.insert(v as f64);
        }
        let insert_rate = values.len() as f64 / start.elapsed().as_secs_f64();
        let mut worst_rel = 0.0f64;
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let est = sketch.quantile(q).expect("non-empty");
            worst_rel = worst_rel.max((rank_of(est) - q).abs());
        }
        let size = size_of(&mut sketch);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", 100.0 * worst_rel),
            size.to_string(),
            format!("{:.1}M/s", insert_rate / 1e6),
        ]);
        csv.push(format!(
            "{name},{:.5},{size},{insert_rate:.0}",
            100.0 * worst_rel
        ));
    }
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    measure_sketch(
        "tdigest(δ=100)",
        TDigest::new(100.0),
        &values,
        &rank_of,
        |s| s.centroids().len() * 16,
        &mut rows,
        &mut csv,
    );
    measure_sketch(
        "qdigest(k=256)",
        QDigest::new(17, 256),
        &values,
        &rank_of,
        |s| s.node_count() * 16,
        &mut rows,
        &mut csv,
    );
    measure_sketch(
        "kll(k=256)",
        KllSketch::new(256),
        &values,
        &rank_of,
        |s| s.retained() * 8,
        &mut rows,
        &mut csv,
    );
    rows.push(vec![
        "exact(sort)".into(),
        "0.000".into(),
        format!("{}", n * 24),
        "—".into(),
    ]);
    csv.push(format!("exact,0,{},0", n * 24));
    print_table(
        &format!("Extension — sketch comparison over {n} events (worst rank error across q)"),
        &["sketch", "worst rank err %", "bytes", "insert rate"],
        &rows,
    );
    sink.write(
        "ext_sketches",
        "sketch,worst_rank_err_pct,bytes,inserts_per_sec",
        &csv,
    );
}

/// Extension: concurrent quantiles answered from one identification step vs
/// one cluster run per quantile.
fn ext_multiq(scale: Scale, sink: &CsvSink) {
    use dema_cluster::config::ClusterConfig;
    use dema_cluster::runner::{data_traffic, run_cluster};
    let inputs = soccer_inputs(2, scale.windows, scale.rate / 2, &uniform_scales(2), 42);
    let gamma = (scale.rate / 50).max(16);
    let quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];

    let mut shared_cfg = ClusterConfig::dema_fixed(gamma, Quantile::MEDIAN);
    shared_cfg.extra_quantiles = quantiles[1..]
        .iter()
        .map(|&q| Quantile::new(q).expect("valid"))
        .collect();
    shared_cfg.quantile = Quantile::new(quantiles[0]).expect("valid");
    let shared = run_cluster(&shared_cfg, inputs.clone()).expect("shared run");
    let shared_traffic = data_traffic(&shared).plus(&shared.control_traffic);

    let mut separate_events = 0u64;
    for &q in &quantiles {
        let cfg = ClusterConfig::dema_fixed(gamma, Quantile::new(q).expect("valid"));
        let r = run_cluster(&cfg, inputs.clone()).expect("separate run");
        separate_events += data_traffic(&r).plus(&r.control_traffic).events;
    }
    let rows = vec![
        vec![
            "shared (1 step, 6 quantiles)".to_string(),
            shared_traffic.events.to_string(),
        ],
        vec!["separate (6 runs)".to_string(), separate_events.to_string()],
    ];
    print_table(
        &format!("Extension — concurrent quantile queries (γ={gamma})"),
        &["mode", "events on wire"],
        &rows,
    );
    sink.write(
        "ext_multiq",
        "mode,wire_events",
        &[
            format!("shared,{}", shared_traffic.events),
            format!("separate,{separate_events}"),
        ],
    );
}

/// Extension: sliding-window Dema — pane-synopsis sharing and the root's
/// candidate cache.
fn ext_sliding(scale: Scale, sink: &CsvSink) {
    use dema_core::sliding::{sliding_quantiles, SlidingConfig};
    let rate = scale.rate / 2;
    let nodes: Vec<Vec<Event>> = (0..2u64)
        .map(|n| {
            dema_gen::SoccerGenerator::new(42 + n, 1, rate, 0)
                .take((scale.windows.max(4) + 2) * rate as usize)
                .collect()
        })
        .collect();
    let gamma = (rate / 50).max(16);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, len, slide) in [
        ("tumbling 1s", 1000u64, 1000u64),
        ("sliding 2s/500ms", 2000, 500),
        ("sliding 4s/500ms", 4000, 500),
    ] {
        let config = SlidingConfig {
            window_len: len,
            slide,
            gamma,
            quantile: Quantile::MEDIAN,
            strategy: SelectionStrategy::WindowCut,
        };
        let (results, stats) = sliding_quantiles(&nodes, config).expect("sliding run");
        rows.push(vec![
            label.to_string(),
            results.len().to_string(),
            stats.synopses_sent.to_string(),
            stats.candidate_events_sent.to_string(),
            stats.candidate_events_saved.to_string(),
        ]);
        csv.push(format!(
            "{label},{},{},{},{}",
            results.len(),
            stats.synopses_sent,
            stats.candidate_events_sent,
            stats.candidate_events_saved
        ));
    }
    print_table(
        &format!("Extension — sliding windows (γ={gamma}): pane sharing + root cache"),
        &[
            "windows",
            "count",
            "synopses",
            "candidates shipped",
            "candidates cached",
        ],
        &rows,
    );
    sink.write(
        "ext_sliding",
        "config,windows,synopses,candidates_shipped,candidates_cached",
        &csv,
    );
}

/// Maximum sustainable throughput per system (Karimov et al.): binary search
/// over the offered per-node rate, where a probe is sustained iff the paced
/// run keeps up with its (compressed) real-time schedule.
fn sustainable(scale: Scale, sink: &CsvSink) {
    use dema_cluster::config::ClusterConfig;
    use dema_cluster::runner::run_cluster;
    use dema_metrics::sustainable_throughput;
    let windows = scale.windows.max(4);
    let pace_ms = 50u64; // each "1 s" window compressed to 50 ms wall time
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, engine) in paper_systems(scale.gamma.min(scale.rate / 2).max(2)) {
        let found = sustainable_throughput(10_000, 40_000_000, 0.1, |rate| {
            // Offered rate is per local node, scaled to the pace compression.
            let per_window = (rate * pace_ms / 1000).max(1);
            let inputs = soccer_inputs(2, windows, per_window, &uniform_scales(2), 42);
            let config = ClusterConfig {
                quantile: Quantile::MEDIAN,
                engine,
                transport: scale.transport(),
                topology: dema_cluster::Topology::Star,
                pace_window_ms: Some(pace_ms),
                extra_quantiles: Vec::new(),
                resilience: None,
                faults: Vec::new(),
                threads: None,
                pipeline_depth: dema_cluster::root::PIPELINE_DEPTH,
                membership: dema_cluster::config::MembershipPlan::default(),
            };
            let report = run_cluster(&config, inputs).expect("probe run");
            // Sustained iff the run kept up with the schedule (small slack
            // for thread startup).
            report.wall_time.as_millis() as u64 <= pace_ms * windows as u64 + pace_ms / 2
        });
        let rate = found.unwrap_or(0);
        rows.push(vec![label.to_string(), format!("{rate}")]);
        csv.push(format!("{label},{rate}"));
    }
    print_table(
        &format!(
            "Sustainable throughput per local node (events/s, {} windows, {})",
            windows,
            bandwidth_label(scale)
        ),
        &["system", "sustainable rate"],
        &rows,
    );
    sink.write("sustainable", "system,events_per_second", &csv);
}
