//! What the fault-tolerance layer costs when nothing is failing.
//!
//! Three configurations of the same Dema run: the seed fast path (no
//! resilience, no fault wrappers), the resilience layer armed but idle
//! (supervisor + sent-message caches + responder NACK handling, no faults
//! injected), and transparent fault plans wrapping every link (the
//! `FaultySender` layer in place but configured to pass everything
//! through — which the runner elides via `FaultPlan::is_transparent`).
//! The target recorded in BENCH_NOTES.md: the armed-but-idle overhead
//! stays under ~2% of the seed path, so chaos-readiness is free to leave
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_bench::workload::{soccer_inputs, uniform_scales};
use dema_cluster::config::{ClusterConfig, NodeFaults, Resilience};
use dema_cluster::runner::run_cluster;
use dema_core::quantile::Quantile;
use dema_net::fault::FaultPlan;

const LOCALS: usize = 8;
const EVENTS_PER_WINDOW: u64 = 5_000;
const WINDOWS: usize = 8;

/// A generous resilience config: deadlines never fire on a healthy run,
/// so the measurement isolates bookkeeping, not retries.
fn idle_resilience() -> Resilience {
    Resilience {
        request_timeout_ms: 10_000,
        max_retries: 2,
        liveness_k: 100,
        seed: 42,
    }
}

fn bench_chaos_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_overhead");
    group.sample_size(10);
    let inputs = soccer_inputs(
        LOCALS,
        WINDOWS,
        EVENTS_PER_WINDOW,
        &uniform_scales(LOCALS),
        42,
    );
    group.throughput(Throughput::Elements(WINDOWS as u64));

    let transparent_faults: Vec<NodeFaults> = (0..LOCALS)
        .map(|n| NodeFaults {
            node: n as u32,
            uplink: Some(FaultPlan::new(n as u64)),
            responder: Some(FaultPlan::new(n as u64)),
            control: Some(FaultPlan::new(n as u64)),
        })
        .collect();
    for (label, resilience, faults) in [
        ("fault_layer_off", None, Vec::new()),
        ("resilience_idle", Some(idle_resilience()), Vec::new()),
        (
            "transparent_plans",
            Some(idle_resilience()),
            transparent_faults,
        ),
    ] {
        let mut config = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);
        config.resilience = resilience;
        config.faults = faults;
        group.bench_with_input(
            BenchmarkId::new("dema_windows", label),
            &config,
            |b, config| b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chaos_overhead);
criterion_main!(benches);
