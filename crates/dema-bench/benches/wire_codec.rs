//! Wire-codec benchmarks: the fidelity of the network-cost figures depends
//! on the codec, and the TCP transport pays these costs per frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bytes::BytesMut;
use dema_core::event::{Event, NodeId, WindowId};
use dema_core::slice::{SliceId, SliceSynopsis};
use dema_wire::Message;

fn event_batch(n: u64) -> Message {
    Message::EventBatch {
        node: NodeId(1),
        window: WindowId(2),
        sorted: true,
        events: (0..n).map(|i| Event::new(i as i64 * 3, i, i)).collect(),
    }
}

fn synopsis_batch(n: u32) -> Message {
    let node = NodeId(1);
    let window = WindowId(2);
    Message::SynopsisBatch {
        node,
        window,
        synopses: (0..n)
            .map(|i| SliceSynopsis {
                id: SliceId {
                    node,
                    window,
                    index: i,
                },
                first: i as i64 * 100,
                last: i as i64 * 100 + 99,
                count: 10_000,
                total_slices: n,
            })
            .collect(),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for n in [1_000u64, 100_000] {
        let msg = event_batch(n);
        group.throughput(Throughput::Bytes(msg.encoded_len() as u64));
        group.bench_with_input(BenchmarkId::new("event_batch", n), &msg, |b, msg| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(msg.encoded_len());
                msg.encode(&mut buf);
                black_box(buf.len())
            })
        });
    }
    let msg = synopsis_batch(100);
    group.throughput(Throughput::Bytes(msg.encoded_len() as u64));
    group.bench_function("synopsis_batch_100", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(msg.encoded_len());
            msg.encode(&mut buf);
            black_box(buf.len())
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for n in [1_000u64, 100_000] {
        let bytes = event_batch(n).to_bytes();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("event_batch", n), &bytes, |b, bytes| {
            b.iter(|| black_box(Message::decode(bytes).unwrap()))
        });
    }
    let bytes = synopsis_batch(100).to_bytes();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("synopsis_batch_100", |b| {
        b.iter(|| black_box(Message::decode(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
