//! Star vs multi-level aggregation trees: what the relay tier costs.
//!
//! The answers and the leaf-tier wire bytes are bit-identical by
//! construction (tests/tree.rs pins that), so the only things left to
//! measure are wall-clock throughput — windows/sec with criterion's
//! `Elements` rate — and the extra upper-tier bytes each added level
//! re-ships. The bytes/window numbers are printed once per configuration
//! (criterion measures time, not traffic) and recorded in BENCH_NOTES.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_bench::workload::{soccer_inputs, uniform_scales};
use dema_cluster::config::{ClusterConfig, Topology};
use dema_cluster::runner::run_cluster;
use dema_core::quantile::Quantile;

const LOCALS: usize = 8;
const EVENTS_PER_WINDOW: u64 = 5_000;
const WINDOWS: usize = 8;

fn bench_tree_vs_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_vs_star");
    group.sample_size(10);
    let inputs = soccer_inputs(
        LOCALS,
        WINDOWS,
        EVENTS_PER_WINDOW,
        &uniform_scales(LOCALS),
        42,
    );
    group.throughput(Throughput::Elements(WINDOWS as u64));
    for (label, topology) in [
        ("star_depth1", Topology::Star),
        (
            "tree_depth2_fanout4",
            Topology::Tree {
                fanout: 4,
                depth: 2,
            },
        ),
        (
            "tree_depth3_fanout2",
            Topology::Tree {
                fanout: 2,
                depth: 3,
            },
        ),
    ] {
        let mut config = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);
        config.topology = topology;

        // One-off traffic attribution: bytes per window per tier.
        let report = run_cluster(&config, inputs.clone()).unwrap();
        let windows = report.outcomes.len() as u64;
        let leaf = report.per_node_traffic.iter().map(|s| s.bytes).sum::<u64>()
            + report.control_traffic.bytes;
        print!("{label}: leaf-tier {} B/window", leaf / windows);
        for (i, tier) in report.tier_traffic.iter().enumerate().skip(1) {
            print!(
                ", tier{} {} B/window",
                i,
                (tier.up_total().bytes + tier.down_total().bytes) / windows
            );
        }
        println!();

        group.bench_with_input(
            BenchmarkId::new("dema_windows", label),
            &config,
            |b, config| b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_vs_star);
criterion_main!(benches);
