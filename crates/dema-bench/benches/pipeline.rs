//! End-to-end pipeline benchmarks: full cluster runs per engine over the
//! same inputs — the criterion companion to Figure 5a (`experiments fig5a`
//! measures the same path at larger scale and with bandwidth simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_bench::workload::{soccer_inputs, total_events, uniform_scales};
use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode};
use dema_cluster::runner::run_cluster;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_pipeline");
    group.sample_size(10);
    let inputs = soccer_inputs(2, 3, 20_000, &uniform_scales(2), 42);
    group.throughput(Throughput::Elements(total_events(&inputs)));
    let engines = [
        (
            "dema",
            EngineKind::Dema {
                gamma: GammaMode::Fixed(1_000),
                strategy: SelectionStrategy::WindowCut,
            },
        ),
        ("centralized", EngineKind::Centralized),
        ("dec_sort", EngineKind::DecSort),
        (
            "tdigest_central",
            EngineKind::TdigestCentral { compression: 100.0 },
        ),
        (
            "tdigest_dist",
            EngineKind::TdigestDistributed { compression: 100.0 },
        ),
    ];
    for (label, engine) in engines {
        let config = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap()))
        });
    }
    group.finish();
}

/// γ sweep over the whole pipeline — the criterion companion to Figure 8b.
fn bench_gamma_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_sweep");
    group.sample_size(10);
    let inputs = soccer_inputs(2, 3, 20_000, &[1, 10], 42);
    group.throughput(Throughput::Elements(total_events(&inputs)));
    for gamma in [2u64, 32, 512, 8_192] {
        let config = ClusterConfig::dema_fixed(gamma, Quantile::new(0.3).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &config, |b, config| {
            b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_gamma_sweep);
criterion_main!(benches);
