//! Reactor fan-out: wall cost of leaf count at fixed global load.
//!
//! The reactor runtime makes node count a wiring parameter — every leaf
//! (and its responder) is a stepper on a shard event loop, not a thread.
//! This group holds the per-window global dataset fixed and scales only
//! how many leaves it is dealt across, so the reported rate isolates the
//! per-node hosting overhead: registration-order source sweeps, per-role
//! outbound queues, and the root's fan-in. A thread-per-node runtime
//! could not run the 1000-leaf point at all on CI hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_cluster::config::ClusterConfig;
use dema_cluster::runner::run_cluster;
use dema_core::event::Event;
use dema_core::quantile::Quantile;

const WINDOWS: u64 = 3;
const EVENTS_PER_WINDOW: usize = 8_000;

/// One global dataset per window dealt round-robin over `leaves` nodes —
/// the same multiset at every scale, so the answers (and the root's
/// candidate work) stay constant while only the fan-out varies.
fn dealt_inputs(leaves: usize) -> Vec<Vec<Vec<Event>>> {
    (0..leaves)
        .map(|n| {
            (0..WINDOWS)
                .map(|w| {
                    (0..EVENTS_PER_WINDOW)
                        .filter(|j| j % leaves == n)
                        .map(|j| {
                            Event::new(
                                w as i64 * 1_000_000 + j as i64,
                                w,
                                w * EVENTS_PER_WINDOW as u64 + j as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn bench_leaf_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reactor_scale");
    group.sample_size(10);
    for leaves in [8usize, 64, 256, 1000] {
        let inputs = dealt_inputs(leaves);
        group.throughput(Throughput::Elements(
            (WINDOWS as usize * EVENTS_PER_WINDOW) as u64,
        ));
        let config = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
        group.bench_with_input(
            BenchmarkId::new("dema_leaves", leaves),
            &config,
            |b, config| b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_scaling);
criterion_main!(benches);
