//! Armed-allocator overhead: how much the counting/recycling global
//! allocator ([`dema_core::alloc`]) costs on release hot paths.
//!
//! Run twice and diff the medians:
//!
//! ```text
//! cargo bench -p dema-bench --bench alloc_overhead                      # disarmed (System)
//! cargo bench -p dema-bench --bench alloc_overhead --features strict    # armed
//! ```
//!
//! The groups cover the two regimes the allocator sees: raw alloc/free
//! churn across mixed size classes (worst case — every iteration is
//! dispatch overhead), and the full Dema star window pipeline over the
//! in-memory transport (realistic case — allocator traffic amortized
//! against sort/slice/merge work). Numbers live in BENCH_NOTES.md; the
//! acceptance bar is <2% on the pipeline group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_cluster::config::ClusterConfig;
use dema_cluster::runner::run_cluster;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_gen::SoccerGenerator;

/// Mixed-size alloc/free churn: exercises the shelf probe on every
/// iteration. Sizes straddle the recycler's interesting boundaries
/// (sub-pointer pads, small runs, page-ish buffers).
fn bench_alloc_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_overhead/churn");
    for &size in &[4usize, 64, 1024, 16 * 1024] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let v: Vec<u8> = black_box(Vec::with_capacity(size));
                black_box(v);
            })
        });
    }
    group.finish();
}

/// The steady-state Dema star run the zero-alloc gate exercises: with the
/// allocator armed, every window's buffers come off the shelves, so this
/// group's armed-vs-disarmed delta is the end-to-end cost of arming.
fn bench_pipeline(c: &mut Criterion) {
    let config = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    let inputs: Vec<Vec<Vec<Event>>> = (0..4)
        .map(|i| SoccerGenerator::new(7 + i as u64, 1, 2_000, 0).take_windows(3, 1000))
        .collect();
    // Warm the shelves so the armed run measures steady state, not the
    // one-time stocking cost.
    let _ = run_cluster(&config, inputs.clone()).expect("warm-up run");

    let mut group = c.benchmark_group("alloc_overhead/pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(4 * 3 * 1000));
    group.bench_function("dema_star_mem", |b| {
        b.iter(|| black_box(run_cluster(&config, inputs.clone()).expect("run")))
    });
    group.finish();
}

criterion_group!(benches, bench_alloc_churn, bench_pipeline);
criterion_main!(benches);
