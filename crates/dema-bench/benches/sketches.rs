//! Sketch microbenchmarks: insert, merge, and query costs of the t-digest
//! and q-digest — the Tdigest baseline's building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_gen::SoccerGenerator;
use dema_sketch::{KllSketch, QDigest, QuantileSketch, TDigest};

fn values(n: usize) -> Vec<f64> {
    SoccerGenerator::new(3, 1, 1_000_000, 0)
        .take(n)
        .map(|e| e.value as f64)
        .collect()
}

fn bench_tdigest_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdigest_insert");
    for n in [10_000usize, 100_000] {
        let vals = values(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &vals, |b, vals| {
            b.iter(|| {
                let mut d = TDigest::new(100.0);
                for &v in vals {
                    d.insert(v);
                }
                black_box(d.count())
            })
        });
    }
    group.finish();
}

fn bench_tdigest_merge(c: &mut Criterion) {
    let digests: Vec<TDigest> = (0..8)
        .map(|i| {
            let mut d = TDigest::new(100.0);
            for e in SoccerGenerator::new(i, 1, 1_000_000, 0).take(50_000) {
                d.insert(e.value as f64);
            }
            d
        })
        .collect();
    c.bench_function("tdigest_merge_8_digests", |b| {
        b.iter(|| {
            let mut acc = TDigest::new(100.0);
            for d in &digests {
                acc.merge_from(d);
            }
            black_box(acc.quantile(0.5))
        })
    });
}

fn bench_tdigest_quantile(c: &mut Criterion) {
    let mut d = TDigest::new(100.0);
    for v in values(100_000) {
        d.insert(v);
    }
    let _ = d.centroids(); // flush once so queries hit the fast path
    c.bench_function("tdigest_quantile_query", |b| {
        b.iter(|| black_box(d.quantile(0.5)))
    });
}

fn bench_qdigest(c: &mut Criterion) {
    let mut group = c.benchmark_group("qdigest");
    let vals: Vec<u64> = values(50_000).into_iter().map(|v| v as u64).collect();
    group.throughput(Throughput::Elements(vals.len() as u64));
    group.bench_function("insert_50k", |b| {
        b.iter(|| {
            let mut d = QDigest::new(17, 256);
            for &v in &vals {
                d.insert_weighted(v, 1);
            }
            black_box(d.count())
        })
    });
    let mut filled = QDigest::new(17, 256);
    for &v in &vals {
        filled.insert_weighted(v, 1);
    }
    group.bench_function("quantile_query", |b| {
        b.iter(|| black_box(filled.quantile(0.5)))
    });
    group.finish();
}

fn bench_kll(c: &mut Criterion) {
    let mut group = c.benchmark_group("kll");
    let vals = values(100_000);
    group.throughput(Throughput::Elements(vals.len() as u64));
    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut s = KllSketch::new(256);
            for &v in &vals {
                s.insert(v);
            }
            black_box(s.count())
        })
    });
    let mut filled = KllSketch::new(256);
    for &v in &vals {
        filled.insert(v);
    }
    group.bench_function("quantile_query", |b| {
        b.iter(|| black_box(filled.quantile(0.5)))
    });
    let sketches: Vec<KllSketch> = (0..8)
        .map(|i| {
            let mut s = KllSketch::with_seed(256, i);
            for e in SoccerGenerator::new(i, 1, 1_000_000, 0).take(50_000) {
                s.insert(e.value as f64);
            }
            s
        })
        .collect();
    group.bench_function("merge_8_sketches", |b| {
        b.iter(|| {
            let mut acc = KllSketch::new(256);
            for s in &sketches {
                acc.merge_from(s);
            }
            black_box(acc.quantile(0.5))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tdigest_insert,
    bench_tdigest_merge,
    bench_tdigest_quantile,
    bench_qdigest,
    bench_kll
);
criterion_main!(benches);
