//! End-to-end window throughput on the in-memory transport.
//!
//! Where `cluster_pipeline` reports events/sec over a handful of windows,
//! this group holds the per-window load fixed and scales the *number* of
//! windows, so criterion's `Elements` rate reads directly as windows/sec —
//! the figure the zero-copy candidate path and the root's two-stage window
//! pipeline are meant to move. Dema is compared against the
//! decentralized-sort baseline at the same window rate; the gap is the
//! cost of shipping and merging whole windows instead of a few slices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_bench::workload::{soccer_inputs, uniform_scales};
use dema_cluster::config::{ClusterConfig, EngineKind};
use dema_cluster::runner::run_cluster;
use dema_core::quantile::Quantile;

const LOCALS: usize = 4;
const EVENTS_PER_WINDOW: u64 = 5_000;

fn bench_windows_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for windows in [8usize, 32] {
        let inputs = soccer_inputs(
            LOCALS,
            windows,
            EVENTS_PER_WINDOW,
            &uniform_scales(LOCALS),
            42,
        );
        group.throughput(Throughput::Elements(windows as u64));
        let config = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);
        group.bench_with_input(
            BenchmarkId::new("dema_windows", windows),
            &config,
            |b, config| b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap())),
        );
        let config = ClusterConfig::baseline(EngineKind::DecSort, Quantile::MEDIAN);
        group.bench_with_input(
            BenchmarkId::new("dec_sort_windows", windows),
            &config,
            |b, config| b.iter(|| black_box(run_cluster(config, inputs.clone()).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_windows_per_sec);
criterion_main!(benches);
