//! Microbenchmarks of the Dema core: local-window sorting strategies
//! (ablation: incremental vs sort-on-close), slicing, the three candidate
//! selectors, and the calculation-step merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::merge::{merge_runs, select_kth};
use dema_core::selector::{select, SelectionStrategy};
use dema_core::slice::cut_into_slices;
use dema_core::window::{LocalWindow, SortStrategy};
use dema_gen::SoccerGenerator;

fn events(n: usize) -> Vec<Event> {
    SoccerGenerator::new(7, 1, 1_000_000, 0).take(n).collect()
}

/// Ablation: the paper prescribes incremental sorting on the local node;
/// sort-on-close is the alternative. Random arrival order is the worst case
/// for incremental insert, smooth sensor streams the best.
fn bench_sort_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_window_sort");
    for n in [1_000usize, 10_000] {
        let input = events(n);
        group.throughput(Throughput::Elements(n as u64));
        for (label, strategy) in [
            ("incremental", SortStrategy::Incremental),
            ("on_close", SortStrategy::OnClose),
            ("runs", SortStrategy::Runs),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &input, |b, input| {
                b.iter(|| {
                    let mut w = LocalWindow::new(NodeId(0), WindowId(0), u64::MAX, strategy);
                    for e in input {
                        w.insert(*e).unwrap();
                    }
                    black_box(w.into_sorted_events())
                })
            });
        }
    }
    group.finish();
}

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_into_slices");
    let mut sorted = events(100_000);
    sorted.sort_unstable();
    for gamma in [100u64, 1_000, 10_000] {
        group.throughput(Throughput::Elements(sorted.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                black_box(cut_into_slices(NodeId(0), WindowId(0), sorted.clone(), gamma).unwrap())
            })
        });
    }
    group.finish();
}

/// Candidate selection over many overlapping synopses — the root's hot path.
fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector");
    // 8 nodes, heavily overlapping windows, γ = 1000.
    let mut synopses = Vec::new();
    for node in 0..8u32 {
        let mut sorted: Vec<Event> = SoccerGenerator::new(node as u64, 1, 1_000_000, 0)
            .take(100_000)
            .collect();
        sorted.sort_unstable();
        let slices = cut_into_slices(NodeId(node), WindowId(0), sorted, 1_000).unwrap();
        let total = slices.len() as u32;
        synopses.extend(slices.iter().map(|s| s.synopsis(total).unwrap()));
    }
    let k: u64 = synopses.iter().map(|s| s.count).sum::<u64>() / 2;
    group.throughput(Throughput::Elements(synopses.len() as u64));
    for (label, strategy) in [
        ("window_cut", SelectionStrategy::WindowCut),
        ("classified_scan", SelectionStrategy::ClassifiedScan),
        ("no_cut", SelectionStrategy::NoCut),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(select(&synopses, k, strategy).unwrap()))
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("calculation_step");
    let runs: Vec<Vec<Event>> = (0..4)
        .map(|i| {
            let mut r: Vec<Event> = SoccerGenerator::new(i, 1, 1_000_000, 0)
                .take(25_000)
                .collect();
            r.sort_unstable();
            r
        })
        .collect();
    let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
    group.throughput(Throughput::Elements(total));
    group.bench_function("merge_runs_full", |b| {
        b.iter(|| black_box(merge_runs(&runs)))
    });
    group.bench_function("select_kth_median", |b| {
        b.iter(|| black_box(select_kth(&runs, total / 2).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_strategies,
    bench_slicing,
    bench_selectors,
    bench_merge
);
criterion_main!(benches);
