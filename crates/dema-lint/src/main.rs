#![forbid(unsafe_code)]

//! Command-line front end:
//! `dema-lint check <root> [--baseline <file>] [--spec] [--concurrency]
//! [--alloc]` and `dema-lint explain R<n>`.
//!
//! `check` exits 0 when no new violations are found and no baseline entry
//! is stale, 1 otherwise, 2 on usage errors. `--spec` additionally runs
//! the protocol-conformance rules R6/R7 against `dema_model::spec`;
//! `--concurrency` runs the cross-crate lock/channel rules R10–R13;
//! `--alloc` runs the allocation-discipline rules R15–R17. The
//! baseline defaults to `<root>/scripts/lint-baseline.txt` when present,
//! so `cargo run -p dema-lint -- check .` is the whole gate.
//!
//! `explain` prints one rule's rationale and allow-tag syntax, so a
//! failing CI line can be decoded without opening DESIGN.md.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dema-lint check <root> [--baseline <file>] [--spec] [--concurrency] [--alloc]\n       dema-lint explain R<n>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "check" => {}
        "explain" => {
            let Some(id) = iter.next() else {
                eprintln!("dema-lint: explain needs a rule id (R1..R17)");
                return ExitCode::from(2);
            };
            let Some(info) = dema_lint::rule_info(id) else {
                let known: Vec<&str> = dema_lint::RULES.iter().map(|r| r.id).collect();
                eprintln!(
                    "dema-lint: unknown rule `{id}` (known: {})",
                    known.join(", ")
                );
                return ExitCode::from(2);
            };
            println!("{}: {}", info.id, info.title);
            println!("  why:   {}", info.rationale);
            println!("  allow: {}", info.allow);
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("dema-lint: unknown command `{other}` (expected `check` or `explain`)");
            return ExitCode::from(2);
        }
    }
    let Some(root) = iter.next().map(PathBuf::from) else {
        eprintln!("dema-lint: missing <root> argument");
        return ExitCode::from(2);
    };
    let mut baseline_path: Option<PathBuf> = None;
    let mut spec = false;
    let mut concurrency = false;
    let mut alloc = false;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--spec" => spec = true,
            "--concurrency" => concurrency = true,
            "--alloc" => alloc = true,
            "--baseline" => match iter.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dema-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("dema-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("scripts").join("lint-baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => dema_lint::parse_baseline(&text),
        Err(_) => Vec::new(),
    };

    let report = dema_lint::check_all(&root, &baseline, spec, concurrency, alloc);
    for v in &report.violations {
        println!("{v}");
    }
    for key in &report.stale_baseline {
        println!("stale baseline entry (no matching finding, delete it): {key}");
    }
    let counts = dema_lint::per_rule_counts(&report.violations);
    let summary: Vec<String> = counts
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    if report.violations.is_empty() && report.stale_baseline.is_empty() {
        println!(
            "dema-lint: clean ({} files, {} baselined finding(s))",
            report.files_checked, report.baselined
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "dema-lint: {} new violation(s) [{}] and {} stale baseline entr(y/ies) \
             across {} files ({} baselined)",
            report.violations.len(),
            summary.join(", "),
            report.stale_baseline.len(),
            report.files_checked,
            report.baselined
        );
        ExitCode::FAILURE
    }
}
