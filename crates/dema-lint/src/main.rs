#![forbid(unsafe_code)]

//! Command-line front end:
//! `dema-lint check <root> [--baseline <file>] [--spec]`.
//!
//! Exits 0 when no new violations are found and no baseline entry is
//! stale, 1 otherwise, 2 on usage errors. `--spec` additionally runs the
//! protocol-conformance rules R6/R7 against `dema_model::spec`. The
//! baseline defaults to `<root>/scripts/lint-baseline.txt` when present,
//! so `cargo run -p dema-lint -- check .` is the whole gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        eprintln!("usage: dema-lint check <root> [--baseline <file>]");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("dema-lint: unknown command `{cmd}` (expected `check`)");
        return ExitCode::from(2);
    }
    let Some(root) = iter.next().map(PathBuf::from) else {
        eprintln!("dema-lint: missing <root> argument");
        return ExitCode::from(2);
    };
    let mut baseline_path: Option<PathBuf> = None;
    let mut spec = false;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--spec" => spec = true,
            "--baseline" => match iter.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dema-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("dema-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("scripts").join("lint-baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => dema_lint::parse_baseline(&text),
        Err(_) => Vec::new(),
    };

    let report = dema_lint::check_full(&root, &baseline, spec);
    for v in &report.violations {
        println!("{v}");
    }
    for key in &report.stale_baseline {
        println!("stale baseline entry (no matching finding, delete it): {key}");
    }
    let counts = dema_lint::per_rule_counts(&report.violations);
    let summary: Vec<String> = counts
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    if report.violations.is_empty() && report.stale_baseline.is_empty() {
        println!(
            "dema-lint: clean ({} files, {} baselined finding(s))",
            report.files_checked, report.baselined
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "dema-lint: {} new violation(s) [{}] and {} stale baseline entr(y/ies) \
             across {} files ({} baselined)",
            report.violations.len(),
            summary.join(", "),
            report.stale_baseline.len(),
            report.files_checked,
            report.baselined
        );
        ExitCode::FAILURE
    }
}
