#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dema-lint
//!
//! Repo-specific static analysis for the Dema workspace. The compiler cannot
//! see the invariants Dema's exactness rests on, and generic clippy lints
//! cannot know which files hold rank arithmetic or which enums mirror the
//! wire protocol. This crate closes that gap with a family of lexical rules:
//!
//! * **R1** — no `unwrap()` / `expect()` / `panic!` / `todo!` /
//!   `unimplemented!` in non-test library code of `dema-core`, `dema-wire`,
//!   `dema-net`, `dema-cluster`. A panicking root drops every window in
//!   flight; library code must surface `DemaError` instead. Justified sites
//!   carry a `// lint: allow(R1): <reason>` tag.
//! * **R2** — no raw `as` numeric casts in the rank/gamma/merge arithmetic
//!   files of `dema-core`. A silent truncation there turns an exact quantile
//!   into a wrong one; conversions go through `dema_core::numeric` (the two
//!   deliberate float casts inside it are tagged).
//! * **R3** — every `DemaError` variant is constructed somewhere outside its
//!   defining file and exercised by some test. A variant nobody builds is a
//!   dead protocol error; one no test matches is unverified behaviour.
//! * **R4** — every wire `Message` variant is mentioned by some test
//!   (golden/property coverage of the protocol surface).
//! * **R5** — no bare blocking `.recv()` in non-test library code of
//!   `dema-cluster`. The fault-tolerance layer assumes every wait is
//!   bounded: an unbounded receive cannot observe retry deadlines or a
//!   severed peer and hangs the run the resilience layer exists to save.
//!   Use `.recv_timeout(..)` / `.try_recv()`, or tag a deliberate site
//!   with `// lint: allow(R5): <reason>`.
//! * **R6** *(spec mode)* — protocol conformance against
//!   `dema_model::spec`: every wire variant a file's roles can receive
//!   appears in that file's non-test code (a deleted match arm fails),
//!   and the file mentions no variant outside its roles'
//!   `receives ∪ sends` (handling a forbidden tag fails).
//! * **R7** *(spec mode)* — every spec transition is referenced by a
//!   test: some file's test code mentions the transition's tag pair
//!   (trigger and reply together; pseudo-triggers need only the reply).
//! * **R8** — no stale `// lint: allow(Rn)` tag: a well-formed tag in a
//!   file the rule scopes that suppresses nothing is an error, so
//!   justifications cannot outlive the code they excused.
//! * **R9** — no ad-hoc `thread::spawn` in non-test hot-path code of
//!   `dema-core` / `dema-cluster` outside the deterministic sort pool
//!   (`dema-core/src/par.rs`, which is exempt). A stray spawn in the
//!   window path reorders work nondeterministically and escapes the
//!   `DEMA_THREADS` budget; go through `dema_core::par`, or tag a
//!   deliberate long-lived thread (runner topology) with
//!   `// lint: allow(R9): <reason>` or a baseline entry.
//! * **R10** *(concurrency mode)* — no lock-order inversions. Every lock
//!   acquisition nested inside another guard's lexical scope becomes an
//!   edge in a workspace-wide acquisition graph; a cycle means two code
//!   paths can take the same locks in opposite orders and deadlock. The
//!   runtime twin is `dema_core::sync`'s rank tracker; this rule catches
//!   the inversion before the interleaving does.
//! * **R11** *(concurrency mode)* — no lock guard held across a blocking
//!   call (`.recv()`, `.recv_timeout(..)`, `.write_all(..)`, `.join()`,
//!   a `sort_events` pool dispatch). A blocked holder starves every other
//!   thread that needs the lock; drop the guard in an inner block first.
//!   `Condvar::wait` is the sanctioned block-while-locked primitive and
//!   is deliberately not a needle.
//! * **R12** *(concurrency mode)* — no unbounded channel construction
//!   (`unbounded(..)`, std `mpsc::channel(..)`) in hot-path crates: an
//!   unbounded queue turns backpressure into unbounded memory growth.
//!   Deliberately-unbounded links carry `// lint: allow(R12): <reason>`.
//! * **R13** *(concurrency mode)* — hot-path crates must take locks
//!   through the ranked `dema_core::sync` wrappers: raw
//!   `std::sync::Mutex` / `RwLock` / `Condvar` or any `parking_lot`
//!   mention escapes the runtime lock-order tracker. The wrapper module
//!   itself (`dema-core/src/sync.rs`) is exempt.
//! * **R14** — no blocking `.recv()` / `.recv_timeout(..)` in the
//!   reactor-hosted runtime files (`dema-net/src/reactor.rs`,
//!   `dema-cluster/src/runner.rs`, `dema-cluster/src/host.rs`). The
//!   reactor's source sweep is the only legal wait point there: a role
//!   that blocks in a channel receive stalls every other role hosted on
//!   the same thread and starves the timer wheel. Deliver messages as
//!   `ReactorEvent::Readable`, deadlines as reactor timers; tag a
//!   justified site with `// lint: allow(R14): <reason>`.
//! * **R15** *(alloc mode)* — no raw allocation sites inside the marked
//!   hot-path regions of [`HOT_PATH_REGIONS`]. Each region is introduced
//!   by a `// hot-path: <name>` comment (the next brace block after it);
//!   `Vec::new(..)`, `vec![..]`, `.to_vec()`, `Box::new(..)`,
//!   `String::from(..)`, a `.min(..)`-clamped `with_capacity`, or a
//!   payload `.clone()` there pays an allocator round-trip on every
//!   window and breaks the zero-alloc steady-state gate
//!   (`dema_core::alloc::AllocGate`). `SharedRun` clones are refcount
//!   bumps and exempt; deleting a mandated marker is itself a finding.
//! * **R16** *(alloc mode)* — frame encode/decode files draw scratch from
//!   `dema_wire::pool::BufferPool`: ad-hoc `vec![..]` payload buffers,
//!   pool-bypassing `.to_bytes(..)` helpers, and min-clamped capacities
//!   in the framing files allocate per frame.
//! * **R17** *(alloc mode)* — channel/send paths in `dema-cluster` /
//!   `dema-net` must not copy `SharedRun` payload bytes: `.to_vec()` on a
//!   declared SharedRun name re-copies the window payload per hop; ship
//!   the `Arc`-backed view instead.
//!
//! The analysis is purely lexical over a *masked* view of each source file:
//! string and comment bytes are blanked (newlines kept) so tokens inside
//! them never match, and `#[cfg(test)]` regions plus `tests/`, `benches/`,
//! `examples/` trees count as test context. No registry dependencies, in
//! keeping with the workspace's vendored-offline setup.
//!
//! Known accepted violations live in a baseline file (`RULE|path|token`
//! lines); the gate fails only on *new* findings — and on *stale* baseline
//! entries: a key matching no current finding of the rules that ran must be
//! deleted, so the baseline can only shrink. See DESIGN.md §8 and §11.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test library code must be panic-free (rule R1).
pub const R1_CRATES: [&str; 4] = ["dema-core", "dema-wire", "dema-net", "dema-cluster"];

/// Source files carrying rank/gamma/merge arithmetic (rule R2), as
/// path suffixes relative to the workspace root: the dema-core algorithm
/// files plus the engine modules that do quantile math at the cluster layer.
pub const R2_FILES: [&str; 11] = [
    "dema-core/src/gamma.rs",
    "dema-core/src/rank.rs",
    "dema-core/src/quantile.rs",
    "dema-core/src/selector.rs",
    "dema-core/src/multi.rs",
    "dema-core/src/merge.rs",
    "dema-core/src/slice.rs",
    "dema-core/src/numeric.rs",
    "dema-core/src/invariant.rs",
    "dema-cluster/src/engines/dema.rs",
    "dema-cluster/src/engines/kll_distributed.rs",
];

/// Numeric primitive types whose `as` casts R2 rejects.
const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier: `R1`..`R17`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the checked root.
    pub path: String,
    /// 1-based line of the finding (0 for whole-file findings like R3/R4).
    pub line: usize,
    /// The offending token (panic call, cast, or enum variant).
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// The `RULE|path|token` key used by the baseline file.
    pub fn baseline_key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.path, self.token)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A source file loaded for analysis.
struct SourceFile {
    /// Path relative to the checked root, with `/` separators.
    rel: String,
    /// Original text (for allow-tag lookup).
    text: String,
    /// Text with string/comment bytes blanked, newlines preserved.
    masked: String,
    /// Byte ranges of `#[cfg(test)]`-gated items in `masked`.
    test_regions: Vec<(usize, usize)>,
    /// `true` if the whole file is test context by path.
    test_by_path: bool,
    /// `(0-based tag line, rule)` of allow tags consulted successfully —
    /// rule R8 flags the well-formed tags that never appear here.
    used_allows: RefCell<BTreeSet<(usize, String)>>,
}

impl SourceFile {
    fn load(root: &Path, path: &Path) -> Option<SourceFile> {
        let text = std::fs::read_to_string(path).ok()?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let masked = mask_source(&text);
        let test_regions = find_test_regions(&masked);
        let test_by_path = rel.split('/').any(|seg| {
            seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
        });
        Some(SourceFile {
            rel,
            text,
            masked,
            test_regions,
            test_by_path,
            used_allows: RefCell::new(BTreeSet::new()),
        })
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_by_path
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| (start..end).contains(&offset))
    }

    fn line_of(&self, offset: usize) -> usize {
        self.masked.as_bytes()[..offset]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// `true` if line `line` or the one above carries a well-formed
    /// `// lint: allow(<rule>): <reason>` tag in the original source.
    fn allowed(&self, rule: &str, line: usize) -> bool {
        let lines: Vec<&str> = self.text.lines().collect();
        let needle = format!("lint: allow({rule})");
        for candidate in [line.checked_sub(1), line.checked_sub(2)]
            .into_iter()
            .flatten()
        {
            if let Some(l) = lines.get(candidate) {
                if let Some(pos) = l.find(&needle) {
                    let rest = &l[pos + needle.len()..];
                    // A tag needs a reason: "): " followed by real text.
                    if rest.trim_start().starts_with(':')
                        && rest.trim_start()[1..].trim().len() >= 3
                    {
                        self.used_allows
                            .borrow_mut()
                            .insert((candidate, rule.to_string()));
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Blank out string literals and comments, preserving length and newlines,
/// so lexical rules never match inside them.
fn mask_source(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"..." / r#"..."#
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat(b'#').take(hashes))
                        .collect();
                    while j < bytes.len() && !bytes[j..].starts_with(&closer) {
                        j += 1;
                    }
                    j = (j + closer.len()).min(bytes.len());
                    for k in start..j {
                        if bytes[k] != b'\n' {
                            out[k] = b' ';
                        }
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal closes with ' within
                // a few bytes ('x', '\n', '\u{1F600}').
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                } else {
                    // One UTF-8 scalar, up to 4 bytes.
                    j += 1;
                    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                        j += 1;
                    }
                }
                if bytes.get(j) == Some(&b'\'') && j > i + 1 {
                    for k in i..=j {
                        out[k] = b' ';
                    }
                    i = j + 1;
                } else {
                    i += 1; // lifetime, leave it
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte ranges of items gated behind `#[cfg(test)]`-style attributes in
/// already-masked source.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(found) = masked[i..].find("#[cfg(") {
        let attr_start = i + found;
        let paren_start = attr_start + "#[cfg".len();
        let Some(paren_end) = matching(bytes, paren_start, b'(', b')') else {
            i = attr_start + 1;
            continue;
        };
        let content = &masked[paren_start + 1..paren_end];
        if !contains_word(content, "test") {
            i = paren_end;
            continue;
        }
        // The gated item: the next brace block (mod/fn/impl), or a single
        // `;`-terminated item.
        let mut j = paren_end + 1;
        let end = loop {
            match bytes.get(j) {
                Some(b'{') => match matching(bytes, j, b'{', b'}') {
                    Some(close) => break close + 1,
                    None => break bytes.len(),
                },
                Some(b';') => break j + 1,
                Some(_) => j += 1,
                None => break bytes.len(),
            }
        };
        regions.push((attr_start, end));
        i = end;
    }
    regions
}

/// Offset of the delimiter matching `open` at `start` (which must hold one).
fn matching(bytes: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(start) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `true` if `word` occurs in `text` with non-identifier neighbours.
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(found) = text[i..].find(word) {
        let at = i + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        i = at + word.len();
    }
    false
}

/// All word-boundary occurrences of `word` in `text`, as byte offsets.
fn word_occurrences(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find(word) {
        let at = i + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            found.push(at);
        }
        i = at + word.len();
    }
    found
}

/// Recursively collect `.rs` files under `dir`, skipping build/VCS trees and
/// lint fixtures.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(
                name,
                "target" | ".git" | "vendor" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            walk(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// R1: panic-capable calls in non-test library code of the core crates.
fn check_r1(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !in_crate_src(file, &R1_CRATES) || file.test_by_path {
        return;
    }
    let patterns: [(&str, &str); 5] = [
        (".unwrap()", ".unwrap()"),
        (".expect(", ".expect(...)"),
        ("panic!", "panic!"),
        ("todo!", "todo!"),
        ("unimplemented!", "unimplemented!"),
    ];
    for (needle, token) in patterns {
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(needle) {
            let at = i + pos;
            i = at + needle.len();
            // Macros need a word boundary before them (`core::panic!` still
            // has `:` before, which is fine; `no_panic!` must not match).
            if !needle.starts_with('.') {
                let before = file.masked.as_bytes()[..at].last().copied().unwrap_or(b' ');
                if is_ident_byte(before) {
                    continue;
                }
                if file.masked.as_bytes().get(at + needle.len()) != Some(&b'(') {
                    continue;
                }
            }
            if file.in_test_region(at) {
                continue;
            }
            let line = file.line_of(at);
            if file.allowed("R1", line) {
                continue;
            }
            violations.push(Violation {
                rule: "R1",
                path: file.rel.clone(),
                line,
                token: token.to_string(),
                message: format!(
                    "`{token}` can panic a library node; return a DemaError (or tag the site \
                     with `// lint: allow(R1): <reason>`)"
                ),
            });
        }
    }
}

/// R2: raw `as` numeric casts in rank/gamma/merge arithmetic files.
fn check_r2(file: &SourceFile, violations: &mut Vec<Violation>) {
    let in_scope = R2_FILES.iter().any(|f| file.rel.ends_with(f));
    if !in_scope {
        return;
    }
    for at in word_occurrences(&file.masked, "as") {
        if file.in_test_region(at) {
            continue;
        }
        let rest = &file.masked[at + 2..];
        let trimmed = rest.trim_start();
        let Some(ty) = NUMERIC_TYPES.iter().find(|t| {
            trimmed.starts_with(**t)
                && !is_ident_byte(trimmed.as_bytes().get(t.len()).copied().unwrap_or(b' '))
        }) else {
            continue;
        };
        let line = file.line_of(at);
        if file.allowed("R2", line) {
            continue;
        }
        violations.push(Violation {
            rule: "R2",
            path: file.rel.clone(),
            line,
            token: format!("as {ty}"),
            message: format!(
                "lossy `as {ty}` cast in rank/gamma arithmetic; use dema_core::numeric helpers \
                 or try_from (or tag with `// lint: allow(R2): <reason>`)"
            ),
        });
    }
}

/// R5: bare blocking `.recv()` in non-test dema-cluster library code. The
/// needle is exactly `.recv()`: `.recv_timeout(` and `.try_recv()` do not
/// match it.
fn check_r5(file: &SourceFile, violations: &mut Vec<Violation>) {
    let in_scope =
        file.rel.contains("crates/dema-cluster/src/") || file.rel.starts_with("dema-cluster/src/");
    if !in_scope || file.test_by_path {
        return;
    }
    let needle = ".recv()";
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find(needle) {
        let at = i + pos;
        i = at + needle.len();
        if file.in_test_region(at) {
            continue;
        }
        let line = file.line_of(at);
        if file.allowed("R5", line) {
            continue;
        }
        violations.push(Violation {
            rule: "R5",
            path: file.rel.clone(),
            line,
            token: ".recv()".to_string(),
            message: "bare blocking `.recv()` cannot observe retry deadlines or a dead peer; \
                      use `.recv_timeout(..)` / `.try_recv()` (or tag with \
                      `// lint: allow(R5): <reason>`)"
                .to_string(),
        });
    }
}

/// Files the reactor runtime owns (rule R14): the event loop itself and
/// the cluster layer that hosts roles on it. Every wait in these files
/// must go through the reactor's source sweep or timer wheel.
pub const R14_FILES: [&str; 3] = [
    "dema-net/src/reactor.rs",
    "dema-cluster/src/runner.rs",
    "dema-cluster/src/host.rs",
];

/// R14: blocking channel receives in reactor-hosted runtime files. Both
/// `.recv()` and `.recv_timeout(` are needles — a bounded block still
/// stalls every role sharing the thread and starves the timer wheel; the
/// reactor's own sweep is the only legal wait point.
fn check_r14(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !R14_FILES.iter().any(|f| file.rel.ends_with(f)) || file.test_by_path {
        return;
    }
    for (needle, token) in [
        (".recv()", ".recv()"),
        (".recv_timeout(", ".recv_timeout(..)"),
    ] {
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(needle) {
            let at = i + pos;
            i = at + needle.len();
            if file.in_test_region(at) {
                continue;
            }
            let line = file.line_of(at);
            if file.allowed("R14", line) {
                continue;
            }
            violations.push(Violation {
                rule: "R14",
                path: file.rel.clone(),
                line,
                token: token.to_string(),
                message: format!(
                    "blocking `{token}` in reactor-hosted runtime code stalls every role on \
                     the thread and starves the timer wheel; deliver messages as reactor \
                     events and deadlines as reactor timers (or tag with \
                     `// lint: allow(R14): <reason>`)"
                ),
            });
        }
    }
}

/// Crates whose non-test code must route parallelism through the sort pool
/// (rule R9).
pub const R9_CRATES: [&str; 2] = ["dema-core", "dema-cluster"];

/// The one file allowed to spawn: the deterministic pool itself.
pub const R9_EXEMPT: &str = "dema-core/src/par.rs";

/// R9: ad-hoc `thread::spawn` in non-test hot-path code. The needle is the
/// qualified call `thread::spawn(` — `std::thread::spawn(..)` and a
/// `use std::thread;` + `thread::spawn(..)` both match; `pool.spawn(..)`
/// and identifiers merely ending in `thread` do not.
fn check_r9(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !in_crate_src(file, &R9_CRATES) || file.test_by_path || file.rel.ends_with(R9_EXEMPT) {
        return;
    }
    let needle = "thread::spawn";
    let bytes = file.masked.as_bytes();
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find(needle) {
        let at = i + pos;
        i = at + needle.len();
        // `thread` must start its own path segment (`:` and whitespace are
        // fine; `my_thread::spawn` is some other module), and the match must
        // be a call, not a mention of the path.
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        if bytes.get(at + needle.len()) != Some(&b'(') {
            continue;
        }
        if file.in_test_region(at) {
            continue;
        }
        let line = file.line_of(at);
        if file.allowed("R9", line) {
            continue;
        }
        violations.push(Violation {
            rule: "R9",
            path: file.rel.clone(),
            line,
            token: "thread::spawn".to_string(),
            message: "ad-hoc `thread::spawn` bypasses the deterministic sort pool and the \
                      DEMA_THREADS budget; use `dema_core::par`, or tag a long-lived \
                      topology thread with `// lint: allow(R9): <reason>`"
                .to_string(),
        });
    }
}

/// Crates the concurrency pass (R10–R13) covers: the hot path from event
/// ingest to the aggregated answer, where a deadlock or unbounded queue
/// stalls every window in flight.
pub const CONC_CRATES: [&str; 4] = ["dema-core", "dema-wire", "dema-net", "dema-cluster"];

/// The instrumented sync layer itself — the one file allowed to name raw
/// std locks, because it is the wrapper the rest of the tree must use.
pub const CONC_EXEMPT: &str = "dema-core/src/sync.rs";

/// `true` if `file` is non-test source of one of `crates`.
fn in_crate_src(file: &SourceFile, crates: &[&str]) -> bool {
    crates.iter().any(|c| {
        file.rel.contains(&format!("crates/{c}/src/")) || file.rel.starts_with(&format!("{c}/src/"))
    })
}

/// Scope shared by all four concurrency rules.
fn conc_in_scope(file: &SourceFile) -> bool {
    !file.test_by_path && !file.rel.ends_with(CONC_EXEMPT) && in_crate_src(file, &CONC_CRATES)
}

/// One lock acquisition in non-test code: the guard's receiver name and
/// the byte range over which the guard is lexically held.
struct LockSite {
    /// Receiver identifier (`store` in `self.store.lock()`).
    name: String,
    /// Offset of the method-call dot.
    offset: usize,
    /// End of the guard's lexical scope (exclusive).
    scope_end: usize,
}

/// One nested acquisition: while `from`'s guard is lexically live, `to`
/// is acquired at `path:line`. These are the edges of the workspace-wide
/// acquisition graph R10 searches for cycles.
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: usize,
}

/// Names declared with an `RwLock<..>` type or bound via `RwLock::new`,
/// collected across the whole workspace so `.read()` / `.write()`
/// receivers can be told apart from same-named io or accessor methods.
fn declared_rwlocks(files: &[SourceFile]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in files {
        for line in file.masked.lines() {
            if contains_word(line, "RwLock") {
                collect_decl_name(line, "RwLock", &mut names);
            }
        }
    }
    names
}

/// If `line` declares a binding or field of type `ty` — `name: ..Ty<..>`
/// (field, param, static) or `let [mut] name = Ty::new(..)` — record the
/// name. Purely lexical: wrappers like `Arc<Ty<..>>` still resolve to the
/// field name left of the single `:`.
fn collect_decl_name(line: &str, ty: &str, names: &mut BTreeSet<String>) {
    if line.contains(&format!("{ty}::new(")) {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
                return;
            }
        }
    }
    let Some(ty_at) = line.find(&format!("{ty}<")) else {
        return;
    };
    // The identifier left of the last single `:` (not `::`) before the type.
    let head = line[..ty_at].as_bytes();
    let mut colon = None;
    let mut k = 0;
    while k < head.len() {
        if head[k] == b':' {
            if head.get(k + 1) == Some(&b':') {
                k += 2;
                continue;
            }
            colon = Some(k);
        }
        k += 1;
    }
    let Some(colon) = colon else { return };
    let mut end = colon;
    while end > 0 && head[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(head[start - 1]) {
        start -= 1;
    }
    if start < end {
        names.insert(line[start..end].to_string());
    }
}

/// Lexical end of the guard produced by the lock call at `at`. A
/// `let`-bound guard (including `if let` / `while let` / `match` heads,
/// whose temporaries live for the whole expression) lives to the end of
/// the enclosing block; a plain temporary dies with its statement.
fn guard_scope_end(masked: &str, at: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut b = at;
    while b > 0 && !matches!(bytes[b - 1], b';' | b'{' | b'}') {
        b -= 1;
    }
    let head = masked[b..at].trim_start();
    let let_bound = head.starts_with("let ")
        || head.starts_with("if let ")
        || head.starts_with("while let ")
        || head.starts_with("match ")
        || head.starts_with("for ");
    if let_bound {
        enclosing_block_end(masked, at)
    } else {
        statement_end(masked, at)
    }
}

/// Offset of the `}` closing the innermost block containing `at`.
fn enclosing_block_end(masked: &str, at: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut k = at;
    while k > 0 {
        k -= 1;
        match bytes[k] {
            b'}' => depth += 1,
            b'{' => {
                if depth == 0 {
                    return matching(bytes, k, b'{', b'}').unwrap_or(masked.len());
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    masked.len()
}

/// Offset where the statement containing `at` ends: its `;` at bracket
/// depth zero, or the `}` that closes the surrounding block (tail
/// expression).
fn statement_end(masked: &str, at: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(at) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            b';' if depth <= 0 => return k,
            _ => {}
        }
    }
    masked.len()
}

/// Every named lock acquisition in `file`'s non-test code. `.lock()` (and
/// `.lock_checked()`) always counts — only mutexes have it; `.read()` /
/// `.write()` count only when the receiver is a declared `RwLock` name,
/// so io methods never match.
fn lock_sites(file: &SourceFile, rwlock_names: &BTreeSet<String>) -> Vec<LockSite> {
    let bytes = file.masked.as_bytes();
    let mut sites = Vec::new();
    let needles = [
        (".lock()", false),
        (".lock_checked()", false),
        (".read()", true),
        (".write()", true),
        (".read_checked()", true),
        (".write_checked()", true),
    ];
    for (needle, rwlock_only) in needles {
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(needle) {
            let at = i + pos;
            i = at + needle.len();
            if file.in_test_region(at) {
                continue;
            }
            let mut s = at;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            if s == at {
                continue; // unnamed receiver, e.g. `).lock()`
            }
            let name = file.masked[s..at].to_string();
            if rwlock_only && !rwlock_names.contains(&name) {
                continue;
            }
            sites.push(LockSite {
                name,
                offset: at,
                scope_end: guard_scope_end(&file.masked, at),
            });
        }
    }
    sites.sort_by_key(|s| s.offset);
    sites
}

/// Blocking calls a guard must not span (rule R11). `Condvar::wait` is
/// deliberately absent: it releases the mutex while blocked.
const BLOCKING_NEEDLES: [(&str, &str); 6] = [
    (".recv()", ".recv()"),
    (".recv_timeout(", ".recv_timeout(..)"),
    (".write_all(", ".write_all(..)"),
    (".join()", ".join()"),
    ("sort_events(", "sort_events(..)"),
    ("sort_events_with(", "sort_events_with(..)"),
];

/// Per-file half of R10/R11: compute the file's lock sites, emit R11 for
/// blocking calls inside a guard scope, and collect the nesting edges for
/// the workspace-wide R10 cycle search.
fn check_conc_file(
    file: &SourceFile,
    rwlock_names: &BTreeSet<String>,
    edges: &mut Vec<LockEdge>,
    violations: &mut Vec<Violation>,
) {
    if !conc_in_scope(file) {
        return;
    }
    let sites = lock_sites(file, rwlock_names);

    for outer in &sites {
        for inner in &sites {
            if inner.offset > outer.offset
                && inner.offset < outer.scope_end
                && inner.name != outer.name
            {
                let line = file.line_of(inner.offset);
                if file.allowed("R10", line) {
                    continue;
                }
                edges.push(LockEdge {
                    from: outer.name.clone(),
                    to: inner.name.clone(),
                    path: file.rel.clone(),
                    line,
                });
            }
        }
    }

    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for site in &sites {
        let end = site.scope_end.min(file.masked.len());
        let scope = &file.masked[site.offset..end];
        for (needle, token) in BLOCKING_NEEDLES {
            let mut j = 0;
            while let Some(p) = scope[j..].find(needle) {
                let abs = site.offset + j + p;
                j += p + needle.len();
                // A word boundary before keeps `resort_events(` and
                // friends from matching the bare-function needles.
                if !needle.starts_with('.') {
                    let before = file.masked.as_bytes()[..abs]
                        .last()
                        .copied()
                        .unwrap_or(b' ');
                    if is_ident_byte(before) {
                        continue;
                    }
                }
                if file.in_test_region(abs) || !reported.insert(abs) {
                    continue;
                }
                let line = file.line_of(abs);
                if file.allowed("R11", line) {
                    continue;
                }
                violations.push(Violation {
                    rule: "R11",
                    path: file.rel.clone(),
                    line,
                    token: token.to_string(),
                    message: format!(
                        "`{token}` can block while the `{}` guard (taken on line {}) is \
                         still held, starving every thread that needs the lock; drop the \
                         guard in an inner block first (or tag with \
                         `// lint: allow(R11): <reason>`)",
                        site.name,
                        file.line_of(site.offset)
                    ),
                });
            }
        }
    }
}

/// BFS path `from -> .. -> to` through the acquisition graph, inclusive.
fn lock_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut visited: BTreeSet<&str> = BTreeSet::from([from]);
    let mut queue: VecDeque<&str> = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = parent.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(node).into_iter().flatten() {
            if visited.insert(next) {
                parent.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// R10: cycles in the workspace-wide acquisition graph. Each edge whose
/// target can reach back to its source closes a cycle; one finding per
/// distinct lock set, anchored at the inner acquisition of the first
/// closing edge found.
fn check_r10(edges: &[LockEdge], violations: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for e in edges {
        let Some(path) = lock_path(&adj, e.to.as_str(), e.from.as_str()) else {
            continue;
        };
        let mut cycle: Vec<&str> = vec![e.from.as_str()];
        cycle.extend(path);
        let mut sig: Vec<&str> = cycle.clone();
        sig.sort_unstable();
        sig.dedup();
        if !seen.insert(sig.join(",")) {
            continue;
        }
        // For the common two-lock inversion, name the opposing site too.
        let counter = edges
            .iter()
            .find(|o| o.from == e.to && o.to == e.from)
            .map(|o| format!(" (opposite order at {}:{})", o.path, o.line))
            .unwrap_or_default();
        violations.push(Violation {
            rule: "R10",
            path: e.path.clone(),
            line: e.line,
            token: format!("lock-cycle:{}", cycle.join("->")),
            message: format!(
                "lock-order inversion: acquisition cycle {} means two paths can take \
                 these locks in opposite orders and deadlock{counter}; pick one global \
                 order (see the rank table in dema_core::sync)",
                cycle.join(" -> ")
            ),
        });
    }
}

/// R12: unbounded channel construction in hot-path crates. Needles are
/// `unbounded(..)` (crossbeam-style, turbofish allowed) and std
/// `mpsc::channel(..)` (unbounded by construction; `sync_channel` is the
/// bounded twin and does not match).
fn check_r12(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !conc_in_scope(file) {
        return;
    }
    let bytes = file.masked.as_bytes();
    for at in word_occurrences(&file.masked, "unbounded") {
        let mut j = at + "unbounded".len();
        if file.masked[j..].starts_with("::<") {
            match matching(bytes, j + 2, b'<', b'>') {
                Some(close) => j = close + 1,
                None => continue,
            }
        }
        if bytes.get(j) != Some(&b'(') || file.in_test_region(at) {
            continue;
        }
        let line = file.line_of(at);
        if file.allowed("R12", line) {
            continue;
        }
        violations.push(Violation {
            rule: "R12",
            path: file.rel.clone(),
            line,
            token: "unbounded(..)".to_string(),
            message: "unbounded channel in a hot-path crate turns backpressure into \
                      unbounded memory growth; use a bounded channel, or tag a link \
                      whose depth is bounded elsewhere with `// lint: allow(R12): <reason>`"
                .to_string(),
        });
    }
    let needle = "mpsc::channel";
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find(needle) {
        let at = i + pos;
        i = at + needle.len();
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let mut j = at + needle.len();
        if file.masked[j..].starts_with("::<") {
            match matching(bytes, j + 2, b'<', b'>') {
                Some(close) => j = close + 1,
                None => continue,
            }
        }
        if bytes.get(j) != Some(&b'(') || file.in_test_region(at) {
            continue;
        }
        let line = file.line_of(at);
        if file.allowed("R12", line) {
            continue;
        }
        violations.push(Violation {
            rule: "R12",
            path: file.rel.clone(),
            line,
            token: "mpsc::channel(..)".to_string(),
            message: "std `mpsc::channel` is unbounded; use `sync_channel` (or tag with \
                      `// lint: allow(R12): <reason>` if depth is bounded elsewhere)"
                .to_string(),
        });
    }
}

/// R13: raw lock types in hot-path crates. Any `parking_lot` mention, a
/// qualified `std::sync::Mutex` / `RwLock` / `Condvar`, or a
/// `use std::sync::{..}` list naming one of them escapes the ranked
/// `dema_core::sync` wrappers and the runtime lock-order tracker.
fn check_r13(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !conc_in_scope(file) {
        return;
    }
    let bytes = file.masked.as_bytes();
    let push = |line: usize, token: &str, violations: &mut Vec<Violation>| {
        if file.allowed("R13", line) {
            return;
        }
        violations.push(Violation {
            rule: "R13",
            path: file.rel.clone(),
            line,
            token: token.to_string(),
            message: format!(
                "raw `{token}` lock in a hot-path crate escapes the runtime lock-order \
                 tracker; use the ranked `dema_core::sync` wrappers (or tag with \
                 `// lint: allow(R13): <reason>`)"
            ),
        });
    };
    let direct = [
        "parking_lot",
        "std::sync::Mutex",
        "std::sync::RwLock",
        "std::sync::Condvar",
    ];
    for needle in direct {
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(needle) {
            let at = i + pos;
            i = at + needle.len();
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + needle.len();
            let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
            if before_ok && after_ok && !file.in_test_region(at) {
                push(file.line_of(at), needle, violations);
            }
        }
    }
    let group = "std::sync::{";
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find(group) {
        let at = i + pos;
        let open = at + group.len() - 1;
        let Some(close) = matching(bytes, open, b'{', b'}') else {
            i = open + 1;
            continue;
        };
        i = close;
        if file.in_test_region(at) {
            continue;
        }
        for word in ["Mutex", "RwLock", "Condvar"] {
            if contains_word(&file.masked[open..close], word) {
                push(file.line_of(at), &format!("std::sync::{word}"), violations);
            }
        }
    }
}

/// Parse the variant names of `enum <name>` from a masked file.
fn enum_variants(masked: &str, enum_name: &str) -> Vec<String> {
    let needle = format!("enum {enum_name}");
    let Some(pos) = masked.find(&needle) else {
        return Vec::new();
    };
    let bytes = masked.as_bytes();
    let Some(open) = masked[pos..].find('{').map(|o| pos + o) else {
        return Vec::new();
    };
    let Some(close) = matching(bytes, open, b'{', b'}') else {
        return Vec::new();
    };
    let body = &masked[open + 1..close];
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expecting = true; // next top-level identifier is a variant name
    let mut i = 0;
    let b = body.as_bytes();
    while i < b.len() {
        match b[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b']' => {
                depth -= 1;
                i += 1;
            }
            b',' if depth == 0 => {
                expecting = true;
                i += 1;
            }
            b'#' if depth == 0 => {
                // Attribute on a variant: skip the [...] block.
                if let Some(ab) = body[i..].find('[') {
                    if let Some(close) = matching(b, i + ab, b'[', b']') {
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            c if depth == 0 && expecting && c.is_ascii_uppercase() => {
                let start = i;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                variants.push(body[start..i].to_string());
                expecting = false;
            }
            _ => i += 1,
        }
    }
    variants
}

/// R3/R4 helper: where is `Enum::Variant` mentioned across the workspace?
struct VariantUse {
    /// Mentioned in non-test code outside the defining file.
    constructed: bool,
    /// Mentioned in test context anywhere.
    tested: bool,
}

fn variant_uses(
    files: &[SourceFile],
    defining_file_suffix: &str,
    enum_name: &str,
    variant: &str,
) -> VariantUse {
    let mut usage = VariantUse {
        constructed: false,
        tested: false,
    };
    let qualified = format!("{enum_name}::{variant}");
    for file in files {
        for at in word_occurrences(&file.masked, &qualified) {
            let in_test = file.in_test_region(at + qualified.len() - 1);
            if in_test {
                usage.tested = true;
            } else if !file.rel.ends_with(defining_file_suffix) {
                usage.constructed = true;
            }
        }
    }
    usage
}

/// R3: every `DemaError` variant constructed and exercised by a test.
fn check_r3(files: &[SourceFile], violations: &mut Vec<Violation>) {
    let defining = "dema-core/src/error.rs";
    let Some(error_file) = files.iter().find(|f| f.rel.ends_with(defining)) else {
        return;
    };
    for variant in enum_variants(&error_file.masked, "DemaError") {
        let usage = variant_uses(files, defining, "DemaError", &variant);
        if !usage.constructed {
            violations.push(Violation {
                rule: "R3",
                path: error_file.rel.clone(),
                line: 0,
                token: variant.clone(),
                message: format!(
                    "DemaError::{variant} is never constructed outside error.rs — dead \
                     protocol error (construct it or remove the variant)"
                ),
            });
        }
        if !usage.tested {
            violations.push(Violation {
                rule: "R3",
                path: error_file.rel.clone(),
                line: 0,
                token: format!("{variant}(untested)"),
                message: format!(
                    "DemaError::{variant} is never matched in any test — its error path is \
                     unverified"
                ),
            });
        }
    }
}

/// R4: every wire `Message` variant mentioned by some test.
fn check_r4(files: &[SourceFile], violations: &mut Vec<Violation>) {
    let defining = "dema-wire/src/message.rs";
    let Some(message_file) = files.iter().find(|f| f.rel.ends_with(defining)) else {
        return;
    };
    for variant in enum_variants(&message_file.masked, "Message") {
        let usage = variant_uses(files, defining, "Message", &variant);
        if !usage.tested {
            violations.push(Violation {
                rule: "R4",
                path: message_file.rel.clone(),
                line: 0,
                token: variant.clone(),
                message: format!(
                    "wire Message::{variant} has no golden/property test mention — protocol \
                     drift would go unnoticed"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Allocation discipline (R15–R17, `--alloc`)
// ---------------------------------------------------------------------------

/// Hot-path regions the allocation pass audits. Each entry pairs a file
/// suffix with the name a `// hot-path: <name>` marker comment must carry
/// there; the audited region is the next brace-delimited block after the
/// marker (a function body, an impl, a loop). A listed marker missing from
/// an existing file is itself an R15 finding — the audit surface may only
/// grow, never silently shrink.
pub const HOT_PATH_REGIONS: [(&str, &str); 8] = [
    ("dema-core/src/slice.rs", "slicer"),
    ("dema-core/src/merge.rs", "merge-select"),
    ("dema-wire/src/message.rs", "codec"),
    ("dema-wire/src/frame.rs", "frame-io"),
    ("dema-net/src/reactor.rs", "reactor-dispatch"),
    ("dema-cluster/src/engines/dema.rs", "local-window"),
    ("dema-cluster/src/engines/dema.rs", "responder-serve"),
    ("dema-cluster/src/engines/retry.rs", "supervisor-tick"),
];

/// Files whose frame encode/decode must draw buffers from
/// `dema-wire::pool` (R16): ad-hoc `vec![..]` payload buffers or
/// pool-bypassing `.to_bytes(..)` helpers there allocate per frame.
pub const R16_FILES: [&str; 3] = [
    "dema-wire/src/frame.rs",
    "dema-net/src/tcp.rs",
    "dema-net/src/mem.rs",
];

/// Crates whose send paths R17 audits for SharedRun payload copies.
const R17_CRATES: [&str; 2] = ["dema-cluster", "dema-net"];

/// Byte range of the region introduced by `// hot-path: <name>`: the next
/// `{`..`}` block after the marker line. The marker lives in a comment, so
/// it is looked up in the *raw* text; masking preserves length, so the
/// offsets carry over to the masked view the needle scan uses.
fn hot_path_region(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let needle = format!("// hot-path: {name}");
    let mut search = 0;
    while let Some(pos) = file.text[search..].find(&needle) {
        let at = search + pos;
        search = at + needle.len();
        // The marker must end its line: "// hot-path: codec2" is not "codec".
        let line_end = file.text[at..]
            .find('\n')
            .map_or(file.text.len(), |n| at + n);
        if !file.text[at + needle.len()..line_end].trim().is_empty() {
            continue;
        }
        let bytes = file.masked.as_bytes();
        let open = (line_end..bytes.len()).find(|&i| bytes[i] == b'{')?;
        let close = matching(bytes, open, b'{', b'}')?;
        return Some((open, close + 1));
    }
    None
}

/// Names declared with a `SharedRun` type or bound via `SharedRun::new`,
/// collected workspace-wide. `SharedRun` is an `Arc`-backed view, so
/// `.clone()` on one of these names is a refcount bump, not a payload
/// copy — R15 exempts it, while R17 flags `.to_vec()` on the same names.
fn declared_shared_runs(files: &[SourceFile]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in files {
        for line in file.masked.lines() {
            if contains_word(line, "SharedRun") {
                collect_decl_name(line, "SharedRun", &mut names);
                collect_plain_decl_name(line, "SharedRun", &mut names);
            }
        }
    }
    names
}

/// Names annotated with the exact (non-generic) type `ty` — `name: Ty`,
/// `name: &Ty`, `name: &mut Ty` in a field or parameter list — plus
/// `let`-bindings of any `Ty::ctor(..)` call. Complements
/// [`collect_decl_name`], which handles generic `Ty<..>` annotations and
/// `Ty::new` bindings; `Vec<Ty>` containers deliberately do not resolve
/// (the container name is not a `Ty`).
fn collect_plain_decl_name(line: &str, ty: &str, names: &mut BTreeSet<String>) {
    let t = line.trim_start();
    if let Some(rest) = t.strip_prefix("let ") {
        if line.contains(&format!("{ty}::")) {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
            }
        }
    }
    let bytes = line.as_bytes();
    for at in word_occurrences(line, ty) {
        // Walk left across reference sigils and an optional `mut` to the
        // annotation's `:` (a `::` path segment does not count).
        let mut k = at;
        while k > 0 && (bytes[k - 1] == b' ' || bytes[k - 1] == b'&') {
            k -= 1;
        }
        if k >= 3 && &line[k - 3..k] == "mut" && (k == 3 || !is_ident_byte(bytes[k - 4])) {
            k -= 3;
            while k > 0 && (bytes[k - 1] == b' ' || bytes[k - 1] == b'&') {
                k -= 1;
            }
        }
        if k == 0 || bytes[k - 1] != b':' || (k >= 2 && bytes[k - 2] == b':') {
            continue;
        }
        let mut end = k - 1;
        while end > 0 && bytes[end - 1] == b' ' {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && is_ident_byte(bytes[start - 1]) {
            start -= 1;
        }
        if start < end {
            names.insert(line[start..end].to_string());
        }
    }
}

/// Identifier immediately left of offset `at` (empty if none).
fn ident_before(bytes: &[u8], at: usize) -> String {
    let mut start = at;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..at]).into_owned()
}

/// Record one allocation finding at masked offset `at` unless an allow tag
/// covers its line.
fn push_alloc_violation(
    file: &SourceFile,
    rule: &'static str,
    at: usize,
    token: &str,
    detail: &str,
    violations: &mut Vec<Violation>,
) {
    if file.in_test_region(at) {
        return;
    }
    let line = file.line_of(at);
    if file.allowed(rule, line) {
        return;
    }
    violations.push(Violation {
        rule,
        path: file.rel.clone(),
        line,
        token: token.to_string(),
        message: detail.to_string(),
    });
}

/// Scan one hot-path region for raw allocation sites (the R15 needles).
fn scan_alloc_region(
    file: &SourceFile,
    region: &str,
    start: usize,
    end: usize,
    shared_runs: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
) {
    let bytes = file.masked.as_bytes();
    let slice = &file.masked[start..end];
    let fire = |what: &str| {
        format!(
            "hot-path region `{region}` {what}; per-window work must reuse \
             pooled or thread-local buffers (`// lint: allow(R15): <reason>` \
             for allocation-free or cold sites)"
        )
    };
    // Unconditional needles: every hit is a fresh heap block per window.
    for (needle, token, what) in [
        (
            "Vec::new(",
            "Vec::new",
            "builds a fresh Vec with `Vec::new(..)`",
        ),
        ("vec![", "vec!", "allocates with the `vec![..]` macro"),
        (".to_vec()", "to_vec", "copies a slice with `.to_vec()`"),
        ("Box::new(", "Box::new", "boxes a value with `Box::new(..)`"),
        (
            "String::from(",
            "String::from",
            "allocates a String with `String::from(..)`",
        ),
    ] {
        let mut i = 0;
        while let Some(pos) = slice[i..].find(needle) {
            let at = start + i + pos;
            i += pos + needle.len();
            if needle.starts_with(|c: char| is_ident_byte(c as u8))
                && at > 0
                && is_ident_byte(bytes[at - 1])
            {
                continue; // MyVec::new, my_vec![ …
            }
            push_alloc_violation(file, "R15", at, token, &fire(what), violations);
        }
    }
    // `with_capacity(expr)` is fine when the capacity is exact; a capacity
    // clamped with `.min(..)` is the under-sizing pattern that reallocs on
    // real windows (the pre-pool codec caps).
    let mut i = 0;
    while let Some(pos) = slice[i..].find("with_capacity(") {
        let at = start + i + pos;
        i += pos + "with_capacity(".len();
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let open = at + "with_capacity".len();
        let Some(close) = matching(bytes, open, b'(', b')') else {
            continue;
        };
        if file.masked[open..close].contains(".min(") {
            push_alloc_violation(
                file,
                "R15",
                at,
                "with_capacity(..min..)",
                &fire(
                    "clamps a capacity with `.min(..)` — the buffer under-sizes \
                     and reallocates on real windows; validate the length and \
                     size exactly, or draw from a pool",
                ),
                violations,
            );
        }
    }
    // `.clone()` copies the payload — unless the receiver is a declared
    // SharedRun (an Arc view; its clone is a refcount bump).
    let mut i = 0;
    while let Some(pos) = slice[i..].find(".clone()") {
        let at = start + i + pos;
        i += pos + ".clone()".len();
        let recv = ident_before(bytes, at);
        if shared_runs.contains(&recv) {
            continue;
        }
        push_alloc_violation(
            file,
            "R15",
            at,
            "clone",
            &fire("deep-copies a payload with `.clone()`"),
            violations,
        );
    }
}

/// R15: no raw allocation sites inside marked hot-path regions, and every
/// region [`HOT_PATH_REGIONS`] mandates for a file actually carries its
/// marker.
fn check_r15(
    files: &[SourceFile],
    shared_runs: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
) {
    for file in files {
        if file.test_by_path {
            continue;
        }
        for &(suffix, name) in &HOT_PATH_REGIONS {
            if !file.rel.ends_with(suffix) {
                continue;
            }
            let Some((start, end)) = hot_path_region(file, name) else {
                violations.push(Violation {
                    rule: "R15",
                    path: file.rel.clone(),
                    line: 0,
                    token: format!("missing-marker:{name}"),
                    message: format!(
                        "hot-path region `{name}` is mandated here but its \
                         `// hot-path: {name}` marker is gone — the allocation \
                         audit surface may only grow; restore the marker above \
                         the region"
                    ),
                });
                continue;
            };
            scan_alloc_region(file, name, start, end, shared_runs, violations);
        }
    }
}

/// R16: frame encode/decode files draw buffers from `dema-wire::pool`.
/// Needles are ad-hoc `vec![..]` payload buffers, pool-bypassing
/// `.to_bytes(..)` helpers, and the min-clamped `with_capacity` caps.
fn check_r16(file: &SourceFile, violations: &mut Vec<Violation>) {
    if file.test_by_path || !R16_FILES.iter().any(|f| file.rel.ends_with(f)) {
        return;
    }
    let bytes = file.masked.as_bytes();
    for (needle, token, what) in [
        (
            "vec![",
            "vec!",
            "builds a per-frame buffer with `vec![..]` instead of \
             `pool.acquire()` — every frame pays an allocator round-trip",
        ),
        (
            ".to_bytes(",
            "to_bytes",
            "serializes through a pool-bypassing `.to_bytes(..)` helper; \
             encode into a pooled buffer with `write_frame_pooled` / \
             `encode_frame_into` instead",
        ),
    ] {
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(needle) {
            let at = i + pos;
            i = at + needle.len();
            push_alloc_violation(
                file,
                "R16",
                at,
                token,
                &format!("frame i/o {what} (`// lint: allow(R16): <reason>` if cold)"),
                violations,
            );
        }
    }
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find("with_capacity(") {
        let at = i + pos;
        i = at + "with_capacity(".len();
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let open = at + "with_capacity".len();
        let Some(close) = matching(bytes, open, b'(', b')') else {
            continue;
        };
        if file.masked[open..close].contains(".min(") {
            push_alloc_violation(
                file,
                "R16",
                at,
                "with_capacity(..min..)",
                "frame i/o clamps a buffer capacity with `.min(..)` — validate \
                 the length prefix and size exactly, or draw from the pool",
                violations,
            );
        }
    }
}

/// R17: channel/send paths must not copy SharedRun payload bytes. The
/// needle is `.to_vec()` on a workspace-declared SharedRun name in
/// `dema-cluster` / `dema-net` library code — ship the `Arc`-backed view
/// (or a sub-`SharedRun`) instead of materializing the events.
fn check_r17(
    files: &[SourceFile],
    shared_runs: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
) {
    for file in files {
        if file.test_by_path || !in_crate_src(file, &R17_CRATES) {
            continue;
        }
        let bytes = file.masked.as_bytes();
        let mut i = 0;
        while let Some(pos) = file.masked[i..].find(".to_vec()") {
            let at = i + pos;
            i = at + ".to_vec()".len();
            let recv = ident_before(bytes, at);
            if !shared_runs.contains(&recv) {
                continue;
            }
            push_alloc_violation(
                file,
                "R17",
                at,
                &format!("{recv}.to_vec"),
                &format!(
                    "send path copies SharedRun payload `{recv}` with \
                     `.to_vec()`; ship the Arc-backed view (clone is a \
                     refcount bump) instead of materializing the events \
                     (`// lint: allow(R17): <reason>` for cold paths)"
                ),
                violations,
            );
        }
    }
}

/// `true` if `rule`'s findings can occur in `file` — i.e. an allow tag for
/// it there is load-bearing. Tags for out-of-scope rules (doc examples,
/// message strings) are inert, not stale; likewise R10–R13 tags are only
/// load-bearing when the concurrency pass actually ran, and R15–R17 tags
/// when the allocation pass did.
fn rule_in_scope(rule: &str, file: &SourceFile, concurrency: bool, alloc: bool) -> bool {
    match rule {
        "R1" => !file.test_by_path && in_crate_src(file, &R1_CRATES),
        "R2" => R2_FILES.iter().any(|f| file.rel.ends_with(f)),
        "R5" => {
            !file.test_by_path
                && (file.rel.contains("crates/dema-cluster/src/")
                    || file.rel.starts_with("dema-cluster/src/"))
        }
        "R9" => {
            !file.test_by_path && !file.rel.ends_with(R9_EXEMPT) && in_crate_src(file, &R9_CRATES)
        }
        "R10" | "R11" | "R12" | "R13" => concurrency && conc_in_scope(file),
        "R14" => !file.test_by_path && R14_FILES.iter().any(|f| file.rel.ends_with(f)),
        "R15" => {
            alloc
                && !file.test_by_path
                && HOT_PATH_REGIONS
                    .iter()
                    .any(|(suffix, _)| file.rel.ends_with(suffix))
        }
        "R16" => alloc && !file.test_by_path && R16_FILES.iter().any(|f| file.rel.ends_with(f)),
        "R17" => alloc && !file.test_by_path && in_crate_src(file, &R17_CRATES),
        _ => false,
    }
}

/// Well-formed `// lint: allow(Rn): <reason>` tags in raw text, as
/// `(0-based line, rule)` — the same shape [`SourceFile::allowed`] accepts.
fn allow_tags(text: &str) -> Vec<(usize, String)> {
    let mut tags = Vec::new();
    const NEEDLE: &str = "lint: allow(";
    for (idx, line) in text.lines().enumerate() {
        let mut i = 0;
        while let Some(pos) = line[i..].find(NEEDLE) {
            let at = i + pos;
            let rest = &line[at + NEEDLE.len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = &rest[..close];
            let tail = rest[close + 1..].trim_start();
            let well_formed = rule.len() >= 2
                && rule.starts_with('R')
                && rule[1..].bytes().all(|b| b.is_ascii_digit())
                && tail.starts_with(':')
                && tail[1..].trim().len() >= 3;
            if well_formed {
                tags.push((idx, rule.to_string()));
            }
            i = at + NEEDLE.len() + close;
        }
    }
    tags
}

/// R8: stale allow tags. Runs after the allow-consuming rules so
/// [`SourceFile::used_allows`] is populated; every well-formed in-scope
/// tag that suppressed nothing is a finding — the justification outlived
/// the code it excused.
fn check_r8(file: &SourceFile, concurrency: bool, alloc: bool, violations: &mut Vec<Violation>) {
    let used = file.used_allows.borrow();
    for (line_idx, rule) in allow_tags(&file.text) {
        if !rule_in_scope(&rule, file, concurrency, alloc) {
            continue;
        }
        if used.contains(&(line_idx, rule.clone())) {
            continue;
        }
        violations.push(Violation {
            rule: "R8",
            path: file.rel.clone(),
            line: line_idx + 1,
            token: format!("allow({rule})"),
            message: format!(
                "stale `// lint: allow({rule})` tag: no {rule} finding on the covered \
                 lines — remove the tag (or restore the code it excused)"
            ),
        });
    }
}

/// All `Message::<Variant>` mentions in `file`, split into non-test
/// (`key = false`) and test-context (`key = true`) sets.
fn message_mentions(file: &SourceFile) -> [BTreeMap<String, usize>; 2] {
    let mut out = [BTreeMap::new(), BTreeMap::new()];
    const NEEDLE: &str = "Message::";
    let bytes = file.masked.as_bytes();
    let mut i = 0;
    while let Some(pos) = file.masked[i..].find(NEEDLE) {
        let at = i + pos;
        i = at + NEEDLE.len();
        // `Message::` must be the full path segment, not `WireMessage::`.
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let start = at + NEEDLE.len();
        let mut end = start;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        let ident = &file.masked[start..end];
        if !ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue;
        }
        let set = usize::from(file.in_test_region(at));
        let line = file.line_of(at);
        out[set].entry(ident.to_string()).or_insert(line);
    }
    out
}

/// R6: protocol-spec conformance of each role-hosting file. Every variant
/// the file's roles can receive must be mentioned in non-test code (a
/// deleted match arm fails), and no variant outside `receives ∪ sends` of
/// the hosted roles may appear there (a forbidden handler fails).
fn check_r6(files: &[SourceFile], violations: &mut Vec<Violation>) {
    for spec_file in dema_model::spec::spec_files() {
        let Some(file) = files.iter().find(|f| f.rel.ends_with(spec_file)) else {
            continue;
        };
        let required = dema_model::spec::required_for_file(spec_file);
        let allowed = dema_model::spec::allowed_for_file(spec_file);
        let [non_test, _] = message_mentions(file);
        for req in &required {
            if !non_test.contains_key(*req) {
                violations.push(Violation {
                    rule: "R6",
                    path: file.rel.clone(),
                    line: 0,
                    token: format!("{req}(unhandled)"),
                    message: format!(
                        "spec: a role hosted here can receive Message::{req}, but no \
                         non-test code mentions it — a match arm is missing"
                    ),
                });
            }
        }
        for (variant, line) in &non_test {
            if !allowed.contains(&variant.as_str()) {
                violations.push(Violation {
                    rule: "R6",
                    path: file.rel.clone(),
                    line: *line,
                    token: variant.clone(),
                    message: format!(
                        "spec: Message::{variant} is outside receives ∪ sends of the \
                         roles hosted here — forbidden handler or undeclared send"
                    ),
                });
            }
        }
    }
}

/// R7: every spec transition is referenced by a test. A wire-triggered
/// transition with a reply needs one file whose test code mentions both
/// the trigger and the reply (the tag pair); a pseudo-triggered one needs
/// its reply tested; a pure state update needs its trigger tested.
fn check_r7(files: &[SourceFile], violations: &mut Vec<Violation>) {
    let test_mentions: Vec<BTreeMap<String, usize>> = files
        .iter()
        .map(|f| {
            let [_, tested] = message_mentions(f);
            tested
        })
        .collect();
    let covered = |needed: &[&str]| {
        test_mentions
            .iter()
            .any(|set| needed.iter().all(|n| set.contains_key(*n)))
    };
    for role in dema_model::spec::SPEC.roles {
        for tr in role.transitions {
            let pseudo = dema_model::spec::is_pseudo(tr.on);
            let needed: Vec<&str> = match (pseudo, tr.reply) {
                (true, Some(reply)) => vec![reply],
                (true, None) => continue,
                (false, Some(reply)) => vec![tr.on, reply],
                (false, None) => vec![tr.on],
            };
            if covered(&needed) {
                continue;
            }
            let pair = match tr.reply {
                Some(reply) => format!("{}->{reply}", tr.on),
                None => tr.on.to_string(),
            };
            violations.push(Violation {
                rule: "R7",
                path: role.file.to_string(),
                line: 0,
                token: format!("{}:{pair}", role.name),
                message: format!(
                    "spec: transition ({pair}) of role {} has no test mentioning its \
                     tag pair in one place — the edge is unverified",
                    role.name
                ),
            });
        }
    }
}

/// Parse a baseline file: `RULE|path|token` lines, `#` comments.
///
/// Stale entries — keys matching no current finding of a rule that ran —
/// are reported in [`Report::stale_baseline`] and fail the gate: the
/// baseline may only shrink.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(ToOwned::to_owned)
        .collect()
}

/// Outcome of one lint run.
pub struct Report {
    /// New violations (not covered by the baseline).
    pub violations: Vec<Violation>,
    /// Findings suppressed by baseline entries.
    pub baselined: usize,
    /// Baseline entries matching no current finding of a rule that ran —
    /// the gate fails on these too (the baseline may only shrink).
    pub stale_baseline: Vec<String>,
    /// Files analyzed.
    pub files_checked: usize,
}

/// Run the always-on rules (R1–R5, R8, R9) over the workspace rooted at
/// `root`. Equivalent to [`check_full`] with `spec` and `concurrency`
/// both off.
///
/// `baseline` holds `RULE|path|token` keys of accepted findings.
pub fn check(root: &Path, baseline: &[String]) -> Report {
    check_all(root, baseline, false, false, false)
}

/// [`check_all`] without the allocation pass — kept for callers predating
/// `--alloc`.
pub fn check_full(root: &Path, baseline: &[String], spec: bool, concurrency: bool) -> Report {
    check_all(root, baseline, spec, concurrency, false)
}

/// Run all rules over the workspace rooted at `root`. With `spec: true`
/// the protocol-conformance rules R6/R7 (backed by `dema_model::spec`)
/// run as well; with `concurrency: true` the lock/channel rules R10–R13
/// do, and with `alloc: true` the allocation-discipline rules R15–R17.
pub fn check_all(
    root: &Path,
    baseline: &[String],
    spec: bool,
    concurrency: bool,
    alloc: bool,
) -> Report {
    let mut paths = Vec::new();
    walk(&root.join("crates"), &mut paths);
    if paths.is_empty() {
        // Fixture trees may root the crates directly.
        walk(root, &mut paths);
    }
    let files: Vec<SourceFile> = paths
        .iter()
        .filter_map(|p| SourceFile::load(root, p))
        .collect();

    let mut all = Vec::new();
    for file in &files {
        check_r1(file, &mut all);
        check_r2(file, &mut all);
        check_r5(file, &mut all);
        check_r9(file, &mut all);
        check_r14(file, &mut all);
    }
    check_r3(&files, &mut all);
    check_r4(&files, &mut all);
    if concurrency {
        let rwlocks = declared_rwlocks(&files);
        let mut edges = Vec::new();
        for file in &files {
            check_conc_file(file, &rwlocks, &mut edges, &mut all);
            check_r12(file, &mut all);
            check_r13(file, &mut all);
        }
        check_r10(&edges, &mut all);
    }
    if alloc {
        let shared_runs = declared_shared_runs(&files);
        check_r15(&files, &shared_runs, &mut all);
        for file in &files {
            check_r16(file, &mut all);
        }
        check_r17(&files, &shared_runs, &mut all);
    }
    // R8 must run after the allow-consuming rules above.
    for file in &files {
        check_r8(file, concurrency, alloc, &mut all);
    }
    if spec {
        check_r6(&files, &mut all);
        check_r7(&files, &mut all);
    }

    let mut rules_run: Vec<&str> = vec!["R1", "R2", "R3", "R4", "R5", "R8", "R9", "R14"];
    if spec {
        rules_run.extend(["R6", "R7"]);
    }
    if concurrency {
        rules_run.extend(["R10", "R11", "R12", "R13"]);
    }
    if alloc {
        rules_run.extend(["R15", "R16", "R17"]);
    }
    let all_keys: BTreeSet<String> = all.iter().map(Violation::baseline_key).collect();
    let stale_baseline: Vec<String> = baseline
        .iter()
        .filter(|key| {
            let rule = key.split('|').next().unwrap_or("");
            rules_run.contains(&rule) && !all_keys.contains(*key)
        })
        .cloned()
        .collect();

    let mut violations = Vec::new();
    let mut baselined = 0;
    for v in all {
        if baseline.contains(&v.baseline_key()) {
            baselined += 1;
        } else {
            violations.push(v);
        }
    }
    violations.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.token).cmp(&(b.rule, &b.path, b.line, &b.token))
    });
    Report {
        violations,
        baselined,
        stale_baseline,
        files_checked: files.len(),
    }
}

/// Group violations per rule for the summary line.
pub fn per_rule_counts(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

/// Catalogue entry behind `dema-lint explain R<n>`.
pub struct RuleInfo {
    /// Rule identifier, `R1`..`R17`.
    pub id: &'static str,
    /// One-line statement of what the rule rejects.
    pub title: &'static str,
    /// Why the finding is a real defect in this workspace.
    pub rationale: &'static str,
    /// How to suppress a justified site, or `"-"` when the rule has no
    /// allow mechanism (whole-enum coverage rules).
    pub allow: &'static str,
}

/// Every rule the linter knows, in id order.
pub const RULES: [RuleInfo; 17] = [
    RuleInfo {
        id: "R1",
        title: "no unwrap/expect/panic!/todo!/unimplemented! in core library code",
        rationale: "a panicking library node drops every window in flight; hot-path code \
                    must surface DemaError so the resilience layer can retry or degrade",
        allow: "// lint: allow(R1): <reason>",
    },
    RuleInfo {
        id: "R2",
        title: "no raw `as` numeric casts in rank/gamma/merge arithmetic files",
        rationale: "a silent truncation in rank arithmetic turns an exact quantile into a \
                    wrong one; conversions go through dema_core::numeric or try_from",
        allow: "// lint: allow(R2): <reason>",
    },
    RuleInfo {
        id: "R3",
        title: "every DemaError variant is constructed somewhere and matched by a test",
        rationale: "a variant nobody builds is a dead protocol error; one no test matches \
                    is unverified failure behaviour",
        allow: "-",
    },
    RuleInfo {
        id: "R4",
        title: "every wire Message variant is mentioned by some test",
        rationale: "golden/property coverage of the protocol surface: silent wire drift \
                    would otherwise go unnoticed until a mixed-version run",
        allow: "-",
    },
    RuleInfo {
        id: "R5",
        title: "no bare blocking .recv() in dema-cluster library code",
        rationale: "an unbounded receive cannot observe retry deadlines or a severed peer \
                    and hangs the run the fault-tolerance layer exists to save; use \
                    .recv_timeout(..) or .try_recv()",
        allow: "// lint: allow(R5): <reason>",
    },
    RuleInfo {
        id: "R6",
        title: "(--spec) role files handle exactly the wire variants the spec assigns",
        rationale: "a deleted match arm or a handler for a forbidden variant means the \
                    implementation drifted from the declared protocol state machine",
        allow: "-",
    },
    RuleInfo {
        id: "R7",
        title: "(--spec) every spec transition's tag pair is exercised by a test",
        rationale: "an untested transition edge is protocol behaviour nothing would catch \
                    regressing",
        allow: "-",
    },
    RuleInfo {
        id: "R8",
        title: "no stale `// lint: allow(Rn)` tag",
        rationale: "a tag that suppresses nothing is a justification that outlived the \
                    code it excused; remove it or restore the code",
        allow: "-",
    },
    RuleInfo {
        id: "R9",
        title: "no ad-hoc thread::spawn outside the deterministic sort pool",
        rationale: "a stray spawn in the window path reorders work nondeterministically \
                    and escapes the DEMA_THREADS budget; go through dema_core::par",
        allow: "// lint: allow(R9): <reason>",
    },
    RuleInfo {
        id: "R10",
        title: "(--concurrency) no lock-order inversions across the workspace",
        rationale: "nested guard scopes define an acquisition graph; a cycle means two \
                    paths can take the same locks in opposite orders and deadlock. The \
                    runtime twin is the rank tracker in dema_core::sync",
        allow: "// lint: allow(R10): <reason>",
    },
    RuleInfo {
        id: "R11",
        title: "(--concurrency) no lock guard held across a blocking call",
        rationale: "recv/recv_timeout/write_all/join or a sort-pool dispatch under a held \
                    guard starves every thread that needs the lock; drop the guard in an \
                    inner block first (Condvar::wait is exempt — it releases the mutex)",
        allow: "// lint: allow(R11): <reason>",
    },
    RuleInfo {
        id: "R12",
        title: "(--concurrency) no unbounded channel construction in hot-path crates",
        rationale: "an unbounded queue turns backpressure into unbounded memory growth; \
                    use a bounded channel or justify why depth is bounded elsewhere",
        allow: "// lint: allow(R12): <reason>",
    },
    RuleInfo {
        id: "R13",
        title: "(--concurrency) hot-path locks go through dema_core::sync wrappers",
        rationale: "raw std::sync / parking_lot locks escape the ranked runtime tracker, \
                    so an inversion they join is invisible until it deadlocks in \
                    production; the wrapper module itself is exempt",
        allow: "// lint: allow(R13): <reason>",
    },
    RuleInfo {
        id: "R14",
        title: "no blocking recv/recv_timeout in reactor-hosted runtime files",
        rationale: "the reactor multiplexes every hosted role and the timer wheel onto one \
                    thread; a role that blocks in a channel receive — even a bounded one — \
                    stalls its peers and delays every deadline. Messages arrive as \
                    ReactorEvent::Readable, deadlines as reactor timers",
        allow: "// lint: allow(R14): <reason>",
    },
    RuleInfo {
        id: "R15",
        title: "(--alloc) no raw allocation sites inside marked hot-path regions",
        rationale: "the `// hot-path: <name>` regions run once per window; a Vec::new / \
                    vec! / to_vec / Box::new / String::from / min-clamped with_capacity / \
                    payload .clone() there pays an allocator round-trip per window and \
                    breaks the zero-alloc steady-state gate. Reuse pooled or \
                    thread-local buffers; SharedRun clones (refcount bumps) are exempt. \
                    Deleting a mandated marker is itself a finding",
        allow: "// lint: allow(R15): <reason>",
    },
    RuleInfo {
        id: "R16",
        title: "(--alloc) frame encode/decode draws buffers from dema-wire::pool",
        rationale: "an ad-hoc vec![..] payload buffer, a pool-bypassing .to_bytes(..) \
                    helper, or a min-clamped capacity in the framing files allocates \
                    (and likely reallocates) on every frame; acquire scratch from the \
                    BufferPool so steady-state i/o recycles one buffer",
        allow: "// lint: allow(R16): <reason>",
    },
    RuleInfo {
        id: "R17",
        title: "(--alloc) send paths must not copy SharedRun payload bytes",
        rationale: "SharedRun is an Arc-backed view precisely so channel sends and \
                    candidate replies ship slices without materializing them; a \
                    .to_vec() on one re-copies the window payload per hop and scales \
                    memory with fan-in",
        allow: "// lint: allow(R17): <reason>",
    },
];

/// Look up one rule for `dema-lint explain`.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_strings_and_comments() {
        let src = "let a = \"panic!\"; // .unwrap()\n/* todo! */ let b = 'x';";
        let masked = mask_source(src);
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains(".unwrap()"));
        assert!(!masked.contains("todo!"));
        assert!(!masked.contains('x'));
        assert!(masked.contains("let a ="));
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn masking_handles_raw_strings_and_escapes() {
        let src = r##"let s = r#"a "quoted" .unwrap()"#; let t = "esc \" panic!";"##;
        let masked = mask_source(src);
        assert!(!masked.contains(".unwrap()"));
        assert!(!masked.contains("panic!"));
        assert!(masked.ends_with(';'));
    }

    #[test]
    fn masking_keeps_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(mask_source(src), src);
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let masked = mask_source(src);
        let regions = find_test_regions(&masked);
        assert_eq!(regions.len(), 1);
        let unwrap_at = masked.find(".unwrap").unwrap();
        assert!((regions[0].0..regions[0].1).contains(&unwrap_at));
        let c_at = masked.rfind("fn c").unwrap();
        assert!(!(regions[0].0..regions[0].1).contains(&c_at));
    }

    #[test]
    fn cfg_all_test_is_a_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\nfn c() {}";
        let regions = find_test_regions(&mask_source(src));
        assert_eq!(regions.len(), 1);
    }

    #[test]
    fn non_test_cfg_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test-utils\")]\nmod t { }\n#[cfg(unix)] fn u() {}";
        assert!(find_test_regions(&mask_source(src)).is_empty());
    }

    #[test]
    fn enum_variant_parsing() {
        let src = "pub enum DemaError {\n  /// doc\n  EmptyWindow,\n  InvalidQuantile(String),\n  EventOutOfWindow { ts: u64, start: u64 },\n  #[allow(dead_code)]\n  Last,\n}";
        let variants = enum_variants(&mask_source(src), "DemaError");
        assert_eq!(
            variants,
            vec!["EmptyWindow", "InvalidQuantile", "EventOutOfWindow", "Last"]
        );
    }

    fn cluster_file(src: &str) -> SourceFile {
        let masked = mask_source(src);
        let test_regions = find_test_regions(&masked);
        SourceFile {
            rel: "crates/dema-cluster/src/local.rs".to_string(),
            text: src.to_string(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        }
    }

    #[test]
    fn r5_flags_bare_recv_only() {
        let mut v = Vec::new();
        check_r5(
            &cluster_file("fn f(rx: &R) { rx.recv(); rx.try_recv(); rx.recv_timeout(d); }"),
            &mut v,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("R5", 1));

        let mut v = Vec::new();
        check_r5(
            &cluster_file(
                "fn f(rx: &R) {\n    // lint: allow(R5): shutdown drain, peer already joined\n    rx.recv();\n}",
            ),
            &mut v,
        );
        assert!(v.is_empty(), "allow-tag must suppress: {v:?}");

        let mut v = Vec::new();
        check_r5(
            &cluster_file("#[cfg(test)]\nmod t {\n    fn g(rx: &R) { rx.recv(); }\n}"),
            &mut v,
        );
        assert!(v.is_empty(), "test regions are exempt: {v:?}");
    }

    fn host_file(src: &str) -> SourceFile {
        let masked = mask_source(src);
        let test_regions = find_test_regions(&masked);
        SourceFile {
            rel: "crates/dema-cluster/src/host.rs".to_string(),
            text: src.to_string(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        }
    }

    #[test]
    fn r14_flags_blocking_receives_in_reactor_files() {
        let mut v = Vec::new();
        check_r14(
            &host_file("fn f(rx: &R) { rx.recv(); rx.recv_timeout(d); rx.try_recv(); }"),
            &mut v,
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "R14"));

        let mut v = Vec::new();
        check_r14(
            &host_file(
                "fn f(rx: &R) {\n    // lint: allow(R14): result drain after reactor exit\n    rx.recv();\n}",
            ),
            &mut v,
        );
        assert!(v.is_empty(), "allow-tag must suppress: {v:?}");

        let mut v = Vec::new();
        check_r14(
            &host_file("#[cfg(test)]\nmod t {\n    fn g(rx: &R) { rx.recv_timeout(d); }\n}"),
            &mut v,
        );
        assert!(v.is_empty(), "test regions are exempt: {v:?}");

        // Cluster files outside the reactor runtime are R5's turf, not R14's.
        let mut v = Vec::new();
        check_r14(
            &cluster_file("fn f(rx: &R) { rx.recv_timeout(d); }"),
            &mut v,
        );
        assert!(v.is_empty(), "out-of-scope file: {v:?}");
    }

    #[test]
    fn allow_tag_parsing_requires_rule_and_reason() {
        let tags = allow_tags(
            "// lint: allow(R5): shutdown drain\n\
             // lint: allow(R12)\n\
             // lint: allow(R3): ok\n\
             // lint: allow(Rx): not a rule\n",
        );
        assert_eq!(
            tags,
            vec![(0, "R5".to_string())],
            "only the tag with a rule number and a ≥3-char reason is well-formed"
        );
    }

    #[test]
    fn r8_flags_used_vs_stale_allow_tags() {
        // Used tag: R5 consumes it, R8 stays quiet.
        let file = cluster_file(
            "fn f(rx: &R) {\n    // lint: allow(R5): shutdown drain, peer joined\n    rx.recv();\n}",
        );
        let mut v = Vec::new();
        check_r5(&file, &mut v);
        check_r8(&file, false, false, &mut v);
        assert!(v.is_empty(), "consumed tag must not be stale: {v:?}");

        // Stale tag: nothing on the next line needs suppressing.
        let file = cluster_file(
            "fn f(rx: &R) {\n    // lint: allow(R5): shutdown drain, peer joined\n    rx.recv_timeout(d).ok();\n}",
        );
        let mut v = Vec::new();
        check_r5(&file, &mut v);
        check_r8(&file, false, false, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("R8", 2));

        // Out-of-scope rule: R2 never runs on local.rs, so its tag is
        // advisory, not stale.
        let file = cluster_file("// lint: allow(R2): narration in docs only\nfn f() {}\n");
        let mut v = Vec::new();
        check_r8(&file, false, false, &mut v);
        assert!(v.is_empty(), "out-of-scope tags are exempt: {v:?}");
    }

    #[test]
    fn r9_flags_qualified_spawn_calls_only() {
        let mut v = Vec::new();
        check_r9(
            &cluster_file(
                "fn f() { std::thread::spawn(|| {}); pool.spawn(j); my_thread::spawn(|| {}); }",
            ),
            &mut v,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].token.as_str()), ("R9", "thread::spawn"));

        let mut v = Vec::new();
        check_r9(
            &cluster_file(
                "fn f() {\n    // lint: allow(R9): long-lived relay topology thread\n    std::thread::spawn(run);\n}",
            ),
            &mut v,
        );
        assert!(v.is_empty(), "allow-tag must suppress: {v:?}");

        let mut v = Vec::new();
        check_r9(
            &cluster_file("#[cfg(test)]\nmod t {\n    fn g() { std::thread::spawn(|| {}); }\n}"),
            &mut v,
        );
        assert!(v.is_empty(), "test regions are exempt: {v:?}");

        // The pool itself is the one sanctioned spawn site.
        let masked = mask_source("fn w() { std::thread::spawn(run); }");
        let test_regions = find_test_regions(&masked);
        let pool = SourceFile {
            rel: "crates/dema-core/src/par.rs".to_string(),
            text: String::new(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        };
        let mut v = Vec::new();
        check_r9(&pool, &mut v);
        assert!(v.is_empty(), "par.rs is exempt: {v:?}");
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("cfg(test)", "test"));
        assert!(!contains_word("cfg(testing)", "test"));
        assert!(!contains_word("attest", "test"));
        assert_eq!(word_occurrences("x as u64 vs alias", "as"), vec![2]);
    }

    #[test]
    fn rwlock_declarations_resolve_field_let_and_static_names() {
        let mut names = BTreeSet::new();
        collect_decl_name("    pub table: RwLock<Vec<u8>>,", "RwLock", &mut names);
        collect_decl_name("    shared: Arc<RwLock<State>>,", "RwLock", &mut names);
        collect_decl_name("    let mut cache = RwLock::new(0);", "RwLock", &mut names);
        collect_decl_name("static REGISTRY: RwLock<Map> = ...;", "RwLock", &mut names);
        collect_decl_name("fn io(r: &mut impl Read) {}", "RwLock", &mut names);
        let expect: BTreeSet<String> = ["table", "shared", "cache", "REGISTRY"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn guard_scopes_distinguish_let_bindings_from_temporaries() {
        // A let-bound guard lives to the end of its enclosing block…
        let src = "fn f() {\n    {\n        let g = self.a.lock();\n        g.push(1);\n    }\n    self.h.join();\n}";
        let masked = mask_source(src);
        let at = masked.find(".lock()").unwrap();
        let end = guard_scope_end(&masked, at);
        assert!(masked[..end].contains("g.push(1)"));
        assert!(
            !masked[..end].contains(".join()"),
            "inner block must bound the guard"
        );

        // …while a temporary dies with its statement.
        let src = "fn f() {\n    self.a.lock().push(1);\n    self.h.join();\n}";
        let masked = mask_source(src);
        let at = masked.find(".lock()").unwrap();
        let end = guard_scope_end(&masked, at);
        assert!(!masked[..end].contains(".join()"));
    }

    /// Helper: run the per-file concurrency half over one cluster file.
    fn conc(src: &str) -> (Vec<LockEdge>, Vec<Violation>) {
        let file = cluster_file(src);
        let mut edges = Vec::new();
        let mut v = Vec::new();
        check_conc_file(&file, &BTreeSet::new(), &mut edges, &mut v);
        (edges, v)
    }

    #[test]
    fn r10_nested_guards_become_edges_and_cycles_fire() {
        let (edges, v) =
            conc("fn f(&self) {\n    let s = self.store.lock();\n    let t = self.sent.lock();\n}");
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(edges.len(), 1);
        assert_eq!(
            (edges[0].from.as_str(), edges[0].to.as_str()),
            ("store", "sent")
        );

        // Consistent ordering across files: no cycle, no finding.
        let mut v = Vec::new();
        check_r10(&edges, &mut v);
        assert!(v.is_empty(), "one direction is not a cycle: {v:?}");

        // The opposite order elsewhere closes the cycle.
        let (mut more, _) =
            conc("fn g(&self) {\n    let t = self.sent.lock();\n    let s = self.store.lock();\n}");
        let mut all = edges;
        all.append(&mut more);
        let mut v = Vec::new();
        check_r10(&all, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R10");
        assert!(v[0].token.starts_with("lock-cycle:"), "{}", v[0].token);
        assert!(v[0].message.contains("opposite order"), "{}", v[0].message);
    }

    #[test]
    fn r10_allow_tag_drops_the_edge() {
        let (edges, _) = conc(
            "fn f(&self) {\n    let s = self.store.lock();\n    // lint: allow(R10): sent is only ever taken under store\n    let t = self.sent.lock();\n}",
        );
        assert!(edges.is_empty(), "tagged inner acquisition must not edge");
    }

    #[test]
    fn r11_blocking_call_under_guard_fires() {
        let (_, v) = conc(
            "fn f(&self) {\n    let s = self.store.lock();\n    let _ = self.rx.recv_timeout(d);\n}",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("R11", 3));
        assert!(v[0].message.contains("`store` guard"), "{}", v[0].message);

        // Block-scoping the guard is the fix.
        let (_, v) = conc(
            "fn f(&self) {\n    {\n        let s = self.store.lock();\n    }\n    let _ = self.rx.recv_timeout(d);\n}",
        );
        assert!(v.is_empty(), "dropped guard must not flag: {v:?}");

        // A temporary guard does not span the next statement.
        let (_, v) = conc("fn f(&self) {\n    self.store.lock().clear();\n    self.h.join();\n}");
        assert!(v.is_empty(), "temporary dies with its statement: {v:?}");

        // Pool dispatch under a guard is also a blocking call.
        let (_, v) = conc(
            "fn f(&self) {\n    let s = self.store.lock();\n    let runs = sort_events(evs);\n}",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "sort_events(..)");
    }

    #[test]
    fn r11_condvar_wait_is_sanctioned() {
        let (_, v) = conc(
            "fn f(&self) {\n    let mut s = self.state.lock();\n    while s.empty() { s = self.ready.wait(s); }\n}",
        );
        assert!(v.is_empty(), "Condvar::wait releases the mutex: {v:?}");
    }

    #[test]
    fn r12_flags_unbounded_channels_and_honours_tags() {
        let file = cluster_file("fn f() { let (tx, rx) = unbounded(); }");
        let mut v = Vec::new();
        check_r12(&file, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "unbounded(..)");

        let file = cluster_file("fn f() { let (tx, rx) = channel::unbounded::<Msg>(); }");
        let mut v = Vec::new();
        check_r12(&file, &mut v);
        assert_eq!(v.len(), 1, "turbofish form must match: {v:?}");

        let file = cluster_file("fn f() { let (tx, rx) = std::sync::mpsc::channel(); }");
        let mut v = Vec::new();
        check_r12(&file, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "mpsc::channel(..)");

        let file = cluster_file(
            "fn f() {\n    // lint: allow(R12): depth bounded by the protocol window\n    let (tx, rx) = unbounded();\n    let b = mpsc::sync_channel(4);\n}",
        );
        let mut v = Vec::new();
        check_r12(&file, &mut v);
        assert!(v.is_empty(), "tagged + bounded must pass: {v:?}");
    }

    #[test]
    fn r13_flags_raw_locks_but_not_the_sync_module_or_other_imports() {
        let file = cluster_file(
            "use std::sync::{Arc, Mutex};\nuse parking_lot::RwLock;\nfn f(m: &std::sync::Condvar) {}\n",
        );
        let mut v = Vec::new();
        check_r13(&file, &mut v);
        let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
        assert_eq!(
            tokens,
            vec!["parking_lot", "std::sync::Condvar", "std::sync::Mutex"],
            "{v:?}"
        );

        let file = cluster_file(
            "use std::sync::{Arc, OnceLock};\nuse std::sync::atomic::AtomicUsize;\nuse dema_core::sync::{rank, Mutex};\n",
        );
        let mut v = Vec::new();
        check_r13(&file, &mut v);
        assert!(v.is_empty(), "wrappers and non-lock imports pass: {v:?}");

        // The wrapper module itself is exempt.
        let masked = mask_source("use std::sync::{Mutex, Condvar};");
        let test_regions = find_test_regions(&masked);
        let sync_file = SourceFile {
            rel: "crates/dema-core/src/sync.rs".to_string(),
            text: String::new(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        };
        let mut v = Vec::new();
        check_r13(&sync_file, &mut v);
        assert!(v.is_empty(), "sync.rs is the sanctioned wrapper: {v:?}");
    }

    #[test]
    fn conc_allow_tags_are_inert_without_the_pass() {
        // With the concurrency pass off, an R12 tag is out of scope for
        // R8 (not stale); with it on and unconsumed, it is stale.
        let file =
            cluster_file("// lint: allow(R12): depth bounded by the protocol window\nfn f() {}\n");
        let mut v = Vec::new();
        check_r8(&file, false, false, &mut v);
        assert!(
            v.is_empty(),
            "tag must be inert without --concurrency: {v:?}"
        );
        let mut v = Vec::new();
        check_r8(&file, true, false, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R8");
    }

    #[test]
    fn rule_catalogue_covers_r1_to_r17() {
        assert_eq!(RULES.len(), 17);
        for (idx, info) in RULES.iter().enumerate() {
            assert_eq!(info.id, format!("R{}", idx + 1));
        }
        assert!(rule_info("r11").is_some(), "lookup is case-insensitive");
        assert!(rule_info("R99").is_none());
    }

    /// Helper: a file standing in for the merge hot path.
    fn merge_file(src: &str) -> SourceFile {
        let masked = mask_source(src);
        let test_regions = find_test_regions(&masked);
        SourceFile {
            rel: "crates/dema-core/src/merge.rs".to_string(),
            text: src.to_string(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        }
    }

    #[test]
    fn plain_type_declarations_resolve_fields_params_and_ctor_bindings() {
        let mut names = BTreeSet::new();
        collect_plain_decl_name("    pub events: SharedRun,", "SharedRun", &mut names);
        collect_plain_decl_name("fn serve(run: &SharedRun) {}", "SharedRun", &mut names);
        collect_plain_decl_name("fn fix(view: &mut SharedRun) {}", "SharedRun", &mut names);
        collect_plain_decl_name(
            "    let shared = SharedRun::from_vec(v);",
            "SharedRun",
            &mut names,
        );
        // A Vec of SharedRuns is not itself a SharedRun; paths and return
        // types declare nothing.
        collect_plain_decl_name(
            "    let runs: Vec<crate::shared::SharedRun> = x;",
            "SharedRun",
            &mut names,
        );
        collect_plain_decl_name("fn cut() -> SharedRun {", "SharedRun", &mut names);
        let expect: BTreeSet<String> = ["events", "run", "view", "shared"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn hot_path_region_is_the_next_brace_block() {
        let src = "fn a() { vec![0] }\n// hot-path: merge-select\nfn b(x: u8) {\n    inner();\n}\nfn c() {}\n";
        let f = merge_file(src);
        let (start, end) = hot_path_region(&f, "merge-select").unwrap();
        let region = &f.masked[start..end];
        assert!(region.contains("inner()"), "{region}");
        assert!(!region.contains("fn c"), "{region}");
        // An extended marker name does not satisfy a shorter one.
        let f = merge_file("// hot-path: merge-select-v2\nfn b() {}\n");
        assert!(hot_path_region(&f, "merge-select").is_none());
    }

    #[test]
    fn r15_flags_alloc_needles_inside_the_region_only() {
        let src = "fn cold() { let v = vec![0u8; 4]; }\n\
                   // hot-path: merge-select\n\
                   fn hot(s: &[u8]) {\n\
                       let a = Vec::new();\n\
                       let b = vec![0u8; 4];\n\
                       let c = s.to_vec();\n\
                       let d = Box::new(1);\n\
                       let e = String::from(name);\n\
                       let f = Vec::with_capacity(n.min(1024));\n\
                       let g = Vec::with_capacity(n);\n\
                   }\n";
        let f = merge_file(src);
        let mut v = Vec::new();
        check_r15(&[f], &BTreeSet::new(), &mut v);
        let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
        assert_eq!(
            tokens,
            vec![
                "Vec::new",
                "vec!",
                "to_vec",
                "Box::new",
                "String::from",
                "with_capacity(..min..)"
            ],
            "{v:?}"
        );
        assert!(v.iter().all(|x| x.rule == "R15"));
        assert!(
            !v.iter().any(|x| x.line == 1),
            "code outside the region is exempt: {v:?}"
        );
    }

    #[test]
    fn r15_exempts_shared_run_clones_and_honours_allow_tags() {
        let src = "// hot-path: merge-select\n\
                   fn hot(&self) {\n\
                       let a = self.events.clone();\n\
                       let b = self.sent.clone();\n\
                       // lint: allow(R15): cold rebuild after epoch switch\n\
                       let c = Vec::new();\n\
                   }\n";
        let f = merge_file(src);
        let shared: BTreeSet<String> = ["events".to_string()].into_iter().collect();
        let mut v = Vec::new();
        check_r15(&[f], &shared, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "clone");
        assert_eq!(v[0].line, 4, "only the non-SharedRun clone fires");
    }

    #[test]
    fn r15_flags_a_deleted_mandated_marker() {
        let f = merge_file("pub fn merge_runs() {}\n");
        let mut v = Vec::new();
        check_r15(&[f], &BTreeSet::new(), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("R15", 0));
        assert_eq!(v[0].token, "missing-marker:merge-select");
    }

    #[test]
    fn r16_flags_pool_bypasses_in_frame_files_only() {
        let masked_src = "fn read() {\n    let p = vec![0u8; len];\n    let b = msg.to_bytes();\n    let c = Vec::with_capacity(n.min(65_536));\n}\n";
        let masked = mask_source(masked_src);
        let test_regions = find_test_regions(&masked);
        let f = SourceFile {
            rel: "crates/dema-wire/src/frame.rs".to_string(),
            text: masked_src.to_string(),
            masked,
            test_regions,
            test_by_path: false,
            used_allows: RefCell::new(BTreeSet::new()),
        };
        let mut v = Vec::new();
        check_r16(&f, &mut v);
        let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
        assert_eq!(
            tokens,
            vec!["vec!", "to_bytes", "with_capacity(..min..)"],
            "{v:?}"
        );

        // The same source in a non-frame file is out of R16's scope.
        let mut v = Vec::new();
        check_r16(&cluster_file(masked_src), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r17_flags_shared_run_to_vec_on_send_paths() {
        let src = "fn send(&self) {\n    let copy = self.events.to_vec();\n    let other = self.buf.to_vec();\n}\n";
        let f = cluster_file(src);
        let shared: BTreeSet<String> = ["events".to_string()].into_iter().collect();
        let mut v = Vec::new();
        check_r17(&[f], &shared, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].token.as_str()), ("R17", "events.to_vec"));

        // Allow-tagged cold paths pass.
        let f = cluster_file(
            "fn send(&self) {\n    // lint: allow(R17): one-shot replay after recovery\n    let copy = self.events.to_vec();\n}\n",
        );
        let mut v = Vec::new();
        check_r17(&[f], &shared, &mut v);
        assert!(v.is_empty(), "allow-tag must suppress: {v:?}");
    }

    #[test]
    fn alloc_allow_tags_are_inert_without_the_pass() {
        let file = merge_file(
            "// hot-path: merge-select\nfn hot() {\n    // lint: allow(R15): cold rebuild path\n    let v = 1;\n}\n",
        );
        let mut v = Vec::new();
        check_r8(&file, false, false, &mut v);
        assert!(v.is_empty(), "tag must be inert without --alloc: {v:?}");
        let mut v = Vec::new();
        check_r8(&file, false, true, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].token.as_str()), ("R8", "allow(R15)"));
    }
}
