//! Fixture: R8 violation — an allow tag whose finding was since fixed.

/// Returns the first element, or zero.
pub fn first(v: &[u64]) -> u64 {
    // lint: allow(R1): buffer is non-empty by construction at every call site
    v.first().copied().unwrap_or(0)
}
