//! Fixture: frame i/o bypassing the buffer pool.

// hot-path: frame-io
pub fn frame_len(len: usize) -> usize {
    len + 4
}

pub fn read_frame_raw(len: usize) -> Vec<u8> {
    let payload = vec![0u8; len];
    payload
}

pub fn write_frame_raw(msg: &Msg) -> Vec<u8> {
    let body = msg.to_bytes();
    let framed = Vec::with_capacity(body.len().min(65_536));
    framed
}
