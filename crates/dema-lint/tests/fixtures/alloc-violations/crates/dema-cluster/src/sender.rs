//! Fixture: a send path copying SharedRun payload bytes per hop.

pub struct Slice {
    pub events: SharedRun,
}

pub fn send_candidates(slice: &Slice) -> Vec<u64> {
    slice.events.to_vec()
}
