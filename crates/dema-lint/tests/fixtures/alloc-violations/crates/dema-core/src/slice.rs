//! Fixture: the slicer region's `// hot-path: slicer` marker was deleted,
//! shrinking the allocation audit surface.

pub fn cut_into_slices(events: &[u64], gamma: usize) -> usize {
    events.len() / gamma.max(1)
}
