//! Fixture: raw allocation sites inside the merge-select hot path.

pub struct Run {
    pub events: SharedRun,
}

// hot-path: merge-select
pub fn merge_runs(runs: &[Run], other: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let scratch = vec![0u64; 16];
    let owned = other.to_vec();
    let boxed = Box::new(scratch);
    let label = String::from("merge");
    let staged: Vec<u64> = Vec::with_capacity(out.len().min(1024));
    let view = runs[0].events.clone();
    let copied = owned.clone();
    out.extend(view);
    out.extend(copied);
    out.extend(staged);
    drop((boxed, label));
    out
}
