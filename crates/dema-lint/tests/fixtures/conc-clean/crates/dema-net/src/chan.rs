//! Fixture: clean tree — bounded links, one reviewed unbounded channel.

pub fn data_link() -> (Sender, Receiver) {
    bounded(64)
}

pub fn control_link() -> (Sender, Receiver) {
    // lint: allow(R12): control traffic is one message per window close
    unbounded()
}
