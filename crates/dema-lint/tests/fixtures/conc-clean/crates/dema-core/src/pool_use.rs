//! Fixture: clean tree — guards dropped before blocking calls, condvar
//! waits under the guard (sanctioned), one reviewed zero-timeout poll.

pub struct Pool {
    state: Mutex<Vec<u64>>,
    ready: Condvar,
    handles: Vec<Worker>,
}

impl Pool {
    /// The guard dies in the inner block before any worker is joined.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.state.lock();
            state.clear();
        }
        for worker in self.handles.drain(..) {
            let _ = worker.join();
        }
    }

    /// `Condvar::wait` releases the mutex while blocked — not a finding.
    pub fn wait_idle(&self) {
        let mut state = self.state.lock();
        while !state.is_empty() {
            state = self.ready.wait(state);
        }
    }

    /// A temporary guard dies with its statement, before the join.
    pub fn reset(&mut self, worker: Worker) {
        self.state.lock().clear();
        let _ = worker.join();
    }

    pub fn drain_now(&self, rx: &Receiver) {
        let state = self.state.lock();
        // lint: allow(R11): zero-timeout poll returns immediately, never blocks
        let _ = rx.recv_timeout(core::time::Duration::ZERO);
        drop(state);
    }
}
