//! Fixture: clean tree — ranked wrapper locks; non-lock std::sync
//! imports stay legal.

use dema_core::sync::{rank, Mutex};
use std::sync::Arc;

pub struct BufferPool {
    spares: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    pub fn new() -> BufferPool {
        BufferPool {
            spares: Mutex::new(rank::WIRE_BUF_POOL, Vec::new()),
        }
    }

    pub fn acquire(self: &Arc<BufferPool>) -> Vec<u8> {
        self.spares.lock().pop().unwrap_or_default()
    }
}
