//! Fixture: clean tree — nested locks in one consistent order, plus one
//! reviewed inversion.

pub struct Engine {
    store: Mutex<u64>,
    sent: Mutex<u64>,
}

impl Engine {
    /// Window close takes `store`, then `sent` — the global order.
    pub fn close(&self) {
        let mut store = self.store.lock();
        let mut sent = self.sent.lock();
        *store += 1;
        *sent += 1;
    }

    /// Replay nests the same way, so no cycle forms.
    pub fn replay(&self) {
        let store = self.store.lock();
        let sent = self.sent.lock();
        drop(sent);
        drop(store);
    }

    /// Startup restore runs before any worker exists, so the reviewed
    /// inversion below cannot race the order above.
    pub fn restore(&self) {
        let mut sent = self.sent.lock();
        // lint: allow(R10): restore runs single-threaded before the run starts
        let store = self.store.lock();
        *sent = *store;
    }
}
