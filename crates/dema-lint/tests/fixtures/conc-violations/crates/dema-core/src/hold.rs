//! Fixture: R11 — guards held across blocking calls.

pub struct Hold {
    queue: Mutex<Vec<u64>>,
    table: RwLock<Vec<u64>>,
}

impl Hold {
    pub fn stop(&self, worker: Worker) {
        let queue = self.queue.lock();
        let _ = worker.join();
        drop(queue);
    }

    pub fn resort(&self) {
        let table = self.table.read();
        let _runs = sort_events(&table);
    }
}
