//! Fixture: R12 — unbounded queues on the hot path.

pub fn event_link() -> (Sender, Receiver) {
    unbounded()
}

pub fn control_link() -> (Sender, Receiver) {
    std::sync::mpsc::channel()
}
