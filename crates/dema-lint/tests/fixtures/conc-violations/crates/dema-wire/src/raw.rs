//! Fixture: R13 — raw locks escaping the ranked wrappers.

use std::sync::{Arc, Mutex};

pub type SharedBuf = Arc<Mutex<Vec<u8>>>;

pub type FastBuf = parking_lot::Mutex<Vec<u8>>;
