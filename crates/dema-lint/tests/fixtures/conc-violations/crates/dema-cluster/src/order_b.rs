//! Fixture: R10 — …while this file nests `store` inside `sent` (cycle).

pub struct B {
    store: Mutex<u64>,
    sent: Mutex<u64>,
}

impl B {
    pub fn flush(&self) {
        let mut sent = self.sent.lock();
        let mut store = self.store.lock();
        *sent += 1;
        *store += 1;
    }
}
