//! Fixture: R10 — this file nests `sent` inside the `store` guard…

pub struct A {
    store: Mutex<u64>,
    sent: Mutex<u64>,
}

impl A {
    pub fn close(&self) {
        let mut store = self.store.lock();
        let mut sent = self.sent.lock();
        *store += 1;
        *sent += 1;
    }
}
