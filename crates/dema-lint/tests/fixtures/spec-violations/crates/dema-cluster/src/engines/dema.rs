//! Fixture: R6 violations — a deleted match arm and a forbidden handler.
//! The spec requires this file to mention `CandidateReply` (omitted here:
//! the deleted arm) and forbids `EventBatch` (handled here anyway).

/// Handles one message.
pub fn handle(msg: Message) {
    match msg {
        Message::SynopsisBatch { .. } => {}
        Message::CandidateRequest { .. } => {}
        Message::CandidateRetry { .. } => {}
        Message::ResendWindow { .. } => {}
        Message::GammaUpdate { .. } => {}
        Message::EventBatch { .. } => {}
        _ => {}
    }
}
