//! Fixture: membership negatives. The root shell handles stream ends and
//! leave announcements but its `JoinRequest` arm has been deleted (R6
//! unhandled variant), and while every other root-shell edge has its tag
//! pair mentioned in a test below, no test anywhere names `EpochSwitch` —
//! so the epoch-switch transitions fail R7.

/// Handles one uplink message.
pub fn handle(msg: Message) {
    match msg {
        Message::StreamEnd { .. } => {}
        Message::LeaveAnnounce { .. } => {}
        _ => {}
    }
}

/// Broadcasts the membership machinery the spec declares as sends.
pub fn sweep() {
    send(Message::JoinAccept {});
    send(Message::EpochSwitch {});
    send(Message::DrainComplete {});
}

#[cfg(test)]
mod tests {
    // Tag pairs for every root-shell edge except @epoch -> EpochSwitch:
    // the join handshake, stream end, leave announcement, and drain
    // completion are all "tested" here, so only the epoch switch (and the
    // responder's wire-triggered EpochSwitch arm) stays unverified.
    #[test]
    fn membership_edges_minus_epoch_switch() {
        observe(Message::JoinRequest {});
        observe(Message::JoinAccept {});
        observe(Message::StreamEnd {});
        observe(Message::LeaveAnnounce {});
        observe(Message::DrainComplete {});
    }
}
