//! Fixture: a tagged bounded receive in a reactor runtime file — the
//! allow tag is consumed by R14, so R8 must not flag it as stale.

pub fn drain_results(rx: &Receiver) -> Option<Msg> {
    // lint: allow(R14): result drain after the reactor has exited
    rx.recv_timeout(std::time::Duration::from_millis(5)).ok()
}
