//! Fixture: clean tree — bounded receives, plus one reviewed bare receive.

/// Polls one message with a bounded wait.
pub fn poll_one(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv_timeout(std::time::Duration::from_millis(10)).ok()
}

/// Drains the channel after the sender thread has already been joined.
pub fn drain_joined(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    // lint: allow(R5): sender joined above, recv can only return immediately
    rx.recv().ok()
}
