//! Fixture: clean tree — every error variant constructed and tested.

/// Protocol errors.
#[derive(Debug)]
pub enum DemaError {
    /// The window held no events.
    EmptyWindow,
}

#[cfg(test)]
mod tests {
    #[test]
    fn empty_window_is_matched() {
        let e = super::DemaError::EmptyWindow;
        assert!(matches!(e, super::DemaError::EmptyWindow));
    }
}
