//! Fixture: clean tree — panics tagged with reviewed allow-tags.

/// Returns the first element of a never-empty buffer.
pub fn first(v: &[u64]) -> u64 {
    // lint: allow(R1): buffer is non-empty by construction at every call site
    *v.first().unwrap()
}

/// Constructs the only error variant.
pub fn fail() -> crate::error::DemaError {
    crate::error::DemaError::EmptyWindow
}
