//! Fixture: clean tree — saturating cast documented with an allow tag.

/// Saturating conversion.
pub fn to_count(x: f64) -> u64 {
    x as u64 // lint: allow(R2): saturating float-to-int is the documented policy
}
