//! Fixture: clean tree — every wire variant test-covered.

/// Wire protocol messages.
pub enum Message {
    /// Slice synopsis announcement.
    Synopsis,
}

#[cfg(test)]
mod tests {
    use super::Message;

    #[test]
    fn synopsis_roundtrip() {
        let _ = Message::Synopsis;
    }
}
