//! Fixture: R4 violation — the `Ping` wire variant has no test mention.

/// Wire protocol messages.
pub enum Message {
    /// Slice synopsis announcement.
    Synopsis,
    /// Liveness probe (the violation: untested).
    Ping,
}

#[cfg(test)]
mod tests {
    use super::Message;

    #[test]
    fn synopsis_is_covered() {
        let _ = Message::Synopsis;
    }
}

/// Decodes the first tag byte (the R1 violation: untagged unwrap).
pub fn first_tag(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}
