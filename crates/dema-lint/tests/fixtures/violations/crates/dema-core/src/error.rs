//! Fixture: R3 violation — `EmptyWindow` is constructed but never tested.

/// Protocol errors.
#[derive(Debug)]
pub enum DemaError {
    /// The window held no events.
    EmptyWindow,
}
