//! Fixture: R1 violation — an untagged `.unwrap()` in non-test core code.

/// Returns the first element.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

/// Constructs the error variant so R3 reports only the missing test.
pub fn fail() -> crate::error::DemaError {
    crate::error::DemaError::EmptyWindow
}
