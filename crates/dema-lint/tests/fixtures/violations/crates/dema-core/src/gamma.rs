//! Fixture: R2 violation — a lossy `as` cast in gamma arithmetic.

/// Truncating conversion (the violation).
pub fn to_count(x: f64) -> u64 {
    x as u64
}
