//! Fixture: R1 violation — an untagged `.unwrap()` in fault-injection code.

/// Picks the next fault delay.
pub fn next_delay(v: &[u64]) -> u64 {
    *v.last().unwrap()
}
