//! Fixture: R14 violation — a blocking bounded receive in a
//! reactor-hosted runtime file (the reactor sweep is the only legal wait).

pub fn drive(rx: &Receiver) -> Option<Msg> {
    rx.recv_timeout(std::time::Duration::from_millis(5)).ok()
}
