//! Fixture: R1 + R5 violations — a panicking expiry path, an unbounded wait.

/// Panics on an impossible attempt count (the R1 violation).
pub fn backoff(attempt: u32) -> u64 {
    if attempt > 64 {
        panic!("attempt overflow");
    }
    1 << attempt
}

/// Blocks forever waiting for an expiry (the R5 violation).
pub fn wait_expiry(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv().ok()
}
