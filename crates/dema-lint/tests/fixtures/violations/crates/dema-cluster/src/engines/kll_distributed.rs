//! Fixture: R2 violation — a lossy cast in sketch weight arithmetic.

/// Truncates a weight (the violation).
pub fn weight(x: f64) -> u64 {
    x as u64
}
