//! Fixture: R5 violation — the relay router blocks unboundedly.

/// Forwards one envelope, never observing a severed peer.
pub fn route_one(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv().ok()
}
