//! Fixture: R5 violation — a bare blocking `.recv()` in cluster code.

/// Drains one message, blocking forever if the peer is gone.
pub fn drain_one(rx: &std::sync::mpsc::Receiver<u64>) -> Option<u64> {
    rx.recv().ok()
}
