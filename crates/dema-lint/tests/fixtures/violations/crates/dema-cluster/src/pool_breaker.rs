//! Fixture: ad-hoc parallelism outside the deterministic sort pool (R9).

/// Sorts a chunk on a detached thread — bypasses `dema_core::par`.
pub fn sort_detached(mut chunk: Vec<u64>) -> std::thread::JoinHandle<Vec<u64>> {
    std::thread::spawn(move || {
        chunk.sort_unstable();
        chunk
    })
}
