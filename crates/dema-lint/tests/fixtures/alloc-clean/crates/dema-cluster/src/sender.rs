//! Fixture: send paths ship the Arc-backed SharedRun view; the one
//! materializing copy is a tagged cold recovery path.

pub struct Slice {
    pub events: SharedRun,
}

pub fn send_candidates(slice: &Slice) -> SharedRun {
    slice.events.clone()
}

pub fn replay_after_recovery(slice: &Slice) -> Vec<u64> {
    // lint: allow(R17): one-shot replay after recovery, off the hot path
    slice.events.to_vec()
}
