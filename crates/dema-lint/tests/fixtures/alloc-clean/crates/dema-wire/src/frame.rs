//! Fixture: frame i/o draws its scratch from the buffer pool.

// hot-path: frame-io
pub fn read_frame(pool: &BufferPool, len: usize) -> Vec<u8> {
    let mut payload = pool.acquire();
    payload.resize(len, 0);
    payload
}
