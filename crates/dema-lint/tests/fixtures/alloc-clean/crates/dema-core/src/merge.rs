//! Fixture: the merge hot path sizes its output exactly and reuses the
//! Arc-backed view; the one lexical needle carries a justified tag.

pub struct Run {
    pub events: SharedRun,
}

// hot-path: merge-select
pub fn merge_runs(runs: &[Run], total: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(total);
    // lint: allow(R15): Vec::new is allocation-free; cold empty carry
    let empty: Vec<u64> = Vec::new();
    let view = runs[0].events.clone();
    out.extend(view);
    out.extend(empty);
    out
}
