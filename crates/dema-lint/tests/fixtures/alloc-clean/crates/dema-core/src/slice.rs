//! Fixture: the slicer keeps its marker and allocates nothing per window.

// hot-path: slicer
pub fn cut_into_slices(events: &[u64], gamma: usize) -> usize {
    events.len() / gamma.max(1)
}
