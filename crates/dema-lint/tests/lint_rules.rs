//! End-to-end checks of the `dema-lint` binary over the fixture trees:
//! one violation per rule on the `violations` tree, exit 0 on the `clean`
//! tree (allow-tags honoured), and baseline suppression.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// Run `dema-lint check <root> [extra...]`, returning (exit code, stdout).
fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .arg("check")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn dema-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn violations_tree_fails_with_file_line_diagnostics() {
    let (code, stdout) = run_lint(&fixture("violations"), &[]);
    assert_eq!(code, 1, "expected failure exit, got {code}\n{stdout}");
    // One violation per rule, each with a file:line anchor.
    assert!(
        stdout.contains("crates/dema-core/src/lib.rs:5: R1:"),
        "missing R1 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-core/src/gamma.rs:5: R2:"),
        "missing R2 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("R3: DemaError::EmptyWindow is never matched in any test"),
        "missing R3 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("R4: wire Message::Ping has no"),
        "missing R4 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/local.rs:5: R5:"),
        "missing R5 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("5 new violation(s) [R1: 1, R2: 1, R3: 1, R4: 1, R5: 1]"),
        "summary should count one violation per rule\n{stdout}"
    );
}

#[test]
fn clean_tree_passes_with_allow_tags() {
    let (code, stdout) = run_lint(&fixture("clean"), &[]);
    assert_eq!(code, 0, "clean tree must pass\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
}

#[test]
fn baseline_suppresses_accepted_findings() {
    let baseline = fixture("violations-baseline.txt");
    let (code, stdout) = run_lint(
        &fixture("violations"),
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 0, "baselined tree must pass\n{stdout}");
    assert!(stdout.contains("5 baselined finding(s)"), "{stdout}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .arg("lurk")
        .output()
        .expect("spawn dema-lint");
    assert_eq!(out.status.code(), Some(2));
}
