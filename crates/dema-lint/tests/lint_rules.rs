//! End-to-end checks of the `dema-lint` binary over the fixture trees:
//! per-rule diagnostics on the `violations` tree, exit 0 on the `clean`
//! tree (allow-tags honoured), baseline suppression, stale allow-tags
//! (R8), stale baseline entries, `--spec` conformance (R6), the
//! `--concurrency` lock/channel pass (R10–R13) over the `conc-*` trees,
//! the reactor-runtime receive ban (R14), the `--alloc` allocation
//! discipline pass (R15–R17) over the `alloc-*` trees, and the `explain`
//! subcommand.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// Run `dema-lint check <root> [extra...]`, returning (exit code, stdout).
fn run_lint(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .arg("check")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn dema-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn violations_tree_fails_with_file_line_diagnostics() {
    let (code, stdout) = run_lint(&fixture("violations"), &[]);
    assert_eq!(code, 1, "expected failure exit, got {code}\n{stdout}");
    // Every violation carries a file:line anchor.
    assert!(
        stdout.contains("crates/dema-core/src/lib.rs:5: R1:"),
        "missing R1 diagnostic (lib.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-net/src/fault.rs:5: R1:"),
        "missing R1 diagnostic (fault.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/engines/retry.rs:6: R1:"),
        "missing R1 diagnostic (retry.rs panic)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/message.rs:23: R1:"),
        "missing R1 diagnostic (message.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-core/src/gamma.rs:5: R2:"),
        "missing R2 diagnostic (gamma.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/engines/kll_distributed.rs:5: R2:"),
        "missing R2 diagnostic (kll_distributed.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("R3: DemaError::EmptyWindow is never matched in any test"),
        "missing R3 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("R4: wire Message::Ping has no"),
        "missing R4 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/local.rs:5: R5:"),
        "missing R5 diagnostic (local.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/engines/retry.rs:13: R5:"),
        "missing R5 diagnostic (retry.rs recv)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/relay.rs:5: R5:"),
        "missing R5 diagnostic (relay.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/pool_breaker.rs:5: R9:"),
        "missing R9 diagnostic (pool_breaker.rs)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/host.rs:5: R14:"),
        "missing R14 diagnostic (host.rs recv_timeout)\n{stdout}"
    );
    assert!(
        stdout.contains("13 new violation(s) [R1: 4, R14: 1, R2: 2, R3: 1, R4: 1, R5: 3, R9: 1]"),
        "summary should count violations per rule\n{stdout}"
    );
}

#[test]
fn clean_tree_passes_with_allow_tags() {
    let (code, stdout) = run_lint(&fixture("clean"), &[]);
    assert_eq!(code, 0, "clean tree must pass\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
}

#[test]
fn baseline_suppresses_accepted_findings() {
    let baseline = fixture("violations-baseline.txt");
    let (code, stdout) = run_lint(
        &fixture("violations"),
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 0, "baselined tree must pass\n{stdout}");
    assert!(stdout.contains("13 baselined finding(s)"), "{stdout}");
}

/// Satellite: a baseline entry that no longer matches any finding is an
/// error on its own — the baseline may only ever shrink.
#[test]
fn stale_baseline_entry_fails_even_when_all_findings_are_suppressed() {
    let baseline = fixture("violations-stale-baseline.txt");
    let (code, stdout) = run_lint(
        &fixture("violations"),
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 1, "stale entry must fail the gate\n{stdout}");
    assert!(
        stdout.contains("stale baseline entry"),
        "missing stale-baseline diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("R1|crates/dema-core/src/phantom.rs|.unwrap()"),
        "stale diagnostic must name the dead key\n{stdout}"
    );
}

/// Satellite: a well-formed `// lint: allow(Rn)` tag that no longer
/// suppresses anything is itself an R8 violation.
#[test]
fn stale_allow_tag_is_an_r8_violation() {
    let (code, stdout) = run_lint(&fixture("stale-allow"), &[]);
    assert_eq!(code, 1, "stale allow tag must fail\n{stdout}");
    assert!(
        stdout.contains("crates/dema-core/src/lib.rs:5: R8:"),
        "missing R8 diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("allow(R1)"),
        "R8 diagnostic must name the dead tag\n{stdout}"
    );
}

/// Acceptance: deleting a match arm the spec requires (here
/// `CandidateReply` in the Dema root file) is caught by R6, as is
/// handling a variant the spec forbids for that file (`EventBatch`).
#[test]
fn spec_mode_catches_deleted_and_forbidden_match_arms() {
    let (code, stdout) = run_lint(&fixture("spec-violations"), &["--spec"]);
    assert_eq!(code, 1, "spec violations must fail\n{stdout}");
    assert!(
        stdout.contains("R6:") && stdout.contains("CandidateReply"),
        "missing R6 unhandled-variant diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("Message::EventBatch"),
        "missing R6 forbidden-variant diagnostic\n{stdout}"
    );
}

/// Membership negatives: the fixture root shell handles stream ends and
/// leave announcements but its `JoinRequest` arm is deleted — R6 must
/// flag the unhandled variant. Its test region covers the tag pair of
/// every other root-shell edge (join handshake, stream end, leave, drain
/// completion), so R7 must flag exactly the untested `EpochSwitch`
/// transitions — the root shell's `@epoch` broadcast and the responder's
/// wire-triggered arm — and none of the covered ones.
#[test]
fn spec_mode_catches_membership_negatives() {
    let (code, stdout) = run_lint(&fixture("spec-violations"), &["--spec"]);
    assert_eq!(code, 1, "membership negatives must fail\n{stdout}");
    assert!(
        stdout.contains("crates/dema-cluster/src/root.rs")
            && stdout.contains("receive Message::JoinRequest"),
        "missing R6 unhandled-JoinRequest diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("(@epoch->EpochSwitch) of role root-shell"),
        "missing R7 diagnostic for the untested epoch broadcast\n{stdout}"
    );
    assert!(
        stdout.contains("(EpochSwitch) of role dema-responder"),
        "missing R7 diagnostic for the responder's untested arm\n{stdout}"
    );
    for covered in [
        "(StreamEnd) of role root-shell",
        "(JoinRequest->JoinAccept) of role root-shell",
        "(LeaveAnnounce) of role root-shell",
        "(@drained->DrainComplete) of role root-shell",
        "(@join->JoinRequest) of role local-shell",
    ] {
        assert!(
            !stdout.contains(covered),
            "edge {covered} has its tag pair tested and must not be \
             flagged\n{stdout}"
        );
    }
}

/// Without `--spec` the same tree is clean: R6/R7 only run on request, so
/// fixture trees (and downstream forks without the spec) are unaffected.
#[test]
fn spec_rules_are_opt_in() {
    let (code, stdout) = run_lint(&fixture("spec-violations"), &[]);
    assert_eq!(code, 0, "R6/R7 must not run without --spec\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
}

/// Tentpole: the `--concurrency` pass catches a seeded lock-order
/// inversion (R10, split across two files), guards held across blocking
/// calls (R11, mutex and rwlock), unbounded channels (R12), and raw
/// std/parking_lot locks (R13) — each with a file:line anchor.
#[test]
fn concurrency_tree_fails_with_per_rule_diagnostics() {
    let (code, stdout) = run_lint(&fixture("conc-violations"), &["--concurrency"]);
    assert_eq!(code, 1, "expected failure exit, got {code}\n{stdout}");
    assert!(
        stdout.contains("crates/dema-cluster/src/order_a.rs:11: R10:"),
        "missing R10 diagnostic at the inner acquisition\n{stdout}"
    );
    assert!(
        stdout.contains("lock-order inversion")
            && stdout.contains("opposite order at crates/dema-cluster/src/order_b.rs:11"),
        "R10 must name both sites of the cycle\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-core/src/hold.rs:11: R11:"),
        "missing R11 diagnostic (join under mutex guard)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-core/src/hold.rs:17: R11:"),
        "missing R11 diagnostic (pool dispatch under rwlock read guard)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-net/src/chan.rs:4: R12:"),
        "missing R12 diagnostic (unbounded)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-net/src/chan.rs:8: R12:"),
        "missing R12 diagnostic (mpsc::channel)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/raw.rs:3: R13:"),
        "missing R13 diagnostic (std::sync::Mutex import)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/raw.rs:7: R13:"),
        "missing R13 diagnostic (parking_lot)\n{stdout}"
    );
    assert!(
        stdout.contains("7 new violation(s) [R10: 1, R11: 2, R12: 2, R13: 2]"),
        "summary should count concurrency violations per rule\n{stdout}"
    );
}

/// Consistent lock order, block-scoped guards, condvar waits, and tagged
/// sites all pass — and the consumed R10/R11/R12 tags are not stale.
#[test]
fn concurrency_clean_tree_passes_with_allow_tags() {
    let (code, stdout) = run_lint(&fixture("conc-clean"), &["--concurrency"]);
    assert_eq!(code, 0, "clean concurrency tree must pass\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
}

/// Without `--concurrency` the violating tree is clean: R10–R13 are
/// opt-in, and their allow tags are inert rather than stale.
#[test]
fn concurrency_rules_are_opt_in() {
    let (code, stdout) = run_lint(&fixture("conc-violations"), &[]);
    assert_eq!(
        code, 0,
        "R10–R13 must not run without --concurrency\n{stdout}"
    );
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
    let (code, stdout) = run_lint(&fixture("conc-clean"), &[]);
    assert_eq!(code, 0, "inert conc tags must not be stale (R8)\n{stdout}");
}

/// Tentpole: the `--alloc` pass catches every seeded allocation-discipline
/// finding — raw allocation sites inside a marked hot-path region (R15,
/// including the `.min(..)`-clamped capacity and a payload clone), a
/// deleted mandated marker, pool bypasses in the framing files (R16), and
/// a SharedRun payload copy on a send path (R17).
#[test]
fn alloc_tree_fails_with_per_rule_diagnostics() {
    let (code, stdout) = run_lint(&fixture("alloc-violations"), &["--alloc"]);
    assert_eq!(code, 1, "expected failure exit, got {code}\n{stdout}");
    for (line, what) in [
        (9, "Vec::new"),
        (10, "vec!"),
        (11, ".to_vec()"),
        (12, "Box::new"),
        (13, "String::from"),
        (14, "clamps a capacity"),
        (16, ".clone()"),
    ] {
        assert!(
            stdout.lines().any(|l| l
                .starts_with(&format!("crates/dema-core/src/merge.rs:{line}: R15:"))
                && l.contains(what)),
            "missing R15 diagnostic for {what} at merge.rs:{line}\n{stdout}"
        );
    }
    assert!(
        !stdout.contains("merge.rs:15"),
        "the SharedRun clone on line 15 is a refcount bump and exempt\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-core/src/slice.rs:0: R15:")
            && stdout.contains("`// hot-path: slicer` marker is gone"),
        "missing R15 deleted-marker diagnostic\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/frame.rs:9: R16:"),
        "missing R16 diagnostic (vec! payload buffer)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/frame.rs:14: R16:"),
        "missing R16 diagnostic (to_bytes bypass)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-wire/src/frame.rs:15: R16:"),
        "missing R16 diagnostic (min-clamped capacity)\n{stdout}"
    );
    assert!(
        stdout.contains("crates/dema-cluster/src/sender.rs:8: R17:")
            && stdout.contains("SharedRun payload `events`"),
        "missing R17 diagnostic (events.to_vec on a send path)\n{stdout}"
    );
    assert!(
        stdout.contains("12 new violation(s) [R15: 8, R16: 3, R17: 1]"),
        "summary should count alloc violations per rule\n{stdout}"
    );
}

/// Exact capacities, pooled frame buffers, SharedRun clones, and tagged
/// cold paths all pass — and the consumed R15/R17 tags are not stale.
#[test]
fn alloc_clean_tree_passes_with_allow_tags() {
    let (code, stdout) = run_lint(&fixture("alloc-clean"), &["--alloc"]);
    assert_eq!(code, 0, "clean alloc tree must pass\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
}

/// Without `--alloc` both alloc trees are clean: R15–R17 are opt-in, and
/// their allow tags are inert rather than stale.
#[test]
fn alloc_rules_are_opt_in() {
    let (code, stdout) = run_lint(&fixture("alloc-violations"), &[]);
    assert_eq!(code, 0, "R15–R17 must not run without --alloc\n{stdout}");
    assert!(stdout.contains("dema-lint: clean"), "{stdout}");
    let (code, stdout) = run_lint(&fixture("alloc-clean"), &[]);
    assert_eq!(code, 0, "inert alloc tags must not be stale (R8)\n{stdout}");
}

/// `explain` prints the rule's rationale and allow syntax; unknown rules
/// are usage errors listing the catalogue.
#[test]
fn explain_prints_rationale_and_allow_syntax() {
    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .args(["explain", "R11"])
        .output()
        .expect("spawn dema-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R11:"), "{stdout}");
    assert!(
        stdout.contains("allow: // lint: allow(R11): <reason>"),
        "{stdout}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .args(["explain", "R99"])
        .output()
        .expect("spawn dema-lint");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("R13"),
        "unknown-rule error lists the catalogue\n{stderr}"
    );
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_dema-lint"))
        .arg("lurk")
        .output()
        .expect("spawn dema-lint");
    assert_eq!(out.status.code(), Some(2));
}
