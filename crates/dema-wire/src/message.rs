//! Protocol messages and their binary encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dema_core::event::{Event, NodeId, WindowId};
use dema_core::shared::SharedRun;
use dema_core::slice::{SliceId, SliceSynopsis};
use dema_sketch::tdigest::Centroid;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the message did.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// A length field exceeds sanity limits (corruption guard).
    BadLength(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadLength(l) => write!(f, "implausible length field {l}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on any element count in a decoded message; frames larger than
/// this indicate corruption, not workload.
const MAX_ELEMS: u64 = 1 << 28;

const TAG_SYNOPSIS_BATCH: u8 = 1;
const TAG_CANDIDATE_REQUEST: u8 = 2;
const TAG_CANDIDATE_REPLY: u8 = 3;
const TAG_EVENT_BATCH: u8 = 4;
const TAG_DIGEST_BATCH: u8 = 5;
const TAG_GAMMA_UPDATE: u8 = 6;
const TAG_WINDOW_RESULT: u8 = 7;
const TAG_STREAM_END: u8 = 8;
const TAG_SKETCH_BATCH: u8 = 9;
const TAG_ROUTED: u8 = 10;
const TAG_RESEND_WINDOW: u8 = 11;
const TAG_CANDIDATE_RETRY: u8 = 12;
const TAG_JOIN_REQUEST: u8 = 13;
const TAG_JOIN_ACCEPT: u8 = 14;
const TAG_LEAVE_ANNOUNCE: u8 = 15;
const TAG_DRAIN_COMPLETE: u8 = 16;
const TAG_EPOCH_SWITCH: u8 = 17;

/// Every message of the Dema cluster protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Local → root (identification step): synopses of one closed local
    /// window.
    SynopsisBatch {
        /// Sender.
        node: NodeId,
        /// Window the synopses describe.
        window: WindowId,
        /// One synopsis per slice, ascending slice index.
        synopses: Vec<SliceSynopsis>,
    },
    /// Root → local (calculation step): request the events of these slices.
    CandidateRequest {
        /// Window being resolved.
        window: WindowId,
        /// Slice indices (within the receiver's slice sequence) to ship.
        slices: Vec<u32>,
    },
    /// Local → root (calculation step): the requested candidate events.
    ///
    /// The runs are [`SharedRun`] views: building a reply from the local
    /// store bumps refcounts, and cloning the message (e.g. into an
    /// in-memory transport) never copies events.
    CandidateReply {
        /// Sender.
        node: NodeId,
        /// Window being resolved.
        window: WindowId,
        /// `(slice index, sorted events)` per requested slice.
        slices: Vec<(u32, SharedRun)>,
    },
    /// Local → root: raw events of one window (the centralized and
    /// decentralized-sort baselines; `sorted` distinguishes them).
    EventBatch {
        /// Sender.
        node: NodeId,
        /// Window the events belong to.
        window: WindowId,
        /// `true` if the sender pre-sorted the batch (Desis-style).
        sorted: bool,
        /// The events.
        events: Vec<Event>,
    },
    /// Local → root: a t-digest of one window (distributed Tdigest mode).
    DigestBatch {
        /// Sender.
        node: NodeId,
        /// Window the digest summarizes.
        window: WindowId,
        /// Observations absorbed.
        count: u64,
        /// Digest compression δ.
        compression: f64,
        /// Digest centroids, ascending mean.
        centroids: Vec<Centroid>,
    },
    /// Root → local: γ for the next windows (adaptive slice factor).
    GammaUpdate {
        /// New slice factor.
        gamma: u64,
    },
    /// Root → observers: final aggregate of one global window.
    WindowResult {
        /// The window.
        window: WindowId,
        /// Quantile value.
        value: i64,
        /// Global window size `l_G`.
        total_events: u64,
    },
    /// Local → root: this node will send nothing further.
    StreamEnd {
        /// Sender.
        node: NodeId,
        /// Events this node dropped as late (behind its watermark).
        late_events: u64,
    },
    /// Local → root: a mergeable weighted-sample sketch of one window
    /// (distributed sketch engines, e.g. KLL). Items are `(value, weight)`
    /// pairs; weights sum to `count`.
    SketchBatch {
        /// Sender.
        node: NodeId,
        /// Window the sketch summarizes.
        window: WindowId,
        /// Observations absorbed.
        count: u64,
        /// Exact smallest observation (retained items may lose extremes).
        min: f64,
        /// Exact largest observation.
        max: f64,
        /// Weighted items, ascending value.
        items: Vec<(f64, u64)>,
    },
    /// Relay envelope (root → relay tiers): deliver `inner` to local
    /// `dest`. Relays whose children are leaves unwrap it; deeper relays
    /// forward it unchanged. Never nested.
    Routed {
        /// The local node the inner message is for.
        dest: NodeId,
        /// The wrapped control message.
        inner: Box<Message>,
    },
    /// Root → local (retry protocol): the root's deadline for this window's
    /// uplink message expired — resend it from the local's sent-cache.
    /// `attempt` is the retry epoch (sequence number), monotonically
    /// increasing per window so stale retransmissions are identifiable.
    ResendWindow {
        /// Window whose uplink message is missing at the root.
        window: WindowId,
        /// Retry epoch, starting at 1 for the first resend request.
        attempt: u32,
    },
    /// Root → local (retry protocol): re-request candidate slices after a
    /// lost [`Message::CandidateRequest`] or [`Message::CandidateReply`].
    /// Unlike the original request it carries an `attempt` epoch, and
    /// locals serve it idempotently from the retained store.
    CandidateRetry {
        /// Window being resolved.
        window: WindowId,
        /// Slice indices (within the receiver's slice sequence) to ship.
        slices: Vec<u32>,
        /// Retry epoch, starting at 1 for the first re-request.
        attempt: u32,
    },
    /// Local → root (membership protocol): this node wants to join the
    /// cluster effective at a window boundary — it will produce windows
    /// `>= window` and nothing earlier.
    JoinRequest {
        /// The joining node.
        node: NodeId,
        /// First window the joiner will report (the epoch boundary).
        window: WindowId,
    },
    /// Root → local (membership protocol): the join is staged; the root
    /// will expect the joiner's reports from `window` on and counts it as
    /// a member of `epoch`.
    JoinAccept {
        /// The accepted joiner.
        node: NodeId,
        /// Membership epoch the joiner becomes a member of.
        epoch: u64,
        /// First window the root expects from the joiner.
        window: WindowId,
        /// Slice factor the joiner must cut its first windows with.
        gamma: u64,
    },
    /// Local → root (membership protocol): this node is leaving — it has
    /// produced every window `< window` and will produce nothing later,
    /// but keeps its responder serving until the root confirms the drain.
    LeaveAnnounce {
        /// The leaving node.
        node: NodeId,
        /// First window the leaver will NOT report (the epoch boundary).
        window: WindowId,
    },
    /// Root → local (membership protocol): every window the leaver owed —
    /// including its `SentCache` replay obligations — is resolved; the
    /// node may shut down its responder and exit.
    DrainComplete {
        /// The drained node.
        node: NodeId,
        /// Membership epoch the node left at the start of.
        epoch: u64,
    },
    /// Root → locals (membership protocol): broadcast at a window
    /// boundary when staged joins/leaves take effect. Every window
    /// `>= window` is computed under `epoch`'s membership.
    EpochSwitch {
        /// The new membership epoch.
        epoch: u64,
        /// First window of the new epoch.
        window: WindowId,
        /// Nodes that became members at this boundary.
        joined: Vec<NodeId>,
        /// Nodes that ceased to be members at this boundary.
        left: Vec<NodeId>,
    },
}

/// Static metadata for one wire tag: the on-wire tag byte and the
/// [`Message`] variant name it decodes to. Consumed by the protocol
/// specification in `dema-model` and the spec-conformance lint rules, so
/// both always agree with the codec about which tags exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagInfo {
    /// The one-byte tag that starts every encoded message of this variant.
    pub tag: u8,
    /// The `Message` variant name, e.g. `"SynopsisBatch"`.
    pub name: &'static str,
}

/// Every wire tag, ascending by tag byte. One entry per [`Message`]
/// variant; `tags_cover_every_variant` in the test module pins the
/// correspondence.
pub const TAGS: [TagInfo; 17] = [
    TagInfo {
        tag: TAG_SYNOPSIS_BATCH,
        name: "SynopsisBatch",
    },
    TagInfo {
        tag: TAG_CANDIDATE_REQUEST,
        name: "CandidateRequest",
    },
    TagInfo {
        tag: TAG_CANDIDATE_REPLY,
        name: "CandidateReply",
    },
    TagInfo {
        tag: TAG_EVENT_BATCH,
        name: "EventBatch",
    },
    TagInfo {
        tag: TAG_DIGEST_BATCH,
        name: "DigestBatch",
    },
    TagInfo {
        tag: TAG_GAMMA_UPDATE,
        name: "GammaUpdate",
    },
    TagInfo {
        tag: TAG_WINDOW_RESULT,
        name: "WindowResult",
    },
    TagInfo {
        tag: TAG_STREAM_END,
        name: "StreamEnd",
    },
    TagInfo {
        tag: TAG_SKETCH_BATCH,
        name: "SketchBatch",
    },
    TagInfo {
        tag: TAG_ROUTED,
        name: "Routed",
    },
    TagInfo {
        tag: TAG_RESEND_WINDOW,
        name: "ResendWindow",
    },
    TagInfo {
        tag: TAG_CANDIDATE_RETRY,
        name: "CandidateRetry",
    },
    TagInfo {
        tag: TAG_JOIN_REQUEST,
        name: "JoinRequest",
    },
    TagInfo {
        tag: TAG_JOIN_ACCEPT,
        name: "JoinAccept",
    },
    TagInfo {
        tag: TAG_LEAVE_ANNOUNCE,
        name: "LeaveAnnounce",
    },
    TagInfo {
        tag: TAG_DRAIN_COMPLETE,
        name: "DrainComplete",
    },
    TagInfo {
        tag: TAG_EPOCH_SWITCH,
        name: "EpochSwitch",
    },
];

/// Look up the metadata for a wire tag byte, if one is defined.
pub fn tag_info(tag: u8) -> Option<TagInfo> {
    TAGS.iter().copied().find(|t| t.tag == tag)
}

/// Look up the metadata for a [`Message`] variant name, if one is defined.
pub fn tag_by_name(name: &str) -> Option<TagInfo> {
    TAGS.iter().copied().find(|t| t.name == name)
}

impl Message {
    /// The wire tag byte this message encodes with — always the first byte
    /// of [`Message::encode`] output.
    pub fn tag(&self) -> u8 {
        match self {
            Message::SynopsisBatch { .. } => TAG_SYNOPSIS_BATCH,
            Message::CandidateRequest { .. } => TAG_CANDIDATE_REQUEST,
            Message::CandidateReply { .. } => TAG_CANDIDATE_REPLY,
            Message::EventBatch { .. } => TAG_EVENT_BATCH,
            Message::DigestBatch { .. } => TAG_DIGEST_BATCH,
            Message::GammaUpdate { .. } => TAG_GAMMA_UPDATE,
            Message::WindowResult { .. } => TAG_WINDOW_RESULT,
            Message::StreamEnd { .. } => TAG_STREAM_END,
            Message::SketchBatch { .. } => TAG_SKETCH_BATCH,
            Message::Routed { .. } => TAG_ROUTED,
            Message::ResendWindow { .. } => TAG_RESEND_WINDOW,
            Message::CandidateRetry { .. } => TAG_CANDIDATE_RETRY,
            Message::JoinRequest { .. } => TAG_JOIN_REQUEST,
            Message::JoinAccept { .. } => TAG_JOIN_ACCEPT,
            Message::LeaveAnnounce { .. } => TAG_LEAVE_ANNOUNCE,
            Message::DrainComplete { .. } => TAG_DRAIN_COMPLETE,
            Message::EpochSwitch { .. } => TAG_EPOCH_SWITCH,
        }
    }

    /// The variant name as recorded in [`TAGS`], e.g. `"SynopsisBatch"`.
    pub fn variant_name(&self) -> &'static str {
        match tag_info(self.tag()) {
            Some(t) => t.name,
            None => "<unknown>",
        }
    }

    /// Encode into `buf`. The encoding is deterministic; `encoded_len`
    /// predicts the exact size.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        self.encode_impl(buf);
    }

    /// Encode into a caller-provided plain `Vec<u8>` (appending), e.g. a
    /// buffer drawn from [`crate::pool::BufferPool`]. Produces exactly the
    /// same bytes as [`Message::encode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.encoded_len());
        self.encode_impl(buf);
    }

    fn encode_impl<B: BufMut>(&self, buf: &mut B) {
        match self {
            Message::SynopsisBatch {
                node,
                window,
                synopses,
            } => {
                buf.put_u8(TAG_SYNOPSIS_BATCH);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
                buf.put_u32_le(synopses.len() as u32);
                for s in synopses {
                    buf.put_u32_le(s.id.index);
                    buf.put_i64_le(s.first);
                    buf.put_i64_le(s.last);
                    buf.put_u64_le(s.count);
                    buf.put_u32_le(s.total_slices);
                }
            }
            Message::CandidateRequest { window, slices } => {
                buf.put_u8(TAG_CANDIDATE_REQUEST);
                buf.put_u64_le(window.0);
                buf.put_u32_le(slices.len() as u32);
                for &i in slices {
                    buf.put_u32_le(i);
                }
            }
            Message::CandidateReply {
                node,
                window,
                slices,
            } => {
                buf.put_u8(TAG_CANDIDATE_REPLY);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
                buf.put_u32_le(slices.len() as u32);
                for (idx, events) in slices {
                    buf.put_u32_le(*idx);
                    buf.put_u32_le(events.len() as u32);
                    put_events(buf, events.as_ref());
                }
            }
            Message::EventBatch {
                node,
                window,
                sorted,
                events,
            } => {
                buf.put_u8(TAG_EVENT_BATCH);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
                buf.put_u8(u8::from(*sorted));
                buf.put_u32_le(events.len() as u32);
                put_events(buf, events);
            }
            Message::DigestBatch {
                node,
                window,
                count,
                compression,
                centroids,
            } => {
                buf.put_u8(TAG_DIGEST_BATCH);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
                buf.put_u64_le(*count);
                buf.put_f64_le(*compression);
                buf.put_u32_le(centroids.len() as u32);
                for c in centroids {
                    buf.put_f64_le(c.mean);
                    buf.put_u64_le(c.weight);
                }
            }
            Message::GammaUpdate { gamma } => {
                buf.put_u8(TAG_GAMMA_UPDATE);
                buf.put_u64_le(*gamma);
            }
            Message::WindowResult {
                window,
                value,
                total_events,
            } => {
                buf.put_u8(TAG_WINDOW_RESULT);
                buf.put_u64_le(window.0);
                buf.put_i64_le(*value);
                buf.put_u64_le(*total_events);
            }
            Message::StreamEnd { node, late_events } => {
                buf.put_u8(TAG_STREAM_END);
                buf.put_u32_le(node.0);
                buf.put_u64_le(*late_events);
            }
            Message::SketchBatch {
                node,
                window,
                count,
                min,
                max,
                items,
            } => {
                buf.put_u8(TAG_SKETCH_BATCH);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
                buf.put_u64_le(*count);
                buf.put_f64_le(*min);
                buf.put_f64_le(*max);
                buf.put_u32_le(items.len() as u32);
                for (v, w) in items {
                    buf.put_f64_le(*v);
                    buf.put_u64_le(*w);
                }
            }
            Message::Routed { dest, inner } => {
                buf.put_u8(TAG_ROUTED);
                buf.put_u32_le(dest.0);
                inner.encode_impl(buf);
            }
            Message::ResendWindow { window, attempt } => {
                buf.put_u8(TAG_RESEND_WINDOW);
                buf.put_u64_le(window.0);
                buf.put_u32_le(*attempt);
            }
            Message::CandidateRetry {
                window,
                slices,
                attempt,
            } => {
                buf.put_u8(TAG_CANDIDATE_RETRY);
                buf.put_u64_le(window.0);
                buf.put_u32_le(*attempt);
                buf.put_u32_le(slices.len() as u32);
                for &i in slices {
                    buf.put_u32_le(i);
                }
            }
            Message::JoinRequest { node, window } => {
                buf.put_u8(TAG_JOIN_REQUEST);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
            }
            Message::JoinAccept {
                node,
                epoch,
                window,
                gamma,
            } => {
                buf.put_u8(TAG_JOIN_ACCEPT);
                buf.put_u32_le(node.0);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(window.0);
                buf.put_u64_le(*gamma);
            }
            Message::LeaveAnnounce { node, window } => {
                buf.put_u8(TAG_LEAVE_ANNOUNCE);
                buf.put_u32_le(node.0);
                buf.put_u64_le(window.0);
            }
            Message::DrainComplete { node, epoch } => {
                buf.put_u8(TAG_DRAIN_COMPLETE);
                buf.put_u32_le(node.0);
                buf.put_u64_le(*epoch);
            }
            Message::EpochSwitch {
                epoch,
                window,
                joined,
                left,
            } => {
                buf.put_u8(TAG_EPOCH_SWITCH);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(window.0);
                buf.put_u32_le(joined.len() as u32);
                for n in joined {
                    buf.put_u32_le(n.0);
                }
                buf.put_u32_le(left.len() as u32);
                for n in left {
                    buf.put_u32_le(n.0);
                }
            }
        }
    }

    /// Exact size [`Message::encode`] will produce, in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::SynopsisBatch { synopses, .. } => {
                1 + 4 + 8 + 4 + synopses.len() * (4 + 8 + 8 + 8 + 4)
            }
            Message::CandidateRequest { slices, .. } => 1 + 8 + 4 + slices.len() * 4,
            Message::CandidateReply { slices, .. } => {
                1 + 4
                    + 8
                    + 4
                    + slices
                        .iter()
                        .map(|(_, ev)| 4 + 4 + ev.len() * EVENT_LEN)
                        .sum::<usize>()
            }
            Message::EventBatch { events, .. } => 1 + 4 + 8 + 1 + 4 + events.len() * EVENT_LEN,
            Message::DigestBatch { centroids, .. } => 1 + 4 + 8 + 8 + 8 + 4 + centroids.len() * 16,
            Message::GammaUpdate { .. } => 1 + 8,
            Message::WindowResult { .. } => 1 + 8 + 8 + 8,
            Message::StreamEnd { .. } => 1 + 4 + 8,
            Message::SketchBatch { items, .. } => 1 + 4 + 8 + 8 + 8 + 8 + 4 + items.len() * 16,
            Message::Routed { inner, .. } => 1 + 4 + inner.encoded_len(),
            Message::ResendWindow { .. } => 1 + 8 + 4,
            Message::CandidateRetry { slices, .. } => 1 + 8 + 4 + 4 + slices.len() * 4,
            Message::JoinRequest { .. } | Message::LeaveAnnounce { .. } => 1 + 4 + 8,
            Message::JoinAccept { .. } => 1 + 4 + 8 + 8 + 8,
            Message::DrainComplete { .. } => 1 + 4 + 8,
            Message::EpochSwitch { joined, left, .. } => {
                1 + 8 + 8 + 4 + joined.len() * 4 + 4 + left.len() * 4
            }
        }
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode one message from `buf`, which must contain exactly one
    /// encoded message (as produced by [`Message::encode`]).
    pub fn decode(mut buf: &[u8]) -> Result<Message, WireError> {
        let msg = decode_inner(&mut buf, true)?;
        if !buf.is_empty() {
            return Err(WireError::BadLength(buf.len() as u64));
        }
        Ok(msg)
    }

    /// The paper's events-on-the-wire cost of this message: raw events carry
    /// themselves; a synopsis carries its two endpoint events; control
    /// messages are free. (Byte counts are tracked separately.)
    pub fn event_units(&self) -> u64 {
        match self {
            Message::SynopsisBatch { synopses, .. } => 2 * synopses.len() as u64,
            Message::CandidateReply { slices, .. } => {
                slices.iter().map(|(_, ev)| ev.len() as u64).sum()
            }
            Message::EventBatch { events, .. } => events.len() as u64,
            // A centroid is a compressed pair, not an event; count them like
            // synopsis endpoints for comparability.
            Message::DigestBatch { centroids, .. } => centroids.len() as u64,
            // Same accounting for weighted sketch items.
            Message::SketchBatch { items, .. } => items.len() as u64,
            // The envelope adds no events of its own.
            Message::Routed { inner, .. } => inner.event_units(),
            _ => 0,
        }
    }

    /// The `(sender, window)` key of a window-keyed data-plane message —
    /// the unit of per-node traffic attribution. Control traffic (stream
    /// ends, membership handshakes, retries, γ updates) carries no key:
    /// it reflects the fault and reconfiguration layers, not a node's
    /// contribution to a window.
    pub fn data_source(&self) -> Option<(NodeId, WindowId)> {
        match self {
            Message::SynopsisBatch { node, window, .. }
            | Message::CandidateReply { node, window, .. }
            | Message::EventBatch { node, window, .. }
            | Message::DigestBatch { node, window, .. }
            | Message::SketchBatch { node, window, .. } => Some((*node, *window)),
            Message::Routed { inner, .. } => inner.data_source(),
            _ => None,
        }
    }
}

/// Bytes per encoded event.
pub const EVENT_LEN: usize = 8 + 8 + 8;

/// Events per block of the strided batch codec: 64 events fill a 1536-byte
/// stack buffer — small enough to stay cache-hot, large enough that the
/// fill loop autovectorizes and the generic [`BufMut`] machinery is paid
/// once per block instead of three times per event.
const EVENT_BLOCK: usize = 64;

/// Encode a batch of events in fixed-stride blocks.
///
/// Byte-for-byte identical to encoding each event as
/// `put_i64_le(value), put_u64_le(ts), put_u64_le(id)` — the layout is the
/// same 24-byte little-endian record, only the write granularity changes
/// (one `put_slice` per block). The frame-level golden test below pins the
/// equivalence.
fn put_events<B: BufMut>(buf: &mut B, events: &[Event]) {
    let mut block = [0u8; EVENT_BLOCK * EVENT_LEN];
    for chunk in events.chunks(EVENT_BLOCK) {
        for (rec, e) in block.chunks_exact_mut(EVENT_LEN).zip(chunk) {
            rec[..8].copy_from_slice(&e.value.to_le_bytes());
            rec[8..16].copy_from_slice(&e.ts.to_le_bytes());
            rec[16..24].copy_from_slice(&e.id.to_le_bytes());
        }
        buf.put_slice(&block[..chunk.len() * EVENT_LEN]);
    }
}

/// Decode `n` fixed-stride event records.
///
/// Verifies the full `n · EVENT_LEN` bytes are present up front (any
/// truncation inside the batch still fails, now before allocating), then
/// strides through the raw records — no per-field bounds checks.
fn take_events(buf: &mut &[u8], n: usize) -> Result<Vec<Event>, WireError> {
    let bytes = n
        .checked_mul(EVENT_LEN)
        .ok_or(WireError::BadLength(n as u64))?;
    need(buf, bytes)?;
    let (records, rest) = buf.split_at(bytes);
    let mut events = Vec::with_capacity(n);
    let mut word = [0u8; 8];
    for rec in records.chunks_exact(EVENT_LEN) {
        word.copy_from_slice(&rec[..8]);
        let value = i64::from_le_bytes(word);
        word.copy_from_slice(&rec[8..16]);
        let ts = u64::from_le_bytes(word);
        word.copy_from_slice(&rec[16..24]);
        let id = u64::from_le_bytes(word);
        events.push(Event { value, ts, id });
    }
    *buf = rest;
    Ok(events)
}

#[inline]
fn need(buf: &&[u8], n: usize) -> Result<(), WireError> {
    if buf.len() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn take_count(buf: &mut &[u8]) -> Result<usize, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as u64;
    if n > MAX_ELEMS {
        return Err(WireError::BadLength(n));
    }
    Ok(n as usize)
}

/// Validate that `n` records of at least `record_len` bytes each are
/// actually present in `buf`, then hand `n` back as a trustworthy
/// capacity. Replaces the old `n.min(1024)`-style capacity guesses: the
/// output vector is sized exactly once from the validated frame length,
/// so decode loops never grow mid-flight (lint rule R15, `codec` region)
/// and a lying count fails *before* allocating instead of after.
#[inline]
fn validated_count(buf: &&[u8], n: usize, record_len: usize) -> Result<usize, WireError> {
    let bytes = n
        .checked_mul(record_len)
        .ok_or(WireError::BadLength(n as u64))?;
    need(buf, bytes)?;
    Ok(n)
}

// hot-path: codec
fn decode_inner(buf: &mut &[u8], allow_routed: bool) -> Result<Message, WireError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    match tag {
        TAG_SYNOPSIS_BATCH => {
            need(buf, 4 + 8)?;
            let node = NodeId(buf.get_u32_le());
            let window = WindowId(buf.get_u64_le());
            let n = take_count(buf)?;
            let mut synopses = Vec::with_capacity(validated_count(buf, n, 4 + 8 + 8 + 8 + 4)?);
            for _ in 0..n {
                need(buf, 4 + 8 + 8 + 8 + 4)?;
                let index = buf.get_u32_le();
                let first = buf.get_i64_le();
                let last = buf.get_i64_le();
                let count = buf.get_u64_le();
                let total_slices = buf.get_u32_le();
                synopses.push(SliceSynopsis {
                    id: SliceId {
                        node,
                        window,
                        index,
                    },
                    first,
                    last,
                    count,
                    total_slices,
                });
            }
            Ok(Message::SynopsisBatch {
                node,
                window,
                synopses,
            })
        }
        TAG_CANDIDATE_REQUEST => {
            need(buf, 8)?;
            let window = WindowId(buf.get_u64_le());
            let n = take_count(buf)?;
            let mut slices = Vec::with_capacity(validated_count(buf, n, 4)?);
            for _ in 0..n {
                need(buf, 4)?;
                slices.push(buf.get_u32_le());
            }
            Ok(Message::CandidateRequest { window, slices })
        }
        TAG_CANDIDATE_REPLY => {
            need(buf, 4 + 8)?;
            let node = NodeId(buf.get_u32_le());
            let window = WindowId(buf.get_u64_le());
            let n = take_count(buf)?;
            // Variable-length records: validate against the 8-byte floor
            // (slice index + event count) every record must carry.
            let mut slices = Vec::with_capacity(validated_count(buf, n, 4 + 4)?);
            for _ in 0..n {
                need(buf, 4)?;
                let idx = buf.get_u32_le();
                let m = take_count(buf)?;
                slices.push((idx, SharedRun::from_vec(take_events(buf, m)?)));
            }
            Ok(Message::CandidateReply {
                node,
                window,
                slices,
            })
        }
        TAG_EVENT_BATCH => {
            need(buf, 4 + 8 + 1)?;
            let node = NodeId(buf.get_u32_le());
            let window = WindowId(buf.get_u64_le());
            let sorted = buf.get_u8() != 0;
            let n = take_count(buf)?;
            let events = take_events(buf, n)?;
            Ok(Message::EventBatch {
                node,
                window,
                sorted,
                events,
            })
        }
        TAG_DIGEST_BATCH => {
            need(buf, 4 + 8 + 8 + 8)?;
            let node = NodeId(buf.get_u32_le());
            let window = WindowId(buf.get_u64_le());
            let count = buf.get_u64_le();
            let compression = buf.get_f64_le();
            let n = take_count(buf)?;
            let mut centroids = Vec::with_capacity(validated_count(buf, n, 16)?);
            for _ in 0..n {
                need(buf, 16)?;
                let mean = buf.get_f64_le();
                let weight = buf.get_u64_le();
                centroids.push(Centroid { mean, weight });
            }
            Ok(Message::DigestBatch {
                node,
                window,
                count,
                compression,
                centroids,
            })
        }
        TAG_GAMMA_UPDATE => {
            need(buf, 8)?;
            Ok(Message::GammaUpdate {
                gamma: buf.get_u64_le(),
            })
        }
        TAG_WINDOW_RESULT => {
            need(buf, 8 + 8 + 8)?;
            Ok(Message::WindowResult {
                window: WindowId(buf.get_u64_le()),
                value: buf.get_i64_le(),
                total_events: buf.get_u64_le(),
            })
        }
        TAG_STREAM_END => {
            need(buf, 4 + 8)?;
            Ok(Message::StreamEnd {
                node: NodeId(buf.get_u32_le()),
                late_events: buf.get_u64_le(),
            })
        }
        TAG_SKETCH_BATCH => {
            need(buf, 4 + 8 + 8 + 8 + 8)?;
            let node = NodeId(buf.get_u32_le());
            let window = WindowId(buf.get_u64_le());
            let count = buf.get_u64_le();
            let min = buf.get_f64_le();
            let max = buf.get_f64_le();
            let n = take_count(buf)?;
            let mut items = Vec::with_capacity(validated_count(buf, n, 16)?);
            for _ in 0..n {
                need(buf, 16)?;
                let v = buf.get_f64_le();
                let w = buf.get_u64_le();
                items.push((v, w));
            }
            Ok(Message::SketchBatch {
                node,
                window,
                count,
                min,
                max,
                items,
            })
        }
        // An envelope inside an envelope is corruption, not topology: relays
        // forward a routed frame unchanged, they never re-wrap it.
        TAG_RESEND_WINDOW => {
            need(buf, 8 + 4)?;
            Ok(Message::ResendWindow {
                window: WindowId(buf.get_u64_le()),
                attempt: buf.get_u32_le(),
            })
        }
        TAG_CANDIDATE_RETRY => {
            need(buf, 8 + 4)?;
            let window = WindowId(buf.get_u64_le());
            let attempt = buf.get_u32_le();
            let n = take_count(buf)?;
            let mut slices = Vec::with_capacity(validated_count(buf, n, 4)?);
            for _ in 0..n {
                need(buf, 4)?;
                slices.push(buf.get_u32_le());
            }
            Ok(Message::CandidateRetry {
                window,
                slices,
                attempt,
            })
        }
        TAG_JOIN_REQUEST => {
            need(buf, 4 + 8)?;
            Ok(Message::JoinRequest {
                node: NodeId(buf.get_u32_le()),
                window: WindowId(buf.get_u64_le()),
            })
        }
        TAG_JOIN_ACCEPT => {
            need(buf, 4 + 8 + 8 + 8)?;
            Ok(Message::JoinAccept {
                node: NodeId(buf.get_u32_le()),
                epoch: buf.get_u64_le(),
                window: WindowId(buf.get_u64_le()),
                gamma: buf.get_u64_le(),
            })
        }
        TAG_LEAVE_ANNOUNCE => {
            need(buf, 4 + 8)?;
            Ok(Message::LeaveAnnounce {
                node: NodeId(buf.get_u32_le()),
                window: WindowId(buf.get_u64_le()),
            })
        }
        TAG_DRAIN_COMPLETE => {
            need(buf, 4 + 8)?;
            Ok(Message::DrainComplete {
                node: NodeId(buf.get_u32_le()),
                epoch: buf.get_u64_le(),
            })
        }
        TAG_EPOCH_SWITCH => {
            need(buf, 8 + 8)?;
            let epoch = buf.get_u64_le();
            let window = WindowId(buf.get_u64_le());
            let n = take_count(buf)?;
            let mut joined = Vec::with_capacity(validated_count(buf, n, 4)?);
            for _ in 0..n {
                need(buf, 4)?;
                joined.push(NodeId(buf.get_u32_le()));
            }
            let m = take_count(buf)?;
            let mut left = Vec::with_capacity(validated_count(buf, m, 4)?);
            for _ in 0..m {
                need(buf, 4)?;
                left.push(NodeId(buf.get_u32_le()));
            }
            Ok(Message::EpochSwitch {
                epoch,
                window,
                joined,
                left,
            })
        }
        TAG_ROUTED if allow_routed => {
            need(buf, 4)?;
            let dest = NodeId(buf.get_u32_le());
            let inner = decode_inner(buf, false)?;
            Ok(Message::Routed {
                dest,
                inner: Box::new(inner), // lint: allow(R15): Box is the Routed variant's representation; relay control path
            })
        }
        other => Err(WireError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.to_bytes();
        assert_eq!(
            bytes.len(),
            msg.encoded_len(),
            "encoded_len mismatch for {msg:?}"
        );
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    fn sample_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i as i64 * 3 - 50, i * 7, i))
            .collect()
    }

    fn sample_run(n: u64) -> SharedRun {
        SharedRun::from_vec(sample_events(n))
    }

    /// Golden frame-level check: the strided block codec produces exactly
    /// the bytes the original per-field codec did. The reference encoder
    /// below is the retired implementation, kept verbatim.
    #[test]
    fn strided_event_codec_is_bit_identical_to_per_field_codec() {
        fn put_event_reference<B: BufMut>(buf: &mut B, e: &Event) {
            buf.put_i64_le(e.value);
            buf.put_u64_le(e.ts);
            buf.put_u64_le(e.id);
        }
        // 150 events: two full 64-event blocks plus a 22-event tail.
        let events = sample_events(150);
        let batch = Message::EventBatch {
            node: NodeId(3),
            window: WindowId(9),
            sorted: true,
            events: events.clone(),
        };
        let reply = Message::CandidateReply {
            node: NodeId(3),
            window: WindowId(9),
            slices: vec![
                (0, SharedRun::from_vec(events.clone())),
                (1, sample_run(1)),
                (2, sample_run(0)),
            ],
        };

        let mut expect = BytesMut::new();
        expect.put_u8(TAG_EVENT_BATCH);
        expect.put_u32_le(3);
        expect.put_u64_le(9);
        expect.put_u8(1);
        expect.put_u32_le(150);
        for e in &events {
            put_event_reference(&mut expect, e);
        }
        assert_eq!(batch.to_bytes(), expect.freeze());

        let mut expect = BytesMut::new();
        expect.put_u8(TAG_CANDIDATE_REPLY);
        expect.put_u32_le(3);
        expect.put_u64_le(9);
        expect.put_u32_le(3);
        for (idx, run) in [(0u32, &events[..]), (1, &sample_events(1)), (2, &[])] {
            expect.put_u32_le(idx);
            expect.put_u32_le(run.len() as u32);
            for e in run {
                put_event_reference(&mut expect, e);
            }
        }
        assert_eq!(reply.to_bytes(), expect.freeze());

        // And the strided decoder inverts it.
        roundtrip(batch);
        roundtrip(reply);
    }

    /// One instance of every `Message` variant, in `TAGS` order.
    fn sample_of_every_variant() -> Vec<Message> {
        vec![
            Message::SynopsisBatch {
                node: NodeId(1),
                window: WindowId(2),
                synopses: vec![],
            },
            Message::CandidateRequest {
                window: WindowId(2),
                slices: vec![0],
            },
            Message::CandidateReply {
                node: NodeId(1),
                window: WindowId(2),
                slices: vec![(0, sample_run(2))],
            },
            Message::EventBatch {
                node: NodeId(1),
                window: WindowId(2),
                sorted: false,
                events: sample_events(2),
            },
            Message::DigestBatch {
                node: NodeId(1),
                window: WindowId(2),
                count: 2,
                compression: 100.0,
                centroids: vec![],
            },
            Message::GammaUpdate { gamma: 8 },
            Message::WindowResult {
                window: WindowId(2),
                value: 7,
                total_events: 2,
            },
            Message::StreamEnd {
                node: NodeId(1),
                late_events: 0,
            },
            Message::SketchBatch {
                node: NodeId(1),
                window: WindowId(2),
                count: 2,
                min: 0.0,
                max: 1.0,
                items: vec![(0.5, 2)],
            },
            Message::Routed {
                dest: NodeId(1),
                inner: Box::new(Message::GammaUpdate { gamma: 8 }),
            },
            Message::ResendWindow {
                window: WindowId(2),
                attempt: 1,
            },
            Message::CandidateRetry {
                window: WindowId(2),
                slices: vec![0],
                attempt: 1,
            },
            Message::JoinRequest {
                node: NodeId(1),
                window: WindowId(2),
            },
            Message::JoinAccept {
                node: NodeId(1),
                epoch: 1,
                window: WindowId(2),
                gamma: 8,
            },
            Message::LeaveAnnounce {
                node: NodeId(1),
                window: WindowId(2),
            },
            Message::DrainComplete {
                node: NodeId(1),
                epoch: 1,
            },
            Message::EpochSwitch {
                epoch: 1,
                window: WindowId(2),
                joined: vec![NodeId(1)],
                left: vec![],
            },
        ]
    }

    #[test]
    fn tags_cover_every_variant() {
        let samples = sample_of_every_variant();
        assert_eq!(samples.len(), TAGS.len(), "one sample per TAGS entry");
        for (sample, info) in samples.iter().zip(TAGS.iter()) {
            assert_eq!(sample.tag(), info.tag, "TAGS order for {}", info.name);
            assert_eq!(sample.variant_name(), info.name);
            // The tag byte is the first byte on the wire.
            assert_eq!(sample.to_bytes()[0], info.tag, "{}", info.name);
            // The debug name of the variant matches the TAGS name.
            let debug = format!("{sample:?}");
            assert!(
                debug.starts_with(info.name),
                "{debug} should start with {}",
                info.name
            );
        }
    }

    #[test]
    fn tag_lookup_is_consistent() {
        for info in TAGS {
            assert_eq!(tag_info(info.tag), Some(info));
            assert_eq!(tag_by_name(info.name), Some(info));
        }
        assert_eq!(tag_info(0), None);
        assert_eq!(tag_info(200), None);
        assert_eq!(tag_by_name("NoSuchVariant"), None);
        // Tag bytes and names are unique.
        let mut tags: Vec<u8> = TAGS.iter().map(|t| t.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), TAGS.len());
    }

    #[test]
    fn roundtrip_synopsis_batch() {
        let node = NodeId(3);
        let window = WindowId(9);
        roundtrip(Message::SynopsisBatch {
            node,
            window,
            synopses: (0..5)
                .map(|i| SliceSynopsis {
                    id: SliceId {
                        node,
                        window,
                        index: i,
                    },
                    first: -100 + i as i64,
                    last: i as i64 * 10,
                    count: 150,
                    total_slices: 5,
                })
                .collect(),
        });
        roundtrip(Message::SynopsisBatch {
            node,
            window,
            synopses: vec![],
        });
    }

    #[test]
    fn roundtrip_candidate_request() {
        roundtrip(Message::CandidateRequest {
            window: WindowId(1),
            slices: vec![0, 7, 42],
        });
        roundtrip(Message::CandidateRequest {
            window: WindowId(u64::MAX),
            slices: vec![],
        });
    }

    #[test]
    fn roundtrip_candidate_reply() {
        roundtrip(Message::CandidateReply {
            node: NodeId(1),
            window: WindowId(2),
            slices: vec![
                (0, sample_run(10)),
                (3, SharedRun::empty()),
                (4, sample_run(1)),
            ],
        });
    }

    #[test]
    fn roundtrip_event_batch() {
        roundtrip(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: true,
            events: sample_events(100),
        });
        roundtrip(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: vec![],
        });
    }

    #[test]
    fn roundtrip_digest_batch() {
        roundtrip(Message::DigestBatch {
            node: NodeId(2),
            window: WindowId(5),
            count: 1000,
            compression: 100.0,
            centroids: vec![
                Centroid {
                    mean: -5.5,
                    weight: 10,
                },
                Centroid {
                    mean: 0.0,
                    weight: 980,
                },
                Centroid {
                    mean: 99.25,
                    weight: 10,
                },
            ],
        });
    }

    #[test]
    fn roundtrip_control_messages() {
        roundtrip(Message::GammaUpdate { gamma: 10_000 });
        roundtrip(Message::WindowResult {
            window: WindowId(7),
            value: -42,
            total_events: 1_000_000,
        });
        roundtrip(Message::StreamEnd {
            node: NodeId(99),
            late_events: 12345,
        });
    }

    #[test]
    fn roundtrip_sketch_batch() {
        roundtrip(Message::SketchBatch {
            node: NodeId(4),
            window: WindowId(11),
            count: 1000,
            min: -3.5,
            max: 999.0,
            items: vec![(-3.5, 1), (0.25, 16), (999.0, 4)],
        });
        roundtrip(Message::SketchBatch {
            node: NodeId(0),
            window: WindowId(0),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            items: vec![],
        });
    }

    #[test]
    fn roundtrip_retry_messages() {
        roundtrip(Message::ResendWindow {
            window: WindowId(12),
            attempt: 1,
        });
        roundtrip(Message::ResendWindow {
            window: WindowId(u64::MAX),
            attempt: u32::MAX,
        });
        roundtrip(Message::CandidateRetry {
            window: WindowId(3),
            slices: vec![0, 5, 9],
            attempt: 2,
        });
        roundtrip(Message::CandidateRetry {
            window: WindowId(0),
            slices: vec![],
            attempt: 1,
        });
    }

    #[test]
    fn roundtrip_membership_messages() {
        roundtrip(Message::JoinRequest {
            node: NodeId(7),
            window: WindowId(3),
        });
        roundtrip(Message::JoinAccept {
            node: NodeId(7),
            epoch: 2,
            window: WindowId(3),
            gamma: 16,
        });
        roundtrip(Message::LeaveAnnounce {
            node: NodeId(2),
            window: WindowId(5),
        });
        roundtrip(Message::DrainComplete {
            node: NodeId(2),
            epoch: 3,
        });
        roundtrip(Message::EpochSwitch {
            epoch: 3,
            window: WindowId(5),
            joined: vec![NodeId(4), NodeId(5)],
            left: vec![NodeId(2)],
        });
        roundtrip(Message::EpochSwitch {
            epoch: u64::MAX,
            window: WindowId(u64::MAX),
            joined: vec![],
            left: vec![],
        });
    }

    #[test]
    fn membership_messages_are_free_control_traffic() {
        // Reconfiguration traffic shows up in byte counters but never in
        // the paper's events-on-the-wire cost model — like the retry
        // messages above.
        let switch = Message::EpochSwitch {
            epoch: 1,
            window: WindowId(4),
            joined: vec![NodeId(4)],
            left: vec![NodeId(0)],
        };
        assert_eq!(switch.event_units(), 0);
        assert_eq!(switch.encoded_len(), 1 + 8 + 8 + 4 + 4 + 4 + 4);
        let join = Message::JoinRequest {
            node: NodeId(4),
            window: WindowId(4),
        };
        assert_eq!(join.event_units(), 0);
        assert_eq!(join.encoded_len(), 13);
        // Membership control routes through relay envelopes unchanged.
        roundtrip(Message::Routed {
            dest: NodeId(4),
            inner: Box::new(switch),
        });
        roundtrip(Message::Routed {
            dest: NodeId(4),
            inner: Box::new(Message::DrainComplete {
                node: NodeId(4),
                epoch: 2,
            }),
        });
    }

    #[test]
    fn retry_messages_are_free_control_traffic() {
        // Retry traffic must show up in byte counters but never in the
        // paper's events-on-the-wire cost model.
        let resend = Message::ResendWindow {
            window: WindowId(1),
            attempt: 1,
        };
        let retry = Message::CandidateRetry {
            window: WindowId(1),
            slices: vec![1, 2, 3],
            attempt: 1,
        };
        assert_eq!(resend.event_units(), 0);
        assert_eq!(retry.event_units(), 0);
        assert_eq!(resend.encoded_len(), 13);
        assert_eq!(retry.encoded_len(), 17 + 12);
    }

    #[test]
    fn retry_messages_route_through_envelopes() {
        roundtrip(Message::Routed {
            dest: NodeId(4),
            inner: Box::new(Message::ResendWindow {
                window: WindowId(2),
                attempt: 3,
            }),
        });
        roundtrip(Message::Routed {
            dest: NodeId(9),
            inner: Box::new(Message::CandidateRetry {
                window: WindowId(2),
                slices: vec![7],
                attempt: 1,
            }),
        });
    }

    #[test]
    fn roundtrip_routed_envelope() {
        roundtrip(Message::Routed {
            dest: NodeId(7),
            inner: Box::new(Message::CandidateRequest {
                window: WindowId(3),
                slices: vec![1, 4],
            }),
        });
        roundtrip(Message::Routed {
            dest: NodeId(0),
            inner: Box::new(Message::GammaUpdate { gamma: 128 }),
        });
    }

    #[test]
    fn routed_envelope_costs_five_bytes_and_no_events() {
        let inner = Message::GammaUpdate { gamma: 9 };
        let routed = Message::Routed {
            dest: NodeId(1),
            inner: Box::new(inner.clone()),
        };
        assert_eq!(routed.encoded_len(), inner.encoded_len() + 5);
        assert_eq!(routed.event_units(), inner.event_units());
    }

    #[test]
    fn nested_routed_envelope_is_rejected() {
        let nested = Message::Routed {
            dest: NodeId(1),
            inner: Box::new(Message::Routed {
                dest: NodeId(2),
                inner: Box::new(Message::GammaUpdate { gamma: 3 }),
            }),
        };
        let bytes = nested.to_bytes();
        assert!(matches!(Message::decode(&bytes), Err(WireError::BadTag(_))));
    }

    #[test]
    fn extreme_values_roundtrip() {
        roundtrip(Message::EventBatch {
            node: NodeId(u32::MAX),
            window: WindowId(u64::MAX),
            sorted: false,
            events: vec![
                Event::new(i64::MIN, u64::MAX, u64::MAX),
                Event::new(i64::MAX, 0, 0),
            ],
        });
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert_eq!(Message::decode(&[0xFF]), Err(WireError::BadTag(0xFF)));
    }

    #[test]
    fn decode_rejects_truncation_at_every_point() {
        let msg = Message::CandidateReply {
            node: NodeId(1),
            window: WindowId(2),
            slices: vec![(0, sample_run(3))],
        };
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            let err = Message::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadLength(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = Message::GammaUpdate { gamma: 5 }.to_bytes().to_vec();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn decode_rejects_implausible_count() {
        let mut buf = BytesMut::new();
        buf.put_u8(4); // EventBatch
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u8(0);
        buf.put_u32_le(u32::MAX); // absurd event count
        assert!(matches!(
            Message::decode(&buf),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn lying_counts_fail_before_allocating() {
        // A count that passes the MAX_ELEMS sanity check but promises more
        // records than the frame carries must be rejected by the up-front
        // length validation — the old capped-capacity decode loops grew
        // until they hit the truncation mid-loop.
        let lying = 1_000_000u32; // < MAX_ELEMS, >> remaining bytes
        for (tag, prefix) in [
            (TAG_SYNOPSIS_BATCH, &[4, 8][..]),        // node, window
            (TAG_CANDIDATE_REQUEST, &[8][..]),        // window
            (TAG_CANDIDATE_REPLY, &[4, 8][..]),       // node, window
            (TAG_DIGEST_BATCH, &[4, 8, 8, 8][..]),    // node, window, count, δ
            (TAG_SKETCH_BATCH, &[4, 8, 8, 8, 8][..]), // node, window, count, min, max
        ] {
            let mut buf = BytesMut::new();
            buf.put_u8(tag);
            for width in prefix {
                match width {
                    4 => buf.put_u32_le(1),
                    _ => buf.put_u64_le(1),
                }
            }
            buf.put_u32_le(lying);
            assert_eq!(
                Message::decode(&buf),
                Err(WireError::Truncated),
                "tag {tag}"
            );
        }
        // EpochSwitch: both the joined and the left list count.
        for lie_in_left in [false, true] {
            let mut buf = BytesMut::new();
            buf.put_u8(TAG_EPOCH_SWITCH);
            buf.put_u64_le(1); // epoch
            buf.put_u64_le(1); // window
            if lie_in_left {
                buf.put_u32_le(1); // joined count
                buf.put_u32_le(7); // joined[0]
                buf.put_u32_le(lying);
            } else {
                buf.put_u32_le(lying);
            }
            assert_eq!(Message::decode(&buf), Err(WireError::Truncated));
        }
        // CandidateRetry carries its count after the attempt epoch.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_CANDIDATE_RETRY);
        buf.put_u64_le(1); // window
        buf.put_u32_le(1); // attempt
        buf.put_u32_le(lying);
        assert_eq!(Message::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn event_units_follow_paper_cost_model() {
        let node = NodeId(0);
        let window = WindowId(0);
        let syn = Message::SynopsisBatch {
            node,
            window,
            synopses: vec![
                SliceSynopsis {
                    id: SliceId {
                        node,
                        window,
                        index: 0
                    },
                    first: 0,
                    last: 1,
                    count: 10,
                    total_slices: 2,
                };
                4
            ],
        };
        assert_eq!(syn.event_units(), 8); // 2 per synopsis
        let batch = Message::EventBatch {
            node,
            window,
            sorted: false,
            events: sample_events(7),
        };
        assert_eq!(batch.event_units(), 7);
        let reply = Message::CandidateReply {
            node,
            window,
            slices: vec![(0, sample_run(4)), (1, sample_run(6))],
        };
        assert_eq!(reply.event_units(), 10);
        assert_eq!(Message::GammaUpdate { gamma: 2 }.event_units(), 0);
    }

    #[test]
    fn encode_into_vec_matches_bytesmut_encoding() {
        let msgs = [
            Message::CandidateReply {
                node: NodeId(1),
                window: WindowId(2),
                slices: vec![(0, sample_run(10)), (3, SharedRun::empty())],
            },
            Message::EventBatch {
                node: NodeId(0),
                window: WindowId(9),
                sorted: true,
                events: sample_events(50),
            },
            Message::GammaUpdate { gamma: 77 },
        ];
        for msg in msgs {
            let mut reference = BytesMut::new();
            msg.encode(&mut reference);
            let mut pooled = vec![0xAAu8; 3]; // pre-existing content is appended to
            msg.encode_into(&mut pooled);
            assert_eq!(&pooled[..3], &[0xAA; 3]);
            assert_eq!(
                &pooled[3..],
                &reference[..],
                "byte-for-byte identical encodings"
            );
        }
    }

    #[test]
    fn synopsis_batch_is_tiny_compared_to_event_batch() {
        // The point of Dema: 1000 events ≈ 24 KB raw, but one synopsis ≈ 32 B.
        let node = NodeId(0);
        let window = WindowId(0);
        let events = Message::EventBatch {
            node,
            window,
            sorted: false,
            events: sample_events(1000),
        };
        let synopses = Message::SynopsisBatch {
            node,
            window,
            synopses: vec![SliceSynopsis {
                id: SliceId {
                    node,
                    window,
                    index: 0,
                },
                first: 0,
                last: 999,
                count: 1000,
                total_slices: 1,
            }],
        };
        assert!(synopses.encoded_len() * 100 < events.encoded_len());
    }
}
