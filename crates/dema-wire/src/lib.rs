#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dema-wire
//!
//! Hand-rolled binary wire format for every message of the Dema cluster
//! protocol, plus length-prefixed framing for stream transports.
//!
//! A custom codec instead of a serialization framework for two reasons:
//! the network-cost experiments (Figure 6) need *exact*, deterministic
//! on-wire byte counts, and the protocol is small enough that an explicit
//! format is simpler than a dependency. All integers are little-endian and
//! fixed-width; every message starts with a one-byte tag.
//!
//! * [`message::Message`] — the protocol: synopsis batches, candidate
//!   requests/replies, raw event batches (centralized & decentralized-sort
//!   baselines), t-digest batches (Tdigest baseline), γ updates, window
//!   results, and stream-end markers.
//! * [`frame`] — `u32` length-prefixed framing over any `Read`/`Write`
//!   (used by the TCP transport in `dema-net`). Frames are assembled in
//!   buffers recycled through [`pool::BufferPool`], so steady-state sends
//!   don't touch the allocator, and each frame reaches the writer as one
//!   contiguous `write_all`.
//! * [`pool`] — the capped free-list of frame buffers.

pub mod frame;
pub mod message;
pub mod pool;

pub use frame::{read_frame, write_frame};
pub use message::{tag_by_name, tag_info, Message, TagInfo, WireError, TAGS};
pub use pool::BufferPool;
