//! Length-prefixed framing over byte streams.
//!
//! Each frame is a little-endian `u32` payload length followed by exactly
//! one encoded [`Message`](crate::message::Message). Used by the TCP
//! transport; the in-memory transport moves decoded messages directly and
//! only uses `encoded_len` for byte accounting.

use std::io::{self, Read, Write};

use crate::message::{Message, WireError};
use crate::pool::BufferPool;

/// Frames larger than this are treated as corruption.
pub const MAX_FRAME: u32 = 1 << 30;

/// Errors while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(io::Error),
    /// Payload failed to decode.
    Wire(WireError),
    /// Length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The stream ended cleanly between frames.
    Eof,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Wire(e) => write!(f, "decode error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Eof => write!(f, "end of stream"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

/// Write one framed message. Returns the total bytes written (payload + 4).
///
/// The frame (length prefix + payload) is assembled in a buffer recycled
/// through the process-wide [`BufferPool`] and handed to the writer as one
/// contiguous `write_all` — on an unbuffered socket that is a single
/// syscall per frame, and the steady state allocates nothing.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<u64> {
    write_frame_pooled(w, msg, BufferPool::global())
}

/// [`write_frame`] drawing its scratch buffer from a caller-chosen pool.
pub fn write_frame_pooled<W: Write>(
    w: &mut W,
    msg: &Message,
    pool: &std::sync::Arc<BufferPool>,
) -> io::Result<u64> {
    let _phase = dema_core::alloc::enter_phase(dema_core::alloc::Phase::Encode);
    let mut buf = pool.acquire();
    encode_frame_into(msg, &mut buf);
    w.write_all(&buf)?;
    Ok(buf.len() as u64)
}

/// Append one complete frame (length prefix + encoded payload) to `buf`.
pub fn encode_frame_into(msg: &Message, buf: &mut Vec<u8>) {
    let len = msg.encoded_len() as u32;
    buf.reserve(len as usize + 4);
    buf.extend_from_slice(&len.to_le_bytes());
    msg.encode_into(buf);
}

/// Read one framed message. Returns the message and the total bytes read.
///
/// A clean EOF *before* the length prefix yields [`FrameError::Eof`]; EOF in
/// the middle of a frame is an [`FrameError::Io`] error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Message, u64), FrameError> {
    read_frame_pooled(r, BufferPool::global())
}

/// [`read_frame`] drawing its payload buffer from a caller-chosen pool.
///
/// The payload scratch lives only for the duration of the decode and goes
/// straight back to the pool, so steady-state reads allocate nothing
/// beyond the decoded message itself.
// hot-path: frame-io
pub fn read_frame_pooled<R: Read>(
    r: &mut R,
    pool: &std::sync::Arc<BufferPool>,
) -> Result<(Message, u64), FrameError> {
    let _phase = dema_core::alloc::enter_phase(dema_core::alloc::Phase::Decode);
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF from mid-frame EOF.
    match r.read(&mut len_buf)? {
        0 => return Err(FrameError::Eof),
        n if n < 4 => r.read_exact(&mut len_buf[n..])?,
        _ => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = pool.acquire();
    payload.resize(len as usize, 0);
    r.read_exact(&mut payload)?;
    let msg = Message::decode(&payload)?;
    Ok((msg, u64::from(len) + 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_core::event::{Event, NodeId, WindowId};

    fn sample() -> Message {
        Message::EventBatch {
            node: NodeId(1),
            window: WindowId(2),
            sorted: true,
            events: (0..10).map(|i| Event::new(i, i as u64, i as u64)).collect(),
        }
    }

    #[test]
    fn roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &sample()).unwrap();
        assert_eq!(written as usize, buf.len());
        let mut cursor = &buf[..];
        let (msg, read) = read_frame(&mut cursor).unwrap();
        assert_eq!(msg, sample());
        assert_eq!(read, written);
        assert!(cursor.is_empty());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        let msgs = vec![
            sample(),
            Message::GammaUpdate { gamma: 7 },
            Message::StreamEnd {
                node: NodeId(0),
                late_events: 0,
            },
        ];
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = &buf[..];
        for expected in &msgs {
            let (msg, _) = read_frame(&mut cursor).unwrap();
            assert_eq!(&msg, expected);
        }
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));
    }

    #[test]
    fn pooled_writes_reuse_the_scratch_buffer() {
        let pool = BufferPool::new();
        let mut out = Vec::new();
        write_frame_pooled(&mut out, &sample(), &pool).unwrap();
        assert_eq!(pool.spare_count(), 1, "buffer returned after the write");
        let first_len = out.len();
        write_frame_pooled(&mut out, &sample(), &pool).unwrap();
        assert_eq!(pool.spare_count(), 1);
        assert_eq!(out.len(), 2 * first_len);
        // Both frames decode back.
        let mut cursor = &out[..];
        assert_eq!(read_frame(&mut cursor).unwrap().0, sample());
        assert_eq!(read_frame(&mut cursor).unwrap().0, sample());
    }

    #[test]
    fn encode_frame_into_appends_prefix_and_payload() {
        let msg = sample();
        let mut buf = vec![0xEE]; // existing bytes stay untouched
        encode_frame_into(&msg, &mut buf);
        assert_eq!(buf[0], 0xEE);
        let len = u32::from_le_bytes(buf[1..5].try_into().unwrap());
        assert_eq!(len as usize, msg.encoded_len());
        assert_eq!(Message::decode(&buf[5..]).unwrap(), msg);
    }

    #[test]
    fn clean_eof_is_distinguished() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Eof)));
    }

    #[test]
    fn midframe_eof_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let mut cursor = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0xFF); // bad tag
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Wire(_))));
    }
}
