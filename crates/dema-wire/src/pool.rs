//! A capped free-list pool of frame buffers.
//!
//! Every framed send needs a scratch `Vec<u8>` for the length prefix plus
//! the encoded message. Allocating one per frame puts an allocator
//! round-trip on the per-message hot path; this pool recycles a small,
//! bounded set of buffers instead. Buffers are handed out as [`PooledBuf`]
//! guards that return themselves to the pool on drop.
//!
//! The pool is deliberately simple: a ranked [`dema_core::sync::Mutex`]
//! (rank `wire.buf_pool`, see DESIGN.md §8) around a `Vec` of spare
//! buffers. The critical section is a push/pop, far cheaper than the
//! allocation it replaces, and the cap bounds both the number of retained
//! buffers and the capacity any retained buffer may keep (so one jumbo
//! frame cannot pin a jumbo allocation forever).

use dema_core::sync::{rank, Mutex};
use std::sync::{Arc, OnceLock};

/// Most spare buffers the pool retains; excess buffers are simply freed.
const MAX_POOLED: usize = 16;

/// Largest capacity (bytes) a buffer may keep when returned to the pool.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

/// A bounded free-list of reusable `Vec<u8>` frame buffers.
#[derive(Debug)]
pub struct BufferPool {
    spares: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// A fresh, empty pool.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            spares: Mutex::new(rank::WIRE_BUF_POOL, Vec::new()),
        })
    }

    /// The process-wide pool shared by all transports.
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(BufferPool::new)
    }

    /// Take a cleared buffer from the pool (or allocate a fresh one).
    pub fn acquire(self: &Arc<BufferPool>) -> PooledBuf {
        let buf = self.spares.lock().pop().unwrap_or_default();
        PooledBuf {
            buf,
            pool: Arc::clone(self),
        }
    }

    /// Number of spare buffers currently pooled (diagnostic).
    pub fn spare_count(&self) -> usize {
        self.spares.lock().len()
    }

    fn give_back(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_RETAINED_CAPACITY {
            return; // don't pin oversized allocations
        }
        buf.clear();
        let mut spares = self.spares.lock();
        if spares.len() < MAX_POOLED {
            spares.push(buf);
        }
    }
}

/// A pooled buffer guard; dereferences to the underlying `Vec<u8>` and
/// returns it to its pool when dropped.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquired_buffer_starts_empty() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        assert!(b.is_empty());
        b.extend_from_slice(&[1, 2, 3]);
        drop(b);
        let b2 = pool.acquire();
        assert!(b2.is_empty(), "recycled buffer must be cleared");
    }

    #[test]
    fn buffers_are_recycled() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        b.reserve(4096);
        let ptr = b.as_ptr();
        drop(b);
        assert_eq!(pool.spare_count(), 1);
        let b2 = pool.acquire();
        assert_eq!(b2.as_ptr(), ptr, "same allocation handed back out");
        assert_eq!(pool.spare_count(), 0);
    }

    #[test]
    fn pool_is_capped() {
        let pool = BufferPool::new();
        let held: Vec<PooledBuf> = (0..MAX_POOLED + 8).map(|_| pool.acquire()).collect();
        drop(held);
        assert!(pool.spare_count() <= MAX_POOLED);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        b.reserve(MAX_RETAINED_CAPACITY + 1);
        drop(b);
        assert_eq!(pool.spare_count(), 0);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let pool = BufferPool::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let mut b = pool.acquire();
                        b.extend_from_slice(&i.to_le_bytes());
                        assert_eq!(b.len(), 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.spare_count() <= MAX_POOLED);
    }
}
