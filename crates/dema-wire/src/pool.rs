//! A capped free-list pool of frame buffers.
//!
//! Every framed send needs a scratch `Vec<u8>` for the length prefix plus
//! the encoded message. Allocating one per frame puts an allocator
//! round-trip on the per-message hot path; this pool recycles a small,
//! bounded set of buffers instead. Buffers are handed out as [`PooledBuf`]
//! guards that return themselves to the pool on drop.
//!
//! The pool is deliberately simple: a ranked [`dema_core::sync::Mutex`]
//! (rank `wire.buf_pool`, see DESIGN.md §8) around a `Vec` of spare
//! buffers. The critical section is a push/pop, far cheaper than the
//! allocation it replaces, and the cap bounds both the number of retained
//! buffers and the capacity any retained buffer may keep (so one jumbo
//! frame cannot pin a jumbo allocation forever).

use dema_core::sync::{rank, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Most spare buffers the pool retains; excess buffers are simply freed.
const MAX_POOLED: usize = 16;

/// Largest capacity (bytes) a buffer may keep when returned to the pool.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

/// Cumulative acquire statistics of a [`BufferPool`].
///
/// `acquires == reuses + misses`; the steady-state expectation (checked by
/// the cluster alloc gate and surfaced on `RunReport.wire`) is that after
/// warmup every acquire is a reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers handed out, total.
    pub acquires: u64,
    /// Acquires satisfied from the spare list (no allocator traffic).
    pub reuses: u64,
    /// Acquires that fell through to a fresh buffer (pool empty or
    /// exhausted by concurrent holders).
    pub misses: u64,
}

impl PoolStats {
    /// Counter deltas since an `earlier` snapshot (saturating).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            acquires: self.acquires.saturating_sub(earlier.acquires),
            reuses: self.reuses.saturating_sub(earlier.reuses),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A bounded free-list of reusable `Vec<u8>` frame buffers.
#[derive(Debug)]
pub struct BufferPool {
    spares: Mutex<Vec<Vec<u8>>>,
    acquires: AtomicU64,
    reuses: AtomicU64,
}

impl BufferPool {
    /// A fresh, empty pool.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            spares: Mutex::new(rank::WIRE_BUF_POOL, Vec::new()),
            acquires: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        })
    }

    /// The process-wide pool shared by all transports.
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(BufferPool::new)
    }

    /// Take a cleared buffer from the pool (or allocate a fresh one).
    pub fn acquire(self: &Arc<BufferPool>) -> PooledBuf {
        let popped = self.spares.lock().pop();
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if popped.is_some() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        PooledBuf {
            buf: popped.unwrap_or_default(),
            pool: Arc::clone(self),
        }
    }

    /// Number of spare buffers currently pooled (diagnostic).
    pub fn spare_count(&self) -> usize {
        self.spares.lock().len()
    }

    /// Cumulative acquire/reuse/miss counters since pool creation.
    pub fn stats(&self) -> PoolStats {
        let acquires = self.acquires.load(Ordering::Relaxed);
        let reuses = self.reuses.load(Ordering::Relaxed);
        PoolStats {
            acquires,
            reuses,
            misses: acquires.saturating_sub(reuses),
        }
    }

    fn give_back(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_RETAINED_CAPACITY {
            return; // don't pin oversized allocations
        }
        buf.clear();
        let mut spares = self.spares.lock();
        if spares.len() < MAX_POOLED {
            spares.push(buf);
        }
    }
}

/// A pooled buffer guard; dereferences to the underlying `Vec<u8>` and
/// returns it to its pool when dropped.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquired_buffer_starts_empty() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        assert!(b.is_empty());
        b.extend_from_slice(&[1, 2, 3]);
        drop(b);
        let b2 = pool.acquire();
        assert!(b2.is_empty(), "recycled buffer must be cleared");
    }

    #[test]
    fn buffers_are_recycled() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        b.reserve(4096);
        let ptr = b.as_ptr();
        drop(b);
        assert_eq!(pool.spare_count(), 1);
        let b2 = pool.acquire();
        assert_eq!(b2.as_ptr(), ptr, "same allocation handed back out");
        assert_eq!(pool.spare_count(), 0);
    }

    #[test]
    fn pool_is_capped() {
        let pool = BufferPool::new();
        let held: Vec<PooledBuf> = (0..MAX_POOLED + 8).map(|_| pool.acquire()).collect();
        drop(held);
        assert!(pool.spare_count() <= MAX_POOLED);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        let mut b = pool.acquire();
        b.reserve(MAX_RETAINED_CAPACITY + 1);
        drop(b);
        assert_eq!(pool.spare_count(), 0);
    }

    #[test]
    fn reuse_rate_reaches_one_after_warmup() {
        // Simulate per-window frame traffic: one buffer in flight per
        // "window". The first acquire is a miss; every later window reuses
        // the recycled buffer, so the steady-state reuse rate is 100 %.
        let pool = BufferPool::new();
        for window in 0..64 {
            let mut b = pool.acquire();
            b.extend_from_slice(&[window as u8; 32]);
        }
        let stats = pool.stats();
        assert_eq!(stats.acquires, 64);
        assert_eq!(stats.misses, 1, "only the cold first window allocates");
        assert_eq!(stats.reuses, 63);
        assert_eq!(stats.acquires, stats.reuses + stats.misses);
    }

    #[test]
    fn exhausted_pool_falls_back_to_fresh_buffers() {
        // More simultaneous holders than MAX_POOLED: acquire never blocks
        // or fails, the overflow is served fresh and counted as misses.
        let pool = BufferPool::new();
        let held: Vec<PooledBuf> = (0..MAX_POOLED + 8).map(|_| pool.acquire()).collect();
        let stats = pool.stats();
        assert_eq!(stats.acquires, (MAX_POOLED + 8) as u64);
        assert_eq!(stats.misses, (MAX_POOLED + 8) as u64);
        assert_eq!(stats.reuses, 0);
        drop(held);
        // After the burst drains, the pool retains at most MAX_POOLED and
        // the next acquire is a reuse again.
        let b = pool.acquire();
        assert_eq!(pool.stats().reuses, 1);
        drop(b);
    }

    #[test]
    fn stats_since_subtracts_saturating() {
        let pool = BufferPool::new();
        drop(pool.acquire());
        let before = pool.stats();
        drop(pool.acquire());
        drop(pool.acquire());
        let delta = pool.stats().since(&before);
        assert_eq!(delta.acquires, 2);
        assert_eq!(delta.reuses, 2);
        assert_eq!(delta.misses, 0);
        assert_eq!(before.since(&pool.stats()), PoolStats::default());
    }

    #[test]
    fn concurrent_use_is_safe() {
        let pool = BufferPool::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let mut b = pool.acquire();
                        b.extend_from_slice(&i.to_le_bytes());
                        assert_eq!(b.len(), 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.spare_count() <= MAX_POOLED);
    }
}
