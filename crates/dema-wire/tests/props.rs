//! Property tests: every representable message survives an encode/decode
//! roundtrip, `encoded_len` is always exact, and corrupted buffers never
//! panic the decoder.

use proptest::collection::vec;
use proptest::prelude::*;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::slice::{SliceId, SliceSynopsis};
use dema_sketch::tdigest::Centroid;
use dema_wire::Message;

fn arb_event() -> impl Strategy<Value = Event> {
    (any::<i64>(), any::<u64>(), any::<u64>()).prop_map(|(value, ts, id)| Event { value, ts, id })
}

fn arb_synopsis(node: u32, window: u64) -> impl Strategy<Value = SliceSynopsis> {
    (
        any::<u32>(),
        any::<i64>(),
        any::<i64>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(move |(index, a, b, count, total_slices)| SliceSynopsis {
            id: SliceId {
                node: NodeId(node),
                window: WindowId(window),
                index,
            },
            first: a.min(b),
            last: a.max(b),
            count,
            total_slices,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    let node = any::<u32>();
    let window = any::<u64>();
    prop_oneof![
        (node, window).prop_flat_map(|(n, w)| {
            vec(arb_synopsis(n, w), 0..20).prop_map(move |synopses| Message::SynopsisBatch {
                node: NodeId(n),
                window: WindowId(w),
                synopses,
            })
        }),
        (window, vec(any::<u32>(), 0..20)).prop_map(|(w, slices)| Message::CandidateRequest {
            window: WindowId(w),
            slices
        }),
        (
            node,
            window,
            vec((any::<u32>(), vec(arb_event(), 0..30)), 0..5)
        )
            .prop_map(|(n, w, slices)| Message::CandidateReply {
                node: NodeId(n),
                window: WindowId(w),
                slices: slices.into_iter().map(|(i, ev)| (i, ev.into())).collect(),
            }),
        (node, window, any::<bool>(), vec(arb_event(), 0..100)).prop_map(
            |(n, w, sorted, events)| Message::EventBatch {
                node: NodeId(n),
                window: WindowId(w),
                sorted,
                events,
            }
        ),
        (
            node,
            window,
            any::<u64>(),
            10.0f64..1000.0,
            vec((any::<f64>(), 1u64..u64::MAX), 0..30)
        )
            .prop_map(|(n, w, count, compression, raw)| {
                let mut centroids: Vec<Centroid> = raw
                    .into_iter()
                    .filter(|(m, _)| m.is_finite())
                    .map(|(mean, weight)| Centroid { mean, weight })
                    .collect();
                centroids.sort_by(|a, b| a.mean.total_cmp(&b.mean));
                Message::DigestBatch {
                    node: NodeId(n),
                    window: WindowId(w),
                    count,
                    compression,
                    centroids,
                }
            }),
        any::<u64>().prop_map(|gamma| Message::GammaUpdate { gamma }),
        (window, any::<i64>(), any::<u64>()).prop_map(|(w, value, total_events)| {
            Message::WindowResult {
                window: WindowId(w),
                value,
                total_events,
            }
        }),
        (node, any::<u64>()).prop_map(|(n, late_events)| Message::StreamEnd {
            node: NodeId(n),
            late_events
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_any_message(msg in arb_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len mismatch");
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn truncation_never_panics_and_never_succeeds(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic(data in vec(any::<u8>(), 0..512)) {
        // Decoding arbitrary garbage must return an error or a message, never panic.
        let _ = Message::decode(&data);
    }

    #[test]
    fn bitflips_never_panic(msg in arb_message(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = msg.to_bytes().to_vec();
        if !bytes.is_empty() {
            let mut corrupted = bytes.clone();
            let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
            corrupted[pos] ^= 1 << bit;
            let _ = Message::decode(&corrupted); // must not panic
        }
    }

    #[test]
    fn framing_roundtrip(msgs in vec(arb_message(), 0..10)) {
        let mut buf = Vec::new();
        for m in &msgs {
            dema_wire::write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = &buf[..];
        for expected in &msgs {
            let (got, _) = dema_wire::read_frame(&mut cursor).unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(matches!(
            dema_wire::read_frame(&mut cursor),
            Err(dema_wire::frame::FrameError::Eof)
        ));
    }
}
