//! Event-time streaming mode: locals window raw interleaved streams with
//! watermarks; results must match the pre-windowed runner on the same data.

use dema_cluster::config::{ClusterConfig, EngineKind};
use dema_cluster::runner::{run_cluster, run_cluster_streaming};
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_gen::SoccerGenerator;

fn streams(n: usize, seconds: usize, rate: u64) -> Vec<Vec<Event>> {
    (0..n)
        .map(|i| {
            SoccerGenerator::new(500 + i as u64, 1, rate, 0)
                .take(seconds * rate as usize)
                .collect()
        })
        .collect()
}

#[test]
fn streaming_matches_prewindowed_for_all_engines() {
    let raw = streams(3, 3, 2_000);
    let windowed: Vec<Vec<Vec<Event>>> = (0..3)
        .map(|i| SoccerGenerator::new(500 + i as u64, 1, 2_000, 0).take_windows(3, 1000))
        .collect();
    for engine in [
        ClusterConfig::dema_fixed(128, Quantile::MEDIAN).engine,
        EngineKind::Centralized,
        EngineKind::DecSort,
    ] {
        let cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let streaming = run_cluster_streaming(&cfg, raw.clone(), 1000, 0).unwrap();
        let pre = run_cluster(&cfg, windowed.clone()).unwrap();
        assert_eq!(
            streaming.values(),
            pre.values(),
            "engine {}",
            engine.label()
        );
        assert_eq!(streaming.late_events, 0);
    }
}

#[test]
fn late_events_are_dropped_and_counted() {
    // In-order stream with a few events stamped far in the past.
    let mut events: Vec<Event> = (0..5000u64)
        .map(|i| Event::new((i % 997) as i64, i, i))
        .collect();
    // Inject events whose ts is 3 windows behind where the stream has read.
    events.insert(4500, Event::new(42, 100, 99_991));
    events.insert(4501, Event::new(43, 200, 99_992));
    let cfg = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    let report = run_cluster_streaming(&cfg, vec![events], 1000, 0).unwrap();
    assert_eq!(report.late_events, 2);
    assert_eq!(report.outcomes.len(), 5);
    assert!(report.values().iter().all(Option::is_some));
}

#[test]
fn allowed_lateness_admits_out_of_order_events() {
    // Shuffle each 100ms chunk locally: out-of-order but bounded by 100ms.
    let mut events: Vec<Event> = (0..5000u64)
        .map(|i| Event::new((i % 997) as i64, i, i))
        .collect();
    for chunk in events.chunks_mut(100) {
        chunk.reverse();
    }
    let cfg = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    let strict = run_cluster_streaming(&cfg, vec![events.clone()], 1000, 0).unwrap();
    let lenient = run_cluster_streaming(&cfg, vec![events.clone()], 1000, 200).unwrap();
    assert!(
        strict.late_events > 0,
        "reversed chunks must trip a zero-slack watermark"
    );
    assert_eq!(lenient.late_events, 0);
    // With enough lateness allowance the results equal the in-order run.
    let mut in_order = events;
    in_order.sort_by_key(|e| e.ts);
    let reference = run_cluster_streaming(&cfg, vec![in_order], 1000, 0).unwrap();
    assert_eq!(lenient.values(), reference.values());
}

#[test]
fn nodes_with_gaps_report_empty_windows() {
    // Node 0 active in seconds 0 and 4; node 1 only in second 2.
    let mk = |start: u64, n: u64, id0: u64| -> Vec<Event> {
        (0..n)
            .map(|i| Event::new(i as i64, start + i, id0 + i))
            .collect()
    };
    let node0: Vec<Event> = mk(0, 500, 0)
        .into_iter()
        .chain(mk(4000, 500, 10_000))
        .collect();
    let node1 = mk(2000, 500, 20_000);
    let cfg = ClusterConfig::dema_fixed(16, Quantile::MEDIAN);
    let report = run_cluster_streaming(&cfg, vec![node0, node1], 1000, 0).unwrap();
    assert_eq!(report.outcomes.len(), 5);
    let values = report.values();
    assert!(values[0].is_some());
    assert!(values[1].is_none());
    assert!(values[2].is_some());
    assert!(values[3].is_none());
    assert!(values[4].is_some());
}

#[test]
fn empty_streams_rejected() {
    let cfg = ClusterConfig::dema_fixed(16, Quantile::MEDIAN);
    assert!(run_cluster_streaming(&cfg, vec![vec![], vec![]], 1000, 0).is_err());
}
