//! Membership churn end-to-end: epoch-based join/leave/drain
//! reconfiguration mid-stream (DESIGN.md §14).
//!
//! The acceptance scenario starts 4 locals, joins 4 more at the window-3
//! boundary, and drains 2 of them at the window-6 boundary. Every window
//! must complete exactly under exactly one epoch, the leavers must drain
//! cleanly (drained, not dead), and the post-churn steady state must be
//! bit-identical — window values and per-node data-plane traffic — to a
//! fresh run that starts with the final membership.

use proptest::prelude::*;

use dema_cluster::config::{
    ClusterConfig, EngineKind, MembershipChange, MembershipPlan, NodeFaults, Resilience,
    TransportKind,
};
use dema_cluster::report::{EpochStats, RunReport};
use dema_cluster::runner::run_cluster;
use dema_cluster::EpochLedger;
use dema_core::coordinator::quantile_ground_truth;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_net::fault::FaultPlan;

/// Interleaved inputs (as in the chaos suite): node `n`'s window `w` holds
/// `w·10000 + 3i + n`, so every node owns values throughout each window's
/// range and therefore owns candidate slices near any quantile.
fn interleaved_inputs(nodes: usize, windows: usize, per_window: usize) -> Vec<Vec<Vec<Event>>> {
    (0..nodes)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..per_window)
                        .map(|i| {
                            Event::new(
                                (w * 10_000 + 3 * i + n) as i64,
                                w as u64,
                                (w * per_window + i) as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The acceptance plan: 8 node ids; {0,1,2,3} found the cluster,
/// {4,5,6,7} join at window 3, {6,7} drain at window 6.
fn acceptance_plan() -> MembershipPlan {
    MembershipPlan {
        changes: vec![
            MembershipChange {
                window: 3,
                joins: vec![4, 5, 6, 7],
                leaves: vec![],
            },
            MembershipChange {
                window: 6,
                joins: vec![],
                leaves: vec![6, 7],
            },
        ],
    }
}

fn churn_config(plan: MembershipPlan) -> ClusterConfig {
    let mut cfg = ClusterConfig::dema_fixed(8, Quantile::MEDIAN);
    cfg.membership = plan;
    cfg
}

/// Per-epoch observables the protocol fixes deterministically: everything
/// in [`EpochStats`] except the wall-clock switch latency.
fn epoch_sig(report: &RunReport) -> Vec<EpochStats> {
    report
        .epochs
        .iter()
        .map(|e| EpochStats {
            switch_latency_us: 0,
            ..e.clone()
        })
        .collect()
}

/// Sort-oracle value of one window over the given members' inputs.
fn oracle(inputs: &[Vec<Vec<Event>>], members: &[u32], w: usize, q: Quantile) -> Option<i64> {
    let per_node: Vec<Vec<Event>> = members
        .iter()
        .map(|&n| inputs[n as usize][w].clone())
        .collect();
    quantile_ground_truth(&per_node, q).ok().map(|e| e.value)
}

/// Acceptance: the churn scenario completes with every window exact, the
/// leavers drained (not dead), per-window values matching the sort oracle
/// over each window's epoch members, and the post-churn steady state
/// bit-identical — values and per-node traffic — to a fresh 6-local run.
#[test]
fn churn_scenario_matches_fresh_run_after_drain() {
    let (windows, per_window) = (9usize, 60usize);
    let inputs = interleaved_inputs(8, windows, per_window);
    let cfg = churn_config(acceptance_plan());
    let report = run_cluster(&cfg, inputs.clone()).expect("churn run");
    let ledger = EpochLedger::from_plan(8, &cfg.membership).unwrap();

    assert_eq!(report.outcomes.len(), windows);
    assert_eq!(report.drained_nodes, vec![6, 7], "leavers drain cleanly");
    assert_eq!(report.dead_nodes, Vec::<u32>::new(), "no death verdicts");
    assert!(report.fault_stats.is_clean(), "clean drains stay clean");
    for (w, outcome) in report.outcomes.iter().enumerate() {
        assert!(outcome.degraded.is_none(), "window {w} must be exact");
        assert_eq!(
            outcome.epoch,
            ledger.epoch_of(w as u64),
            "window {w} epoch attribution"
        );
        assert_eq!(
            outcome.value,
            oracle(&inputs, ledger.members_of(w as u64), w, Quantile::MEDIAN),
            "window {w} value vs membership oracle"
        );
        assert_eq!(
            outcome.total_events,
            (ledger.members_of(w as u64).len() * per_window) as u64,
            "window {w} global size counts exactly its epoch's members"
        );
    }

    // Epoch ledger surfaced in the report: three dense epochs with the
    // staged memberships, every window attributed to exactly one of them.
    assert_eq!(report.epochs.len(), 3);
    for (i, e) in report.epochs.iter().enumerate() {
        assert_eq!(e.epoch, i as u64, "epochs must be dense from 0");
        assert_eq!(e.windows_completed, 3);
        assert_eq!(e.degraded_windows, 0);
    }
    assert_eq!(report.epochs[0].members, vec![0, 1, 2, 3]);
    assert_eq!(report.epochs[1].members, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(report.epochs[1].joined, vec![4, 5, 6, 7]);
    assert_eq!(report.epochs[1].handoffs, 4);
    assert_eq!(report.epochs[2].members, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(report.epochs[2].left, vec![6, 7]);
    assert_eq!(report.epochs[2].handoffs, 2);

    // Post-churn steady state ≡ fresh run with the final membership: feed
    // a fixed 6-local cluster the same windows the last epoch computed.
    let fresh_inputs: Vec<Vec<Vec<Event>>> =
        (0..6).map(|n| inputs[n][6..windows].to_vec()).collect();
    let fresh_cfg = ClusterConfig::dema_fixed(8, Quantile::MEDIAN);
    let fresh = run_cluster(&fresh_cfg, fresh_inputs).expect("fresh run");
    for k in 0..windows - 6 {
        assert_eq!(
            report.outcomes[6 + k].value,
            fresh.outcomes[k].value,
            "churn window {} vs fresh window {k}",
            6 + k
        );
        assert_eq!(
            report.outcomes[6 + k].total_events,
            fresh.outcomes[k].total_events
        );
    }
    assert_eq!(fresh.epochs.len(), 1, "fixed membership is one epoch");
    assert_eq!(
        report.epochs[2].per_node, fresh.epochs[0].per_node,
        "post-churn per-node traffic must be bit-identical to the fresh run"
    );
}

/// Determinism: the same churn schedule is bit-identical — values, epoch
/// accounting, per-node traffic — across sort-thread budgets 1 and 4.
#[test]
fn churn_is_bit_identical_across_thread_counts() {
    let inputs = interleaved_inputs(8, 9, 60);
    let run_at = |threads: usize| {
        let mut cfg = churn_config(acceptance_plan());
        cfg.threads = Some(threads);
        run_cluster(&cfg, inputs.clone()).expect("churn run")
    };
    let serial = run_at(1);
    let parallel = run_at(4);
    assert_eq!(serial.values(), parallel.values());
    assert_eq!(serial.per_node_traffic, parallel.per_node_traffic);
    assert_eq!(serial.control_traffic, parallel.control_traffic);
    assert_eq!(epoch_sig(&serial), epoch_sig(&parallel));
    assert_eq!(serial.drained_nodes, parallel.drained_nodes);
}

/// Determinism across transports: mem channels and loopback TCP must
/// produce the same values and the same per-epoch accounting (receive-side
/// counters are transport-independent by construction).
#[test]
fn churn_is_identical_across_transports() {
    let inputs = interleaved_inputs(8, 9, 60);
    let run_on = |transport: TransportKind| {
        let mut cfg = churn_config(acceptance_plan());
        cfg.transport = transport;
        run_cluster(&cfg, inputs.clone()).expect("churn run")
    };
    let mem = run_on(TransportKind::Mem);
    let tcp = run_on(TransportKind::Tcp);
    assert_eq!(mem.values(), tcp.values());
    assert_eq!(epoch_sig(&mem), epoch_sig(&tcp));
    assert_eq!(mem.drained_nodes, tcp.drained_nodes);
}

/// Churn under the retry supervisor: the same scenario with resilience on
/// (and no faults) must neither misread the joiners as late nor the
/// leavers as dead — same values, clean drains, zero death verdicts.
#[test]
fn resilient_churn_drains_without_death_verdicts() {
    let inputs = interleaved_inputs(8, 9, 60);
    let clean = run_cluster(&churn_config(acceptance_plan()), inputs.clone()).expect("clean");
    let mut cfg = churn_config(acceptance_plan());
    cfg.resilience = Some(Resilience::default());
    let report = run_cluster(&cfg, inputs).expect("resilient churn run");
    assert_eq!(report.values(), clean.values());
    assert_eq!(report.drained_nodes, vec![6, 7]);
    assert_eq!(report.dead_nodes, Vec::<u32>::new());
    assert_eq!(report.fault_stats.nodes_declared_dead, 0);
    assert_eq!(report.fault_stats.nodes_drained, 2);
    assert!(report.outcomes.iter().all(|o| o.degraded.is_none()));
}

/// Sweep seed (as in the chaos suite): `CHAOS_SEED` (default 1) lets CI
/// re-run the seeded churn scenario under several fault histories.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Lossy-but-alive resilience: generous budgets so random drops never
/// escalate to a node death.
fn lossy_resilience(seed: u64) -> Resilience {
    Resilience {
        request_timeout_ms: 40,
        max_retries: 10,
        liveness_k: 10_000,
        seed,
    }
}

/// Seeded membership-churn chaos (CHAOS_SEED sweep in check.sh): the
/// acceptance schedule under random message loss on every node's links.
/// Loss below the death threshold must be invisible — bit-identical
/// values to the fault-free churn run, the leavers still drain (never a
/// death verdict), and the post-churn steady state stays pinned to a
/// fresh run that starts with the final membership.
#[test]
fn seeded_churn_chaos_recovers_bit_exact() {
    let seed = chaos_seed();
    let (windows, per_window) = (9usize, 60usize);
    let inputs = interleaved_inputs(8, windows, per_window);
    let clean = run_cluster(&churn_config(acceptance_plan()), inputs.clone()).expect("clean run");

    let mut cfg = churn_config(acceptance_plan());
    cfg.resilience = Some(lossy_resilience(seed));
    cfg.faults = (0..8)
        .map(|n| {
            let s = seed.wrapping_add(u64::from(n) * 101);
            NodeFaults {
                node: n,
                uplink: Some(FaultPlan::new(s ^ 0x11).with_drop(0.10)),
                responder: Some(FaultPlan::new(s ^ 0x22).with_drop(0.10)),
                control: Some(FaultPlan::new(s ^ 0x33).with_drop(0.10)),
            }
        })
        .collect();
    let chaotic = run_cluster(&cfg, inputs.clone()).expect("chaotic churn run");

    assert_eq!(chaotic.values(), clean.values(), "loss must be invisible");
    assert_eq!(chaotic.drained_nodes, vec![6, 7], "leavers still drain");
    assert_eq!(chaotic.dead_nodes, Vec::<u32>::new(), "no death verdicts");
    assert_eq!(chaotic.fault_stats.nodes_drained, 2);
    assert!(chaotic.outcomes.iter().all(|o| o.degraded.is_none()));

    // Post-churn pin: the final epoch's windows must still match a fresh
    // fault-free run with the final membership.
    let fresh_inputs: Vec<Vec<Vec<Event>>> =
        (0..6).map(|n| inputs[n][6..windows].to_vec()).collect();
    let fresh_cfg = ClusterConfig::dema_fixed(8, Quantile::MEDIAN);
    let fresh = run_cluster(&fresh_cfg, fresh_inputs).expect("fresh run");
    for k in 0..windows - 6 {
        assert_eq!(
            chaotic.outcomes[6 + k].value,
            fresh.outcomes[k].value,
            "chaotic churn window {} vs fresh window {k}",
            6 + k
        );
    }
}

/// Unclean departure: a planned leaver whose uplink dies before it can
/// announce gets a *death* verdict, not a drain — its still-owed windows
/// complete degraded with the node named missing, windows past its
/// boundary stay exact, and the epoch attribution is unaffected.
#[test]
fn leaver_dying_before_announce_degrades_its_owed_windows() {
    let (windows, per_window) = (6usize, 60usize);
    let inputs = interleaved_inputs(4, windows, per_window);
    let mut cfg = ClusterConfig::dema_fixed(8, Quantile::MEDIAN);
    cfg.membership = MembershipPlan {
        changes: vec![MembershipChange {
            window: 4,
            joins: vec![],
            leaves: vec![3],
        }],
    };
    // Retry-budget exhaustion is the death verdict here; liveness stays
    // loose so several stuck windows in one sweep can't race it.
    cfg.resilience = Some(Resilience {
        request_timeout_ms: 40,
        max_retries: 2,
        liveness_k: 100,
        seed: 1,
    });
    // Windows 0 and 1 reach the wire; window 2 is cached for resend but
    // severed in flight; the local dies there, so window 3 and the
    // LeaveAnnounce it owed exist nowhere.
    cfg.faults = vec![NodeFaults {
        node: 3,
        uplink: Some(FaultPlan::new(7).with_disconnect_after(2)),
        ..NodeFaults::default()
    }];
    let report = run_cluster(&cfg, inputs.clone()).expect("run must not hang");
    let ledger = EpochLedger::from_plan(4, &cfg.membership).unwrap();

    assert_eq!(report.outcomes.len(), windows);
    assert_eq!(report.dead_nodes, vec![3], "unclean departure is a death");
    assert_eq!(report.drained_nodes, Vec::<u32>::new());
    for (w, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(outcome.epoch, ledger.epoch_of(w as u64), "window {w}");
        if w < 2 {
            assert!(outcome.degraded.is_none(), "window {w} arrived normally");
        } else if w == 2 {
            // Replayed from the sent-cache over the healthy responder
            // uplink — recovered, not degraded.
            assert!(outcome.degraded.is_none(), "window {w} must be recovered");
        } else if w == 3 {
            let d = outcome
                .degraded
                .as_ref()
                .unwrap_or_else(|| panic!("window {w} must degrade"));
            assert_eq!(d.missing_nodes, vec![3]);
            assert_eq!(
                outcome.value,
                oracle(&inputs, &[0, 1, 2], w, Quantile::MEDIAN),
                "window {w}: survivors' exact quantile"
            );
        } else {
            // Past the boundary the node was never a member: exact.
            assert!(outcome.degraded.is_none(), "window {w} is post-boundary");
            assert_eq!(
                outcome.value,
                oracle(&inputs, ledger.members_of(w as u64), w, Quantile::MEDIAN)
            );
        }
    }
    let last_epoch = report.epochs.last().unwrap();
    assert_eq!(last_epoch.members, vec![0, 1, 2]);
    assert_eq!(report.epochs[0].degraded_windows, 1);
    assert_eq!(last_epoch.degraded_windows, 0);
}

/// Non-Dema engines and tree topologies reject membership plans up front.
#[test]
fn churn_is_rejected_off_the_supported_matrix() {
    let inputs = interleaved_inputs(2, 3, 10);
    let plan = MembershipPlan {
        changes: vec![MembershipChange {
            window: 1,
            joins: vec![1],
            leaves: vec![],
        }],
    };
    let mut cfg = ClusterConfig::baseline(EngineKind::Centralized, Quantile::MEDIAN);
    cfg.membership = plan.clone();
    assert!(
        run_cluster(&cfg, inputs.clone()).is_err(),
        "non-Dema engine"
    );

    let mut cfg = churn_config(plan);
    cfg.topology = dema_cluster::config::Topology::Tree {
        fanout: 2,
        depth: 2,
    };
    assert!(run_cluster(&cfg, inputs.clone()).is_err(), "tree topology");

    let cfg = churn_config(MembershipPlan {
        changes: vec![MembershipChange {
            window: 5,
            joins: vec![1],
            leaves: vec![],
        }],
    });
    assert!(
        run_cluster(&cfg, inputs).is_err(),
        "boundary past the window range"
    );
}

/// Random membership schedules: one optional join cohort and one optional
/// leaver over random boundaries. Every completed run must attribute each
/// window to exactly the ledger's epoch, keep epochs dense and boundary-
/// ordered, account every window to exactly one epoch, and match the
/// sort oracle over each window's members.
fn arb_plan() -> impl Strategy<Value = (usize, usize, MembershipPlan)> {
    (2usize..4, 0usize..3, 3usize..6).prop_flat_map(|(n_initial, n_join, windows)| {
        let join_w = 1u64..windows as u64;
        let leave_w = 1u64..windows as u64;
        (
            Just(n_initial),
            Just(n_join),
            Just(windows),
            join_w,
            leave_w,
            0u64..2, // poor man's Option: 1 = stage the leave
        )
            .prop_map(|(n_initial, n_join, windows, jw, lw, stage_leave)| {
                let lw = (stage_leave == 1).then_some(lw);
                let total = n_initial + n_join;
                let mut by_window: std::collections::BTreeMap<u64, MembershipChange> =
                    std::collections::BTreeMap::new();
                if n_join > 0 {
                    by_window
                        .entry(jw)
                        .or_insert_with(|| MembershipChange {
                            window: jw,
                            ..MembershipChange::default()
                        })
                        .joins = (n_initial as u32..total as u32).collect();
                }
                if let Some(lw) = lw {
                    // Node 0 is always a founding member, so any boundary
                    // is a valid leave for it.
                    by_window
                        .entry(lw)
                        .or_insert_with(|| MembershipChange {
                            window: lw,
                            ..MembershipChange::default()
                        })
                        .leaves = vec![0];
                }
                (
                    total.max(n_initial),
                    windows,
                    MembershipPlan {
                        changes: by_window.into_values().collect(),
                    },
                )
            })
    })
}

proptest! {
    // Cluster runs spawn threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn windows_name_exactly_one_contiguous_epoch(
        (nodes, windows, plan) in arb_plan(),
        per_window in 8usize..24,
    ) {
        let inputs = interleaved_inputs(nodes, windows, per_window);
        let mut cfg = ClusterConfig::dema_fixed(4, Quantile::MEDIAN);
        cfg.membership = plan.clone();
        let report = run_cluster(&cfg, inputs.clone()).unwrap();
        let ledger = EpochLedger::from_plan(nodes, &plan).unwrap();

        // Epochs are dense from 0 with strictly increasing boundaries.
        for (i, e) in report.epochs.iter().enumerate() {
            prop_assert_eq!(e.epoch, i as u64);
            if i > 0 {
                prop_assert!(e.first_window > report.epochs[i - 1].first_window);
            } else {
                prop_assert_eq!(e.first_window, 0);
            }
        }
        // Every window names exactly the ledger's epoch for it, and the
        // per-epoch completion counters account each window exactly once.
        prop_assert_eq!(report.outcomes.len(), windows);
        for (w, outcome) in report.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.epoch, ledger.epoch_of(w as u64));
            prop_assert!(outcome.degraded.is_none());
            prop_assert_eq!(
                outcome.value,
                oracle(&inputs, ledger.members_of(w as u64), w, Quantile::MEDIAN)
            );
        }
        let completed: u64 = report.epochs.iter().map(|e| e.windows_completed).sum();
        prop_assert_eq!(completed, windows as u64);
    }
}
