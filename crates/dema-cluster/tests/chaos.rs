//! Seeded chaos suite: the retry/backoff layer must turn injected link
//! faults into either *recovered exactness* (loss without death → the same
//! bits as the clean run, with retry traffic visible in the counters) or
//! *graceful degradation* (a killed node → windows complete from the
//! survivors, carrying a verifiable rank-error bound where one is
//! derivable), never a hang and never a silently-wrong answer.
//!
//! Every fault schedule and every retry jitter draw derives from one seed,
//! taken from `CHAOS_SEED` (default 1) so CI can sweep seeds without code
//! changes. The resilience `request_timeout_ms` must exceed any injected
//! delay (and any configured window pacing) or healthy-but-slow runs read
//! as quiescent and NACK spuriously — harmless for correctness, noisy for
//! the counters.

use dema_cluster::config::TransportKind;
use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode, NodeFaults, Resilience};
use dema_cluster::report::RunReport;
use dema_cluster::runner::run_cluster;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_net::fault::FaultPlan;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Interleaved inputs: node `n`'s window `w` holds `w·stride + 3i + n`,
/// so every node owns values throughout each window's range and therefore
/// owns candidate slices near any quantile.
fn interleaved_inputs(nodes: usize, windows: usize, per_window: usize) -> Vec<Vec<Vec<Event>>> {
    (0..nodes)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..per_window)
                        .map(|i| {
                            Event::new(
                                (w * 10_000 + 3 * i + n) as i64,
                                w as u64,
                                (w * per_window + i) as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn dema_cfg(gamma: u64) -> ClusterConfig {
    ClusterConfig::dema_fixed(gamma, Quantile::MEDIAN)
}

/// Lossy-but-alive resilience: generous budgets so random drops never
/// escalate to a node death.
fn lossy_resilience(seed: u64) -> Resilience {
    Resilience {
        request_timeout_ms: 40,
        max_retries: 10,
        liveness_k: 10_000,
        seed,
    }
}

/// Death-detecting resilience: small budgets so a severed link is given up
/// on quickly.
fn deadly_resilience(seed: u64) -> Resilience {
    Resilience {
        request_timeout_ms: 40,
        max_retries: 2,
        liveness_k: 3,
        seed,
    }
}

/// Drop faults on all three of a node's links, seeds derived per link.
fn drop_everywhere(node: u32, seed: u64, p: f64) -> NodeFaults {
    NodeFaults {
        node,
        uplink: Some(FaultPlan::new(seed ^ 0x11).with_drop(p)),
        responder: Some(FaultPlan::new(seed ^ 0x22).with_drop(p)),
        control: Some(FaultPlan::new(seed ^ 0x33).with_drop(p)),
    }
}

fn run_clean(engine: EngineKind, inputs: &[Vec<Vec<Event>>]) -> RunReport {
    let cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
    run_cluster(&cfg, inputs.to_vec()).expect("clean run")
}

/// Message loss below the death threshold must be invisible in the answers:
/// every exact engine returns bit-identical values to its fault-free run,
/// no window degrades, and the retry counters show the recovery happened.
#[test]
fn drop_matrix_exact_engines_recover_bit_identically() {
    let seed = chaos_seed();
    let inputs = interleaved_inputs(3, 8, 60);
    let engines = [
        EngineKind::Dema {
            gamma: GammaMode::Fixed(8),
            strategy: SelectionStrategy::WindowCut,
        },
        EngineKind::Centralized,
        EngineKind::DecSort,
    ];
    let mut total_recoveries = 0u64;
    for engine in engines {
        let clean = run_clean(engine, &inputs);
        let mut cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        cfg.resilience = Some(lossy_resilience(seed));
        cfg.faults = (0..3)
            .map(|n| drop_everywhere(n, seed.wrapping_add(u64::from(n) * 101), 0.12))
            .collect();
        let chaotic = run_cluster(&cfg, inputs.clone()).expect("chaotic run");
        assert_eq!(
            chaotic.values(),
            clean.values(),
            "{}: values must survive message loss bit-identically",
            engine.label()
        );
        assert!(
            chaotic.outcomes.iter().all(|o| o.degraded.is_none()),
            "{}: no window may degrade below the death threshold",
            engine.label()
        );
        assert_eq!(chaotic.fault_stats.nodes_declared_dead, 0);
        total_recoveries += chaotic.fault_stats.timeouts + chaotic.fault_stats.retries;
    }
    assert!(
        total_recoveries > 0,
        "a 12% drop matrix must exercise the retry path"
    );
}

/// Delay + duplication + reordering (no loss) must also be invisible:
/// exact values, no degradation, and the duplicate-suppression counter
/// proves the dups were caught rather than double-counted.
#[test]
fn delay_dup_reorder_is_exact_with_duplicates_suppressed() {
    let seed = chaos_seed();
    let inputs = interleaved_inputs(3, 8, 60);
    let noisy = |s: u64| {
        FaultPlan::new(s)
            .with_delay(Duration::from_millis(2), Duration::from_millis(5))
            .with_dup(0.25)
            .with_reorder(0.25, 3)
    };
    let mut total_dups = 0u64;
    for engine in [
        EngineKind::Dema {
            gamma: GammaMode::Fixed(8),
            strategy: SelectionStrategy::WindowCut,
        },
        EngineKind::Centralized,
    ] {
        let clean = run_clean(engine, &inputs);
        let mut cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        cfg.resilience = Some(lossy_resilience(seed));
        cfg.faults = (0..3)
            .map(|n| NodeFaults {
                node: n,
                uplink: Some(noisy(seed ^ (u64::from(n) + 7))),
                responder: Some(noisy(seed ^ (u64::from(n) + 77))),
                control: Some(noisy(seed ^ (u64::from(n) + 777))),
            })
            .collect();
        let chaotic = run_cluster(&cfg, inputs.clone()).expect("noisy run");
        assert_eq!(chaotic.values(), clean.values(), "{}", engine.label());
        assert!(chaotic.outcomes.iter().all(|o| o.degraded.is_none()));
        assert_eq!(chaotic.fault_stats.nodes_declared_dead, 0);
        total_dups += chaotic.fault_stats.duplicates_suppressed;
    }
    assert!(
        total_dups > 0,
        "25% duplication must hit the suppression path"
    );
}

/// The same recovery guarantee over real loopback TCP sockets.
#[test]
fn tcp_loopback_recovers_from_drops() {
    let seed = chaos_seed();
    let inputs = interleaved_inputs(2, 4, 40);
    let engine = EngineKind::Dema {
        gamma: GammaMode::Fixed(6),
        strategy: SelectionStrategy::WindowCut,
    };
    let clean = run_clean(engine, &inputs);
    let mut cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
    cfg.transport = TransportKind::Tcp;
    cfg.resilience = Some(Resilience {
        request_timeout_ms: 80, // TCP loopback needs more slack than mem
        ..lossy_resilience(seed)
    });
    cfg.faults = vec![drop_everywhere(0, seed ^ 0x7C90, 0.1)];
    let chaotic = run_cluster(&cfg, inputs).expect("tcp chaos run");
    assert_eq!(chaotic.values(), clean.values());
    assert!(chaotic.outcomes.iter().all(|o| o.degraded.is_none()));
}

/// A Dema local whose responder uplink dies mid-run: its synopses keep
/// arriving but its candidate slices are unreachable. Affected windows
/// must complete as degraded with `rank_error_bound = Some(M)` — the exact
/// number of candidate events the root knows it lost — and the bound must
/// hold against a sort oracle over the full (pre-fault) input.
#[test]
fn dema_responder_death_degrades_with_verified_rank_bound() {
    let seed = chaos_seed();
    let (nodes, windows, per_window) = (3usize, 6usize, 100usize);
    let inputs = interleaved_inputs(nodes, windows, per_window);
    let mut cfg = dema_cfg(10);
    cfg.resilience = Some(deadly_resilience(seed));
    cfg.faults = vec![NodeFaults {
        node: 1,
        // First candidate reply delivered, everything after dies.
        responder: Some(FaultPlan::new(seed).with_disconnect_after(1)),
        ..NodeFaults::default()
    }];
    let report = run_cluster(&cfg, inputs.clone()).expect("run must not hang");
    assert_eq!(report.outcomes.len(), windows);
    assert_eq!(report.fault_stats.nodes_declared_dead, 1);
    let total = (nodes * per_window) as u64;
    let target = Quantile::MEDIAN.pos(total).unwrap();
    let mut saw_degraded = false;
    for (w, outcome) in report.outcomes.iter().enumerate() {
        let Some(d) = &outcome.degraded else { continue };
        saw_degraded = true;
        assert_eq!(d.missing_nodes, vec![1], "window {w}");
        // Synopses all arrived (the data uplink is healthy), so the lost
        // candidate mass — and with it the rank error — is exactly known.
        let bound = d
            .rank_error_bound
            .unwrap_or_else(|| panic!("window {w}: bound must be derivable"));
        assert_eq!(outcome.total_events, total, "window {w}");
        // Sort oracle: the degraded answer's true global rank may sit at
        // most `bound` positions from the requested rank.
        let mut sorted: Vec<i64> = inputs
            .iter()
            .flat_map(|node| node[w].iter().map(|e| e.value))
            .collect();
        sorted.sort_unstable();
        let v = outcome.value.expect("survivor runs are non-empty");
        let lo = sorted.iter().filter(|&&x| x < v).count() as u64 + 1;
        let hi = sorted.iter().filter(|&&x| x <= v).count() as u64;
        assert!(hi >= lo, "window {w}: value {v} must exist in the input");
        let distance = target.saturating_sub(hi).max(lo.saturating_sub(target));
        assert!(
            distance <= bound,
            "window {w}: rank distance {distance} exceeds claimed bound {bound}"
        );
    }
    assert!(saw_degraded, "the severed responder must degrade windows");
    assert!(report.fault_stats.degraded_windows > 0);
}

/// A centralized local whose *data* uplink dies: the window whose batch was
/// sent-but-severed is recovered through the responder's resend cache, the
/// rest complete degraded (no bound claimable — whole batches are unknown)
/// with the survivors' exact quantile, and the run still terminates.
#[test]
fn centralized_uplink_death_degrades_later_windows() {
    let seed = chaos_seed();
    let (nodes, windows, per_window) = (3usize, 6usize, 100usize);
    let inputs = interleaved_inputs(nodes, windows, per_window);
    let mut cfg = ClusterConfig::baseline(EngineKind::Centralized, Quantile::MEDIAN);
    // Liveness stays loose: several windows time out in the same sweep, and
    // the fast liveness path would declare the node dead before window 2's
    // resend could land. Retry-budget exhaustion is the death verdict here.
    cfg.resilience = Some(Resilience {
        liveness_k: 100,
        ..deadly_resilience(seed)
    });
    cfg.faults = vec![NodeFaults {
        node: 2,
        // Windows 0 and 1 reach the wire; window 2 is cached for resend but
        // severed in flight; the local thread dies there, so windows 3+
        // exist nowhere and cannot be recovered.
        uplink: Some(FaultPlan::new(seed).with_disconnect_after(2)),
        ..NodeFaults::default()
    }];
    let report = run_cluster(&cfg, inputs.clone()).expect("run must not hang");
    assert_eq!(report.outcomes.len(), windows);
    assert_eq!(report.fault_stats.nodes_declared_dead, 1);
    let full = (nodes * per_window) as u64;
    for (w, outcome) in report.outcomes.iter().enumerate() {
        // Exact-window oracle over whichever nodes contributed.
        let contributors: Vec<usize> = if w < 3 { (0..3).collect() } else { vec![0, 1] };
        let mut sorted: Vec<i64> = contributors
            .iter()
            .flat_map(|&n| inputs[n][w].iter().map(|e| e.value))
            .collect();
        sorted.sort_unstable();
        let expect = sorted[(Quantile::MEDIAN.pos(sorted.len() as u64).unwrap() - 1) as usize];
        assert_eq!(outcome.value, Some(expect), "window {w}");
        if w < 3 {
            // Windows 0–1 arrived normally; window 2 was replayed from the
            // node's sent-message cache over its healthy responder uplink.
            assert!(outcome.degraded.is_none(), "window {w} must be recovered");
            assert_eq!(outcome.total_events, full);
        } else {
            let d = outcome
                .degraded
                .as_ref()
                .unwrap_or_else(|| panic!("window {w} must degrade"));
            assert_eq!(d.missing_nodes, vec![2]);
            assert_eq!(
                d.rank_error_bound, None,
                "no bound claimable when whole batches are missing"
            );
            assert_eq!(outcome.total_events, full - per_window as u64);
        }
    }
    assert_eq!(report.fault_stats.degraded_windows, 3);
    assert!(report.fault_stats.timeouts > 0);
}
