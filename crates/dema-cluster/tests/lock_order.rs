//! Lifecycle and lock-order gates over the cluster runtime.
//!
//! Two halves. (1) Sort-pool lifecycle: repeated `ClusterConfig {
//! threads: 4 }` runs in one process must reuse the process-wide sort
//! pool — the pool's own registry (`dema_core::par::pool_stats`) proves
//! no worker threads leak run-over-run, and the bit-identical second
//! result proves the job queue was neither poisoned nor wedged by the
//! first run. (2) The runtime lock-order tracker (`dema_core::sync`):
//! a full cluster run completes with the tracker armed (debug /
//! `--features strict`), and an intentionally *inverted* acquisition —
//! taking a low-ranked cluster lock while a high-ranked one is held —
//! fires `DemaError::LockOrderViolation` naming both sites, mirroring
//! the chaos suite's pattern of proving the detector detects.

use dema_cluster::config::ClusterConfig;
use dema_cluster::runner::run_cluster;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_gen::SoccerGenerator;

/// Inputs big enough to cross the parallel-sort crossover, so a
/// `threads: 4` run genuinely dispatches chunks to the pool.
fn big_inputs(nodes: usize, windows: usize) -> Vec<Vec<Vec<Event>>> {
    let rate = (dema_core::par::PAR_SORT_MIN + 1_000) as u64;
    (0..nodes)
        .map(|i| SoccerGenerator::new(7 + i as u64, 1, rate, 0).take_windows(windows, 1000))
        .collect()
}

#[test]
fn repeated_threaded_runs_reuse_the_pool_and_leave_no_residue() {
    let mut config = ClusterConfig::dema_fixed(150, Quantile::MEDIAN);
    config.threads = Some(4);
    let inputs = big_inputs(2, 2);

    let first = run_cluster(&config, inputs.clone()).expect("first run");
    // The pool exists now (the sorts above crossed the crossover); its
    // spawn count is monotonic and must not move on later runs. The
    // shared pool sizes itself from `default_threads() - 1`, so on a
    // single-core box (DEMA_THREADS unset) it legitimately has zero
    // workers and the runs sort inline — the flatness check below is
    // what must hold everywhere.
    let stats = dema_core::par::pool_stats();
    if dema_core::par::default_threads() > 1 {
        assert!(stats.live > 0, "threads: 4 run must have spawned the pool");
    }
    let spawned_after_first = stats.spawned;

    for round in 0..2 {
        let again = run_cluster(&config, inputs.clone()).expect("repeat run");
        assert_eq!(
            again.values(),
            first.values(),
            "round {round}: a reused pool must not change results — a \
             poisoned or wedged queue would hang or diverge here"
        );
        assert_eq!(
            dema_core::par::pool_stats().spawned,
            spawned_after_first,
            "round {round}: repeated runs must not spawn new workers"
        );
    }
}

/// A whole windowed run under the armed tracker: every ranked lock the
/// runtime takes (sort pool, downlinks, throttle, store, sent cache,
/// close times) respects the global order, or the run panics here.
#[test]
fn full_run_respects_the_lock_ranking_under_the_tracker() {
    let mut config = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    config.threads = Some(4);
    let report = run_cluster(&config, big_inputs(3, 2)).expect("run");
    assert_eq!(report.values().len(), 2);
}

/// The intentionally-inverted self-test: the tracker must *fire* when
/// ranks are acquired out of order, or the gate above proves nothing.
#[cfg(any(debug_assertions, feature = "strict"))]
#[test]
fn inverted_cluster_ranks_fire_the_tracker() {
    use dema_core::sync::{rank, Mutex};
    use dema_core::DemaError;

    // local.store (rank 50) is ranked above relay.downlink (rank 20):
    // holding the store while taking a downlink is the inversion the
    // static rule R10 and this tracker both exist to catch.
    let store = Mutex::new(rank::LOCAL_STORE, ());
    let downlink = Mutex::new(rank::ROUTED_DOWNLINK, ());
    let _held = store.lock();
    let err = downlink.lock_checked().err();
    match err {
        Some(DemaError::LockOrderViolation { held, acquiring }) => {
            assert_eq!(held, "local.store(rank 50)");
            assert_eq!(acquiring, "relay.downlink(rank 20)");
        }
        Some(other) => panic!("wrong error: {other}"),
        None => panic!("tracker failed to fire on an inverted acquisition"),
    }
}
