//! Property tests over the full cluster: for random topologies, workloads,
//! γ values, and engines, the distributed runtime must agree bit-for-bit
//! with the single-process reference (exact engines) and with itself.

use proptest::collection::vec;
use proptest::prelude::*;

use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode};
use dema_cluster::runner::run_cluster;
use dema_core::coordinator::quantile_ground_truth;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;

/// Random aligned per-window inputs: up to 4 nodes × up to 3 windows, with
/// adversarial value ranges (tight, scaled, duplicate-heavy).
fn arb_inputs() -> impl Strategy<Value = Vec<Vec<Vec<Event>>>> {
    let window = vec(-40i64..40, 0..60);
    let node = (vec(window, 1..4), 1i64..=20);
    vec(node, 1..5).prop_map(|nodes| {
        let windows = nodes.iter().map(|(w, _)| w.len()).max().unwrap_or(1);
        nodes
            .into_iter()
            .enumerate()
            .map(|(n, (mut w, scale))| {
                w.resize(windows, Vec::new());
                w.into_iter()
                    .enumerate()
                    .map(|(wi, vals)| {
                        vals.into_iter()
                            .enumerate()
                            .map(|(i, v)| {
                                Event::new(
                                    v * scale,
                                    (wi * 1000 + i % 1000) as u64,
                                    (n * 1_000_000 + wi * 1_000 + i) as u64,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    // Cluster runs spawn threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_engines_match_ground_truth(
        inputs in arb_inputs(),
        gamma in 2u64..30,
        q in 0.05f64..=1.0,
    ) {
        let q = Quantile::new(q).unwrap();
        let windows = inputs[0].len();
        let truth: Vec<Option<i64>> = (0..windows)
            .map(|w| {
                let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
                quantile_ground_truth(&per_node, q).ok().map(|e| e.value)
            })
            .collect();
        for engine in [
            EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::WindowCut,
            },
            EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::ClassifiedScan,
            },
            EngineKind::Centralized,
            EngineKind::DecSort,
        ] {
            let report = run_cluster(
                &ClusterConfig::baseline(engine, q),
                inputs.clone(),
            ).unwrap();
            prop_assert_eq!(report.values(), truth.clone(), "engine {}", engine.label());
        }
    }

    #[test]
    fn extra_quantiles_always_exact(inputs in arb_inputs(), gamma in 2u64..30) {
        let mut cfg = ClusterConfig::dema_fixed(gamma, Quantile::MEDIAN);
        cfg.extra_quantiles = vec![Quantile::P25, Quantile::new(0.99).unwrap()];
        let report = run_cluster(&cfg, inputs.clone()).unwrap();
        for (w, outcome) in report.outcomes.iter().enumerate() {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            match quantile_ground_truth(&per_node, Quantile::MEDIAN) {
                Ok(truth) => {
                    prop_assert_eq!(outcome.value, Some(truth.value));
                    let p25 = quantile_ground_truth(&per_node, Quantile::P25).unwrap();
                    let p99 =
                        quantile_ground_truth(&per_node, Quantile::new(0.99).unwrap()).unwrap();
                    prop_assert_eq!(&outcome.extra_values, &vec![p25.value, p99.value]);
                }
                Err(_) => {
                    prop_assert_eq!(outcome.value, None);
                    prop_assert!(outcome.extra_values.is_empty());
                }
            }
        }
    }
}
