//! Multi-level aggregation trees: the tree topology must be invisible to
//! the protocol (identical answers *and* identical leaf-tier wire bytes as
//! the star) while attributing traffic per tier.

use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode, Topology, TransportKind};
use dema_cluster::runner::run_cluster;
use dema_cluster::ClusterError;
use dema_core::coordinator::quantile_ground_truth;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_gen::SoccerGenerator;

fn soccer_inputs(n: usize, windows: usize, rate: u64) -> Vec<Vec<Vec<Event>>> {
    (0..n)
        .map(|i| SoccerGenerator::new(42 + i as u64, 1, rate, 0).take_windows(windows, 1000))
        .collect()
}

fn truths(inputs: &[Vec<Vec<Event>>], q: Quantile) -> Vec<Option<i64>> {
    let windows = inputs[0].len();
    (0..windows)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, q).ok().map(|e| e.value)
        })
        .collect()
}

/// The size in bytes a [`dema_wire::Message::Routed`] envelope adds on the
/// wire: 1 tag byte + 4 destination bytes.
const ROUTED_OVERHEAD: u64 = 5;

#[test]
fn depth_two_dema_tree_is_bit_identical_to_star() {
    let inputs = soccer_inputs(8, 3, 1_500);
    let star_cfg = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);
    let mut tree_cfg = star_cfg.clone();
    tree_cfg.topology = Topology::Tree {
        fanout: 4,
        depth: 2,
    };

    let star = run_cluster(&star_cfg, inputs.clone()).unwrap();
    let tree = run_cluster(&tree_cfg, inputs.clone()).unwrap();

    // Same exact answers as the star (and as ground truth).
    assert_eq!(tree.values(), truths(&inputs, Quantile::MEDIAN));
    assert_eq!(tree.values(), star.values());

    // Leaf-tier traffic is bit-identical: the relays change *where* bytes
    // flow, not *what* the leaves send or what control traffic reaches them.
    assert_eq!(tree.per_node_traffic, star.per_node_traffic);
    assert_eq!(tree.control_traffic, star.control_traffic);

    // The star reports no tiers; the depth-2 tree reports both of them.
    assert!(star.tier_traffic.is_empty());
    assert_eq!(tree.tier_traffic.len(), 2);
    let (tier0, tier1) = (&tree.tier_traffic[0], &tree.tier_traffic[1]);

    // Tier 0 is exactly the leaf links (8 data links + the shared control
    // accounting), tier 1 one link per relay (8 leaves / fanout 4 = 2).
    assert_eq!(tier0.up, tree.per_node_traffic);
    assert_eq!(tier0.down, vec![tree.control_traffic]);
    assert_eq!(tier1.up.len(), 2);
    assert_eq!(tier1.down.len(), 2);

    // Relays forward upward messages verbatim, so the upper tier re-ships
    // exactly the leaf tier's bytes/messages/events.
    assert_eq!(tier1.up_total(), tier0.up_total());

    // Downward every control message crosses tier 1 wrapped in a Routed
    // envelope (tag + destination), then reaches the leaf unwrapped.
    let (d0, d1) = (tier0.down_total(), tier1.down_total());
    assert_eq!(d1.messages, d0.messages);
    assert_eq!(d1.bytes, d0.bytes + ROUTED_OVERHEAD * d0.messages);
}

#[test]
fn depth_three_tree_chains_relays_and_stays_exact() {
    // 4 leaves, fanout 2, depth 3: 2 relays at tier 1, one relay at tier 2.
    let inputs = soccer_inputs(4, 3, 800);
    let mut cfg = ClusterConfig::dema_fixed(64, Quantile::P75);
    cfg.topology = Topology::Tree {
        fanout: 2,
        depth: 3,
    };
    let report = run_cluster(&cfg, inputs.clone()).unwrap();
    assert_eq!(report.values(), truths(&inputs, Quantile::P75));
    assert_eq!(report.tier_traffic.len(), 3);
    assert_eq!(report.tier_traffic[1].up.len(), 2);
    assert_eq!(report.tier_traffic[2].up.len(), 1);
    // Verbatim forwarding holds across every tier.
    let t0 = report.tier_traffic[0].up_total();
    assert_eq!(report.tier_traffic[1].up_total(), t0);
    assert_eq!(report.tier_traffic[2].up_total(), t0);
    // Downward, the envelope is added once at the root and forwarded
    // verbatim between relay tiers; only the last hop to the leaves unwraps.
    let d0 = report.tier_traffic[0].down_total();
    let d1 = report.tier_traffic[1].down_total();
    let d2 = report.tier_traffic[2].down_total();
    assert_eq!(d1.bytes, d0.bytes + ROUTED_OVERHEAD * d0.messages);
    assert_eq!(d2, d1);
}

#[test]
fn adaptive_gamma_feedback_flows_down_through_relays() {
    let inputs = soccer_inputs(4, 12, 2_000);
    let mut cfg = ClusterConfig::baseline(
        EngineKind::Dema {
            gamma: GammaMode::Adaptive { initial: 2 },
            strategy: SelectionStrategy::WindowCut,
        },
        Quantile::MEDIAN,
    );
    cfg.pace_window_ms = Some(40);
    cfg.topology = Topology::Tree {
        fanout: 2,
        depth: 2,
    };
    let report = run_cluster(&cfg, inputs.clone()).unwrap();
    // Still exact, and the routed γ updates actually reached the leaves.
    assert_eq!(report.values(), truths(&inputs, Quantile::MEDIAN));
    assert!(report.outcomes.last().unwrap().gamma > 16);
}

#[test]
fn engines_without_a_control_plane_run_over_trees() {
    let inputs = soccer_inputs(6, 2, 1_000);
    let expect = truths(&inputs, Quantile::MEDIAN);
    for engine in [
        EngineKind::Centralized,
        EngineKind::DecSort,
        EngineKind::KllDistributed { k: 4096 },
    ] {
        let mut star_cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let mut tree_cfg = star_cfg.clone();
        star_cfg.topology = Topology::Star;
        tree_cfg.topology = Topology::Tree {
            fanout: 3,
            depth: 2,
        };
        let star = run_cluster(&star_cfg, inputs.clone()).unwrap();
        let tree = run_cluster(&tree_cfg, inputs.clone()).unwrap();
        // Identical answers star vs tree (KLL's per-node seeds make even the
        // sketched engine deterministic under reordering)…
        assert_eq!(tree.values(), star.values(), "engine {}", engine.label());
        if engine.is_exact() {
            assert_eq!(tree.values(), expect, "engine {}", engine.label());
        }
        // …and no phantom control tier.
        assert_eq!(tree.tier_traffic.len(), 2);
        assert!(
            tree.tier_traffic[0].down.is_empty(),
            "engine {}",
            engine.label()
        );
        assert!(
            tree.tier_traffic[1].down.is_empty(),
            "engine {}",
            engine.label()
        );
        assert_eq!(
            tree.tier_traffic[1].up_total(),
            tree.tier_traffic[0].up_total(),
            "engine {}",
            engine.label()
        );
    }
}

#[test]
fn tree_runs_over_tcp_and_throttled_transports() {
    let inputs = soccer_inputs(4, 2, 500);
    let expect = truths(&inputs, Quantile::MEDIAN);
    for transport in [
        TransportKind::Tcp,
        TransportKind::Throttled { mbits_per_sec: 200 },
    ] {
        let mut cfg = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
        cfg.transport = transport;
        cfg.topology = Topology::Tree {
            fanout: 2,
            depth: 2,
        };
        let report = run_cluster(&cfg, inputs.clone()).unwrap();
        assert_eq!(report.values(), expect, "transport {transport:?}");
        assert_eq!(
            report.tier_traffic[1].up_total(),
            report.tier_traffic[0].up_total(),
            "transport {transport:?}"
        );
    }
}

#[test]
fn degenerate_trees_are_rejected() {
    let inputs = soccer_inputs(2, 1, 100);
    for topology in [
        Topology::Tree {
            fanout: 1,
            depth: 2,
        },
        Topology::Tree {
            fanout: 2,
            depth: 1,
        },
        Topology::Tree {
            fanout: 0,
            depth: 0,
        },
    ] {
        let mut cfg = ClusterConfig::dema_fixed(16, Quantile::MEDIAN);
        cfg.topology = topology;
        let err = run_cluster(&cfg, inputs.clone()).unwrap_err();
        assert!(
            matches!(err, ClusterError::Protocol(_)),
            "{topology:?}: {err}"
        );
    }
}

#[test]
fn tree_with_more_depth_than_leaves_degrades_to_a_chain() {
    // 2 leaves, fanout 4, depth 3: tier 1 groups both leaves under one
    // relay, tier 2 wraps that single relay again — a chain, still exact.
    let inputs = soccer_inputs(2, 2, 400);
    let mut cfg = ClusterConfig::dema_fixed(32, Quantile::MEDIAN);
    cfg.topology = Topology::Tree {
        fanout: 4,
        depth: 3,
    };
    let report = run_cluster(&cfg, inputs.clone()).unwrap();
    assert_eq!(report.values(), truths(&inputs, Quantile::MEDIAN));
    assert_eq!(report.tier_traffic.len(), 3);
    assert_eq!(report.tier_traffic[1].up.len(), 1);
    assert_eq!(report.tier_traffic[2].up.len(), 1);
}

#[test]
fn resilient_tree_survives_leaf_uplink_death() {
    use dema_cluster::config::{NodeFaults, Resilience};
    use dema_net::fault::FaultPlan;

    // 4 leaves under a fanout-2 depth-3 tree: leaf 0's data uplink dies
    // after two windows. The NACK/resend traffic must route down and back
    // up through two relay tiers: window 2 (sent-but-severed, so cached on
    // the leaf) is recovered exactly, later windows complete degraded from
    // the three surviving leaves, and the dead child uplink must not take
    // its relay — or the run — down with it.
    let inputs = soccer_inputs(4, 6, 150);
    let expect = truths(&inputs, Quantile::MEDIAN);
    let mut cfg = ClusterConfig::dema_fixed(16, Quantile::MEDIAN);
    cfg.topology = Topology::Tree {
        fanout: 2,
        depth: 3,
    };
    cfg.resilience = Some(Resilience {
        request_timeout_ms: 40,
        max_retries: 2,
        liveness_k: 100, // death by retry exhaustion, not the fast path
        seed: 9,
    });
    cfg.faults = vec![NodeFaults {
        node: 0,
        uplink: Some(FaultPlan::new(9).with_disconnect_after(2)),
        ..NodeFaults::default()
    }];
    let report = run_cluster(&cfg, inputs).expect("tree run must not hang");
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.fault_stats.nodes_declared_dead, 1);
    for (w, o) in report.outcomes.iter().enumerate().take(3) {
        assert!(o.degraded.is_none(), "window {w} must be exact");
        assert_eq!(o.value, expect[w], "window {w}");
    }
    let degraded: Vec<_> = report
        .outcomes
        .iter()
        .filter_map(|o| o.degraded.as_ref())
        .collect();
    assert!(!degraded.is_empty(), "later windows must degrade");
    assert!(degraded.iter().all(|d| d.missing_nodes == vec![0]));
}
