//! End-to-end cluster runs: all engines over identical inputs.

use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode, TransportKind};
use dema_cluster::runner::{data_traffic, run_cluster};
use dema_core::coordinator::quantile_ground_truth;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_gen::{EventStream, SoccerGenerator, StreamConfig, ValueDistribution};

/// Generate aligned per-window inputs for `n` nodes.
fn soccer_inputs(n: usize, windows: usize, rate: u64, scales: &[i64]) -> Vec<Vec<Vec<Event>>> {
    (0..n)
        .map(|i| {
            let scale = scales.get(i).copied().unwrap_or(1);
            SoccerGenerator::new(42 + i as u64, scale, rate, 0).take_windows(windows, 1000)
        })
        .collect()
}

/// Ground truth per window from the same inputs.
fn truths(inputs: &[Vec<Vec<Event>>], q: Quantile) -> Vec<Option<i64>> {
    let windows = inputs[0].len();
    (0..windows)
        .map(|w| {
            let per_node: Vec<Vec<Event>> = inputs.iter().map(|n| n[w].clone()).collect();
            quantile_ground_truth(&per_node, q).ok().map(|e| e.value)
        })
        .collect()
}

#[test]
fn all_exact_engines_agree_with_ground_truth() {
    let inputs = soccer_inputs(3, 4, 2_000, &[1, 1, 1]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    for engine in [
        EngineKind::Dema {
            gamma: GammaMode::Fixed(128),
            strategy: SelectionStrategy::WindowCut,
        },
        EngineKind::Dema {
            gamma: GammaMode::Fixed(128),
            strategy: SelectionStrategy::ClassifiedScan,
        },
        EngineKind::Dema {
            gamma: GammaMode::Fixed(128),
            strategy: SelectionStrategy::NoCut,
        },
        EngineKind::Centralized,
        EngineKind::DecSort,
    ] {
        let config = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let report = run_cluster(&config, inputs.clone()).unwrap();
        assert_eq!(report.values(), expect, "engine {}", engine.label());
        assert_eq!(report.total_events, 3 * 4 * 2_000);
        assert_eq!(report.outcomes.len(), 4);
    }
}

#[test]
fn tdigest_engines_are_close_to_truth() {
    let inputs = soccer_inputs(2, 3, 3_000, &[1, 1]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    for engine in [
        EngineKind::TdigestCentral { compression: 100.0 },
        EngineKind::TdigestDistributed { compression: 100.0 },
    ] {
        let config = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let report = run_cluster(&config, inputs.clone()).unwrap();
        for (got, want) in report.values().iter().zip(&expect) {
            let (got, want) = (got.unwrap() as f64, want.unwrap() as f64);
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 0.05, "{}: got {got}, want {want}", engine.label());
        }
    }
}

#[test]
fn dema_ships_far_fewer_events_than_baselines() {
    let inputs = soccer_inputs(2, 3, 5_000, &[1, 1]);
    let dema = run_cluster(
        &ClusterConfig::dema_fixed(200, Quantile::MEDIAN),
        inputs.clone(),
    )
    .unwrap();
    let central = run_cluster(
        &ClusterConfig::baseline(EngineKind::Centralized, Quantile::MEDIAN),
        inputs,
    )
    .unwrap();
    let dema_traffic = data_traffic(&dema).plus(&dema.control_traffic);
    let central_traffic = data_traffic(&central);
    assert!(
        dema_traffic.bytes * 5 < central_traffic.bytes,
        "dema {} B vs centralized {} B",
        dema_traffic.bytes,
        central_traffic.bytes
    );
    assert!(dema_traffic.events * 5 < central_traffic.events);
    // And the answers still match.
    assert_eq!(dema.values(), central.values());
}

#[test]
fn adaptive_gamma_improves_over_terrible_fixed_gamma() {
    let inputs = soccer_inputs(2, 24, 3_000, &[1, 1]);
    let mut adaptive_cfg = ClusterConfig::baseline(
        EngineKind::Dema {
            gamma: GammaMode::Adaptive { initial: 2 },
            strategy: SelectionStrategy::WindowCut,
        },
        Quantile::MEDIAN,
    );
    // Pace windows (compressed real time) so γ feedback reaches the locals
    // before they slice the next window. Generous pacing: debug builds
    // resolve windows slowly and the feedback must land deterministically.
    adaptive_cfg.pace_window_ms = Some(40);
    let adaptive = run_cluster(&adaptive_cfg, inputs.clone()).unwrap();
    let fixed_bad = run_cluster(&ClusterConfig::dema_fixed(2, Quantile::MEDIAN), inputs).unwrap();
    // Same exact answers…
    assert_eq!(adaptive.values(), fixed_bad.values());
    // …but γ adapted away from 2 and total traffic dropped.
    let last = adaptive.outcomes.last().unwrap();
    assert!(last.gamma > 16, "γ stayed at {}", last.gamma);
    let a = data_traffic(&adaptive).bytes;
    let b = data_traffic(&fixed_bad).bytes;
    assert!(a * 2 < b, "adaptive {a} B vs fixed-2 {b} B");
}

#[test]
fn skewed_scale_rates_remain_exact() {
    // The paper's Dema #10 configuration: one node's values 10× the other's,
    // 30 % quantile on the dense side.
    let q = Quantile::new(0.3).unwrap();
    let inputs = soccer_inputs(2, 4, 2_000, &[1, 10]);
    let expect = truths(&inputs, q);
    let report = run_cluster(&ClusterConfig::dema_fixed(256, q), inputs).unwrap();
    assert_eq!(report.values(), expect);
}

#[test]
fn uniform_and_clustered_distributions() {
    let mk = |dist: ValueDistribution, seed: u64| -> Vec<Vec<Event>> {
        EventStream::new(
            dist,
            StreamConfig {
                seed,
                events_per_second: 2_000,
                ..Default::default()
            },
        )
        .take_windows(3, 1000)
    };
    let inputs = vec![
        mk(
            ValueDistribution::Uniform {
                lo: 0,
                hi: 1_000_000,
            },
            1,
        ),
        mk(
            ValueDistribution::Clustered {
                centers: vec![100, 500_000],
                spread: 50,
            },
            2,
        ),
        mk(ValueDistribution::Zipf { n: 10_000, s: 1.1 }, 3),
    ];
    let expect = truths(&inputs, Quantile::P75);
    let report = run_cluster(&ClusterConfig::dema_fixed(200, Quantile::P75), inputs).unwrap();
    assert_eq!(report.values(), expect);
}

#[test]
fn empty_windows_produce_none_results() {
    let inputs: Vec<Vec<Vec<Event>>> = vec![
        vec![vec![], vec![Event::new(5, 1500, 0)], vec![]],
        vec![vec![], vec![Event::new(7, 1600, 1)], vec![]],
    ];
    let report = run_cluster(&ClusterConfig::dema_fixed(10, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.values(), vec![None, Some(5), None]);
}

#[test]
fn single_local_node_cluster() {
    let inputs = soccer_inputs(1, 2, 1_000, &[1]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    let report = run_cluster(&ClusterConfig::dema_fixed(64, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.values(), expect);
}

#[test]
fn many_local_nodes() {
    let inputs = soccer_inputs(8, 2, 500, &[1; 8]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    let report = run_cluster(&ClusterConfig::dema_fixed(50, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.values(), expect);
    assert_eq!(report.per_node_traffic.len(), 8);
}

#[test]
fn registry_matrix_runs_every_engine_end_to_end() {
    // Driven by the engine registry, so adding an engine automatically adds
    // it to this matrix (and forgetting to register one fails the registry
    // unit tests).
    let inputs = soccer_inputs(3, 3, 2_000, &[1, 1, 1]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    for desc in &dema_cluster::engines::REGISTRY {
        let engine = (desc.example)();
        assert_eq!(engine.label(), desc.label);
        let config = ClusterConfig::baseline(engine, Quantile::MEDIAN);
        let report = run_cluster(&config, inputs.clone()).unwrap();
        assert_eq!(report.outcomes.len(), 3, "engine {}", desc.label);
        if desc.exact {
            assert_eq!(report.values(), expect, "engine {}", desc.label);
        } else {
            for (got, want) in report.values().iter().zip(&expect) {
                let (got, want) = (got.unwrap() as f64, want.unwrap() as f64);
                let rel = (got - want).abs() / want.abs().max(1.0);
                assert!(rel < 0.05, "{}: got {got}, want {want}", desc.label);
            }
        }
    }
}

#[test]
fn kll_distributed_tracks_truth_and_ships_sublinearly() {
    let inputs = soccer_inputs(3, 3, 5_000, &[1, 1, 1]);
    let expect = truths(&inputs, Quantile::P75);
    let config = ClusterConfig::baseline(EngineKind::KllDistributed { k: 512 }, Quantile::P75);
    let report = run_cluster(&config, inputs.clone()).unwrap();
    for (got, want) in report.values().iter().zip(&expect) {
        let (got, want) = (got.unwrap() as f64, want.unwrap() as f64);
        let rel = (got - want).abs() / want.abs().max(1.0);
        assert!(rel < 0.05, "got {got}, want {want}");
    }
    // The sketch summary must undercut shipping the raw windows.
    let central = run_cluster(
        &ClusterConfig::baseline(EngineKind::Centralized, Quantile::P75),
        inputs,
    )
    .unwrap();
    assert!(data_traffic(&report).bytes * 2 < data_traffic(&central).bytes);
}

#[test]
fn tcp_and_throttled_transports_cover_dema_and_centralized() {
    // Loopback TCP and the bandwidth-capped links against the sort oracle,
    // for both the protocol with a control plane and the plain baseline.
    let inputs = soccer_inputs(2, 2, 1_000, &[1, 1]);
    let expect = truths(&inputs, Quantile::MEDIAN);
    let engines = [
        EngineKind::Dema {
            gamma: GammaMode::Fixed(100),
            strategy: SelectionStrategy::WindowCut,
        },
        EngineKind::Centralized,
    ];
    for engine in engines {
        for transport in [
            TransportKind::Tcp,
            TransportKind::Throttled { mbits_per_sec: 500 },
        ] {
            let mut cfg = ClusterConfig::baseline(engine, Quantile::MEDIAN);
            cfg.transport = transport;
            let report = run_cluster(&cfg, inputs.clone()).unwrap();
            assert_eq!(
                report.values(),
                expect,
                "engine {} over {transport:?}",
                engine.label()
            );
            assert!(data_traffic(&report).bytes > 0);
        }
    }
}

#[test]
fn tcp_transport_matches_mem_transport() {
    let inputs = soccer_inputs(2, 2, 1_000, &[1, 1]);
    let mut mem_cfg = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);
    mem_cfg.transport = TransportKind::Mem;
    let mut tcp_cfg = mem_cfg.clone();
    tcp_cfg.transport = TransportKind::Tcp;
    let mem = run_cluster(&mem_cfg, inputs.clone()).unwrap();
    let tcp = run_cluster(&tcp_cfg, inputs).unwrap();
    assert_eq!(mem.values(), tcp.values());
    // Byte accounting parity between transports.
    assert_eq!(data_traffic(&mem).bytes, data_traffic(&tcp).bytes);
    assert_eq!(data_traffic(&mem).events, data_traffic(&tcp).events);
}

#[test]
fn latency_is_recorded_per_window() {
    let inputs = soccer_inputs(2, 5, 1_000, &[1, 1]);
    let report = run_cluster(&ClusterConfig::dema_fixed(100, Quantile::MEDIAN), inputs).unwrap();
    assert_eq!(report.latency.count(), 5);
    assert!(report.mean_latency_us().unwrap() >= 0.0);
    assert!(
        report.outcomes.iter().all(|o| o.latency_us < 10_000_000),
        "latency sane"
    );
}

#[test]
fn quantile_extremes_q01_and_q100() {
    let inputs = soccer_inputs(2, 2, 1_000, &[1, 1]);
    for q in [Quantile::new(0.01).unwrap(), Quantile::new(1.0).unwrap()] {
        let expect = truths(&inputs, q);
        let report = run_cluster(&ClusterConfig::dema_fixed(64, q), inputs.clone()).unwrap();
        assert_eq!(report.values(), expect, "q={q}");
    }
}

#[test]
fn per_node_gamma_stays_exact_and_beats_global_on_heterogeneous_nodes() {
    // Node 0: slow (1k events/s); node 1: fast (20k events/s) and value-
    // disjoint (scale 50) — its slices never hold the global 25% quantile,
    // so its γ should grow towards "one slice per window".
    let q = Quantile::new(0.25).unwrap();
    let inputs: Vec<Vec<Vec<dema_core::event::Event>>> = vec![
        dema_gen::SoccerGenerator::new(1, 1, 1_000, 0).take_windows(16, 1000),
        dema_gen::SoccerGenerator::new(2, 50, 20_000, 0).take_windows(16, 1000),
    ];
    let expect = truths(&inputs, q);

    let mut per_node_cfg = ClusterConfig::baseline(
        EngineKind::Dema {
            gamma: GammaMode::AdaptivePerNode { initial: 64 },
            strategy: SelectionStrategy::WindowCut,
        },
        q,
    );
    per_node_cfg.pace_window_ms = Some(8);
    let mut global_cfg = ClusterConfig::baseline(
        EngineKind::Dema {
            gamma: GammaMode::Adaptive { initial: 64 },
            strategy: SelectionStrategy::WindowCut,
        },
        q,
    );
    global_cfg.pace_window_ms = Some(8);

    let per_node = run_cluster(&per_node_cfg, inputs.clone()).unwrap();
    let global = run_cluster(&global_cfg, inputs).unwrap();

    // Exactness is non-negotiable under any γ policy.
    assert_eq!(per_node.values(), expect);
    assert_eq!(global.values(), expect);

    // The fast, never-a-candidate node should end up with far fewer
    // synopses under per-node γ, cutting identification traffic.
    let pn = data_traffic(&per_node);
    let gl = data_traffic(&global);
    assert!(
        pn.events < gl.events,
        "per-node γ should reduce traffic: {} vs {}",
        pn.events,
        gl.events
    );
}

#[test]
fn extra_quantiles_answered_from_one_calculation_step() {
    let inputs = soccer_inputs(3, 3, 2_000, &[1, 1, 1]);
    let mut cfg = ClusterConfig::dema_fixed(128, Quantile::MEDIAN);
    cfg.extra_quantiles = vec![Quantile::P25, Quantile::P75, Quantile::new(0.99).unwrap()];
    let report = run_cluster(&cfg, inputs.clone()).unwrap();
    for (w, outcome) in report.outcomes.iter().enumerate() {
        let per_node: Vec<Vec<dema_core::event::Event>> =
            inputs.iter().map(|n| n[w].clone()).collect();
        let truth = |q| quantile_ground_truth(&per_node, q).unwrap().value;
        assert_eq!(
            outcome.value,
            Some(truth(Quantile::MEDIAN)),
            "window {w} median"
        );
        assert_eq!(outcome.extra_values.len(), 3);
        assert_eq!(
            outcome.extra_values[0],
            truth(Quantile::P25),
            "window {w} p25"
        );
        assert_eq!(
            outcome.extra_values[1],
            truth(Quantile::P75),
            "window {w} p75"
        );
        assert_eq!(
            outcome.extra_values[2],
            truth(Quantile::new(0.99).unwrap()),
            "window {w} p99"
        );
    }

    // The shared run must cost less than four separate single-quantile runs.
    let shared = data_traffic(&report).plus(&report.control_traffic);
    let mut separate = dema_metrics::NetworkSnapshot::default();
    for q in [
        Quantile::MEDIAN,
        Quantile::P25,
        Quantile::P75,
        Quantile::new(0.99).unwrap(),
    ] {
        let r = run_cluster(&ClusterConfig::dema_fixed(128, q), inputs.clone()).unwrap();
        separate = separate.plus(&data_traffic(&r)).plus(&r.control_traffic);
    }
    assert!(
        shared.events < separate.events,
        "shared {} vs separate {}",
        shared.events,
        separate.events
    );
}
