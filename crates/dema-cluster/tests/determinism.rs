//! Thread-count determinism: the parallel window sort (`dema_core::par`)
//! must be invisible on the wire. A run with one sort thread and a run
//! with four must produce byte-identical results AND byte-identical
//! traffic counters — values, outcomes, per-node/control/tier bytes,
//! messages, and event counts all equal.

use dema_cluster::config::{ClusterConfig, EngineKind, GammaMode};
use dema_cluster::report::RunReport;
use dema_cluster::runner::run_cluster;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_gen::SoccerGenerator;

/// Aligned per-window inputs big enough to cross the parallel-sort
/// crossover ([`dema_core::par::PAR_SORT_MIN`] events per window), so the
/// four-thread run genuinely fans out across the pool.
fn big_inputs(n: usize, windows: usize) -> Vec<Vec<Vec<Event>>> {
    let rate = (dema_core::par::PAR_SORT_MIN + 1_000) as u64;
    (0..n)
        .map(|i| SoccerGenerator::new(42 + i as u64, 1, rate, 0).take_windows(windows, 1000))
        .collect()
}

/// Run one config at an explicit sort-thread budget.
fn run_at(mut config: ClusterConfig, threads: usize, inputs: &[Vec<Vec<Event>>]) -> RunReport {
    config.threads = Some(threads);
    run_cluster(&config, inputs.to_vec()).unwrap()
}

/// Every observable the report exposes that the protocol fixes
/// deterministically. (Wall-clock and latency are excluded — those are
/// exactly what threading is allowed to change.)
fn assert_reports_identical(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.values(), b.values(), "{label}: window values diverged");
    assert_eq!(
        a.outcomes.len(),
        b.outcomes.len(),
        "{label}: outcome counts diverged"
    );
    for (w, (oa, ob)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(oa.value, ob.value, "{label}: window {w} value");
        assert_eq!(
            oa.extra_values, ob.extra_values,
            "{label}: window {w} extra quantiles"
        );
        assert_eq!(
            oa.total_events, ob.total_events,
            "{label}: window {w} event count"
        );
    }
    assert_eq!(a.total_events, b.total_events, "{label}: total events");
    assert_eq!(
        a.per_node_traffic, b.per_node_traffic,
        "{label}: per-node traffic counters diverged — the sort leaked onto the wire"
    );
    assert_eq!(
        a.control_traffic, b.control_traffic,
        "{label}: control-plane traffic diverged"
    );
    assert_eq!(
        a.tier_traffic, b.tier_traffic,
        "{label}: tier traffic diverged"
    );
}

#[test]
fn dema_traffic_is_bit_identical_across_thread_counts() {
    let inputs = big_inputs(2, 3);
    let config = ClusterConfig::dema_fixed(512, Quantile::MEDIAN);
    let serial = run_at(config.clone(), 1, &inputs);
    let parallel = run_at(config, 4, &inputs);
    assert_reports_identical(&serial, &parallel, "dema");
    // Sanity: the run actually did work at this scale.
    assert!(serial.total_events as usize > 2 * dema_core::par::PAR_SORT_MIN);
}

#[test]
fn dec_sort_batches_are_bit_identical_across_thread_counts() {
    // DecSort ships the *sorted run itself*, so any instability in the
    // parallel sort would change wire bytes, not just ordering in memory.
    let inputs = big_inputs(2, 2);
    let config = ClusterConfig::baseline(EngineKind::DecSort, Quantile::P75);
    let serial = run_at(config.clone(), 1, &inputs);
    let parallel = run_at(config, 4, &inputs);
    assert_reports_identical(&serial, &parallel, "dec-sort");
}

#[test]
fn adaptive_gamma_stays_exact_across_thread_counts() {
    // Adaptive γ feeds observed l_G back into later windows' slicing, but
    // the update is delivered asynchronously on the control plane: which
    // window first slices with the new factor depends on arrival timing,
    // not on the sort-thread count, so traffic counters are legitimately
    // run-dependent here (the paced example in examples/adaptive_gamma.rs
    // is what makes the trajectory visible deterministically). What IS
    // invariant — for every γ trajectory — is exactness: Dema's answer
    // per window must be bit-identical no matter how the windows were
    // sliced or sorted. Pin that, at a window size that crosses the
    // parallel-sort crossover.
    let inputs = big_inputs(2, 3);
    let mut config = ClusterConfig::dema_fixed(256, Quantile::MEDIAN);
    config.engine = EngineKind::Dema {
        gamma: GammaMode::Adaptive { initial: 256 },
        strategy: SelectionStrategy::WindowCut,
    };
    let serial = run_at(config.clone(), 1, &inputs);
    let parallel = run_at(config, 4, &inputs);
    assert_eq!(
        serial.values(),
        parallel.values(),
        "adaptive: window values diverged"
    );
    assert_eq!(serial.total_events, parallel.total_events);
    for (w, (oa, ob)) in serial.outcomes.iter().zip(&parallel.outcomes).enumerate() {
        assert_eq!(oa.value, ob.value, "adaptive: window {w} value");
        assert_eq!(
            oa.total_events, ob.total_events,
            "adaptive: window {w} event count"
        );
    }
}
