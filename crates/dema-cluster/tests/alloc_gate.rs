//! Zero-alloc steady state: the dynamic twin of lint rules R15–R17.
//!
//! With the counting allocator armed (debug builds, or `--features strict`
//! in release), a Dema star run over the in-memory transport is executed
//! repeatedly: warm-up runs stock every size class onto the recycling
//! shelves, then a run under an [`AllocGate`] must perform **zero fresh
//! system allocations** — every request is served from the shelves — and
//! must stay bit-identical to the warm-up runs. Shelf inventory only
//! grows, but the *peak concurrent* demand of a size class depends on
//! thread interleaving, so the gate allows a bounded number of warm-up
//! rounds before the zero-fresh run must materialize.

use dema_cluster::config::ClusterConfig;
use dema_cluster::runner::run_cluster;
use dema_core::alloc::AllocGate;
use dema_core::event::Event;
use dema_core::quantile::Quantile;
use dema_gen::SoccerGenerator;

fn inputs(n: usize, windows: usize) -> Vec<Vec<Vec<Event>>> {
    (0..n)
        .map(|i| SoccerGenerator::new(7 + i as u64, 1, 2_000, 0).take_windows(windows, 1000))
        .collect()
}

#[test]
fn dema_star_steady_state_allocates_nothing_fresh() {
    if !dema_core::alloc::armed() {
        // Disarmed (plain release) builds have no counters to gate on.
        return;
    }
    let config = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    let ins = inputs(4, 3);

    // First pass pays every one-time cost (lazy statics, pool spin-up)
    // and seeds the shelves.
    let warm = run_cluster(&config, ins.clone()).expect("warm-up run");

    // Shelf inventory grows monotonically across runs, so within a few
    // rounds the shelves cover the worst interleaving's concurrent peak
    // and a run goes fully fresh-free. The last round is a hard gate.
    const ROUNDS: usize = 12;
    let mut steady = None;
    for round in 0..ROUNDS {
        let gate = AllocGate::steady_state("dema-star-mem");
        let report = run_cluster(&config, ins.clone()).expect("steady-state run");
        if round + 1 == ROUNDS {
            gate.assert_zero_fresh();
        }
        if gate.delta().fresh_total() == 0 {
            steady = Some(report);
            break;
        }
    }
    let steady = steady.expect("a zero-fresh steady-state run within the round budget");

    // The gated run must recycle real work, not dodge the allocator.
    assert!(
        steady.alloc.recycled > 0,
        "steady-state run should serve allocations from the shelves, got {:?}",
        steady.alloc
    );
    assert_eq!(
        warm.values(),
        steady.values(),
        "warm-up and steady-state runs must stay bit-identical"
    );
}

/// The per-run counter fold: an armed run reports its allocator activity
/// on `RunReport.alloc` (fresh per phase + recycled), so regressions are
/// visible in every harness run, not only under the gate.
#[test]
fn run_report_carries_alloc_counters() {
    if !dema_core::alloc::armed() {
        return;
    }
    let config = ClusterConfig::dema_fixed(64, Quantile::MEDIAN);
    let report = run_cluster(&config, inputs(2, 2)).expect("run");
    let moved = report.alloc.fresh_total() + report.alloc.recycled;
    assert!(
        moved > 0,
        "an armed run must observe allocator traffic, got {:?}",
        report.alloc
    );
}
