//! Golden-number regression test: the wire traffic of a fixed, seeded run
//! must never drift. The byte/message/event totals below were captured from
//! the pre-zero-copy implementation; any representation change that alters
//! what would go on the wire (as opposed to how it is stored in memory)
//! shows up here as a diff.

use dema_cluster::config::ClusterConfig;
use dema_cluster::runner::{data_traffic, run_cluster};
use dema_core::event::Event;
use dema_core::quantile::Quantile;

/// Deterministic synthetic inputs: `nodes` nodes × `windows` windows, a few
/// hundred events each, values from a fixed LCG so the run is reproducible
/// byte-for-byte without any RNG dependency.
fn seeded_inputs(nodes: usize, windows: usize, events_per_window: usize) -> Vec<Vec<Vec<Event>>> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..nodes)
        .map(|n| {
            (0..windows)
                .map(|w| {
                    (0..events_per_window)
                        .map(|i| {
                            Event::new(
                                (next() % 2000) as i64 - 1000,
                                (w * 1000 + i % 1000) as u64,
                                (n * 1_000_000 + w * 10_000 + i) as u64,
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[test]
fn byte_counters_are_stable_for_seeded_run() {
    let inputs = seeded_inputs(4, 3, 300);
    let config = ClusterConfig::dema_fixed(32, Quantile::MEDIAN);
    let report = run_cluster(&config, inputs).unwrap();

    // Sanity: the run produced a result for every window.
    assert_eq!(report.outcomes.len(), 3);
    assert!(report.outcomes.iter().all(|o| o.value.is_some()));

    let data = data_traffic(&report);
    let control = report.control_traffic;

    // Golden totals captured from the baseline implementation. The
    // data-plane totals must match bit-for-bit: zero-copy refactors change
    // in-memory representation, never the wire accounting.
    assert_eq!(
        (data.bytes, data.messages, data.events),
        (GOLDEN_DATA.0, GOLDEN_DATA.1, GOLDEN_DATA.2),
        "data-plane traffic drifted from the golden baseline"
    );
    assert_eq!(
        (control.bytes, control.messages, control.events),
        (GOLDEN_CONTROL.0, GOLDEN_CONTROL.1, GOLDEN_CONTROL.2),
        "control-plane traffic drifted from the golden baseline"
    );
}

/// (bytes, messages, events) for the data plane of the seeded run above.
const GOLDEN_DATA: (u64, u64, u64) = (19156, 28, 848);
/// (bytes, messages, events) for the control plane of the seeded run above.
const GOLDEN_CONTROL: (u64, u64, u64) = (280, 12, 0);
