//! Run the same small Dema workload over the in-memory and the real TCP
//! loopback transport and show that the answers — and the accounted wire
//! bytes — are identical.
//!
//! ```sh
//! cargo run --release -p dema-cluster --example tcp_run
//! ```

use dema_cluster::config::{ClusterConfig, TransportKind};
use dema_cluster::runner::{data_traffic, run_cluster};
use dema_core::event::Event;
use dema_core::quantile::Quantile;

fn inputs() -> Vec<Vec<Vec<Event>>> {
    // 2 locals × 3 windows; a fixed LCG keeps the run reproducible.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64 % 10_000
    };
    (0..2)
        .map(|n| {
            (0..3)
                .map(|w| {
                    (0..2_000)
                        .map(|i| Event::new(next(), w, (n * 1_000_000 + w * 10_000 + i) as u64))
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn main() {
    let inputs = inputs();
    let mut config = ClusterConfig::dema_fixed(100, Quantile::MEDIAN);

    config.transport = TransportKind::Mem;
    let mem = run_cluster(&config, inputs.clone()).expect("mem run");

    config.transport = TransportKind::Tcp;
    let tcp = run_cluster(&config, inputs).expect("tcp run");

    println!("window  mem_median  tcp_median");
    for (m, t) in mem.outcomes.iter().zip(&tcp.outcomes) {
        println!("{:>6}  {:>10?}  {:>10?}", m.window.0, m.value, t.value);
    }
    let (mb, tb) = (data_traffic(&mem), data_traffic(&tcp));
    println!("data bytes: mem={} tcp={}", mb.bytes, tb.bytes);
    assert_eq!(
        mem.values(),
        tcp.values(),
        "transports must agree on every quantile"
    );
    assert_eq!(
        mb.bytes, tb.bytes,
        "byte accounting must be transport-independent"
    );
    assert_eq!(mb.events, tb.events);
    println!("ok: identical answers and identical accounted traffic");
}
