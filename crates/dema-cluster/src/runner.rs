//! Orchestration: build the topology, host the node roles on reactor
//! shards, drive the root on its own reactor, collect the report.
//!
//! Wiring is engine-agnostic: everything engine-specific the runner needs
//! (does the engine have a control plane? what γ do locals start with? is
//! the configuration valid?) comes from the engine registry in
//! [`crate::engines`]. The overlay between leaves and root is either the
//! flat star of the paper's experiments or a multi-level aggregation tree
//! of relay nodes ([`Topology::Tree`]), with per-tier traffic attribution
//! in [`crate::report::TierTraffic`].
//!
//! Concurrency model (DESIGN.md §13): instead of one thread per node, the
//! runner spawns `threads` reactor shards and hash-assigns each local node
//! (with its responder) and each relay to a shard by id. Every shard is a
//! single [`dema_net::reactor::Reactor`] event loop hosting its bucket of
//! [`crate::host`] roles; the caller's thread hosts the root the same way.
//! A run at `threads = 1000-node scale` therefore costs `threads + 1`
//! OS threads, not `2·nodes + relays`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::{Event, NodeId};
use dema_core::sync::{rank, Mutex};
use dema_metrics::{FaultCounters, NetworkCounters, NetworkSnapshot, ReactorStats};
use dema_net::fault::FaultPlan;
use dema_net::mem::{link, throttled_link, Throttle};
use dema_net::reactor::{spawn_shard, Handler, Reactor, RecvSource};
use dema_net::tcp::{accept, listen, TcpSender};
use dema_net::{MsgReceiver, MsgSender, NetError, SharedCounters};

use crate::config::{ClusterConfig, EngineKind, Topology, TransportKind};
use crate::engines::{self, ResilienceCtx};
use crate::host::{
    LocalRole, RelayChildRoute, RelayRole, ResponderRole, RoleHost, RootRole, Stepper,
};
use crate::local::{stream_windows, CloseTimes, LocalShared, LocalStepper};
use crate::membership::EpochLedger;
use crate::relay::{RelayChild, RoutedSender};
use crate::report::{RunReport, TierTraffic};
use crate::root::RootNode;
use crate::ClusterError;

/// How long a TCP link gets to complete its loopback handshake before the
/// run aborts with the underlying I/O error.
const TCP_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// One unidirectional wired link.
type Link = (Box<dyn MsgSender>, Box<dyn MsgReceiver>);

/// Interpose a fault-injecting wrapper when the plan actually perturbs
/// anything; transparent plans (and no plan) keep the bare sender.
fn wrap_faulty(
    tx: Box<dyn MsgSender>,
    plan: Option<&FaultPlan>,
    counters: &SharedCounters,
) -> Box<dyn MsgSender> {
    match plan {
        Some(p) if !p.is_transparent() => {
            Box::new(p.clone().wrap(tx, SharedCounters::clone(counters)))
        }
        _ => tx,
    }
}

/// Build a link of the configured transport whose traffic lands in
/// `counters`. `throttle` carries the sending node's simulated link for
/// [`TransportKind::Throttled`].
fn make_link(
    kind: TransportKind,
    counters: SharedCounters,
    throttle: Option<&std::sync::Arc<Throttle>>,
) -> Result<Link, ClusterError> {
    match kind {
        TransportKind::Mem => {
            let (tx, rx) = link(counters);
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Throttled { .. } => {
            let throttle = throttle.ok_or_else(|| {
                ClusterError::Protocol("throttled transport needs a link throttle".into())
            })?;
            let (tx, rx) = throttled_link(counters, std::sync::Arc::clone(throttle));
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Tcp => {
            let addr = "127.0.0.1:0"
                .parse()
                .map_err(|e| ClusterError::Protocol(format!("loopback addr: {e}")))?;
            let listener = listen(addr)?;
            let addr = listener.local_addr().map_err(NetError::Io)?;
            // Loopback connects complete against the listener's backlog, so
            // connect-then-accept cannot deadlock; a bounded connect keeps a
            // broken environment from hanging the run and surfaces the real
            // I/O error instead of a thread panic.
            let tx = TcpSender::connect_timeout(addr, counters, TCP_CONNECT_TIMEOUT)?;
            let receiver = accept(&listener)?;
            // Reactor-hosted endpoints must never block the shard: convert
            // both sides to nonblocking mode up front. Partial writes park
            // in the sender's outbound buffer and drain on writability
            // retries (`MsgSender::flush_pending`).
            Ok((
                Box::new(tx.into_nonblocking()?),
                Box::new(receiver.into_nonblocking()?),
            ))
        }
    }
}

/// The per-node work a cluster run executes.
enum NodeWork {
    /// Pre-windowed inputs: element `w` is window `w`'s event set.
    Windowed(Vec<Vec<Event>>),
    /// Raw event-time stream, windowed on the node by watermarks.
    Streaming {
        /// This node's events (roughly time-ordered; out-of-orderness beyond
        /// the lateness bound is dropped and counted).
        events: Vec<Event>,
        /// Tumbling window length (ms).
        window_len: u64,
        /// Global `(first, last)` absolute window ids all nodes report.
        range: (u64, u64),
        /// Watermark slack (ms).
        lateness: u64,
    },
}

/// A wired subtree as seen by its parent-to-be: the uplink receivers the
/// parent drains, the downlink sender the parent feeds (if the engine has a
/// control plane), and the leaf id range the subtree covers.
struct ChildHandle {
    ups: Vec<Box<dyn MsgReceiver>>,
    ctl: Option<Box<dyn MsgSender>>,
    range: (u32, u32),
    leaf: bool,
}

/// Run one cluster experiment over pre-windowed inputs.
///
/// `inputs[n][w]` holds the events of local node `n` for window `w`; every
/// node must provide the same number of windows (align with
/// `take_windows`). Returns the full [`RunReport`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run.
pub fn run_cluster(
    config: &ClusterConfig,
    inputs: Vec<Vec<Vec<Event>>>,
) -> Result<RunReport, ClusterError> {
    let n_locals = inputs.len();
    assert!(n_locals > 0, "need at least one local node");
    let windows = inputs[0].len();
    assert!(
        inputs.iter().all(|w| w.len() == windows),
        "all local nodes must cover the same window range"
    );
    let total_events: u64 = inputs.iter().flatten().map(|w| w.len() as u64).sum();
    run_cluster_inner(
        config,
        inputs.into_iter().map(NodeWork::Windowed).collect(),
        windows as u64,
        total_events,
    )
}

/// Run one cluster experiment over raw event-time streams: each local node
/// derives tumbling windows of `window_len` ms from event timestamps and
/// closes them as its watermark (max event time − `allowed_lateness_ms`)
/// advances. Events arriving behind the watermark are dropped and counted
/// in [`RunReport::late_events`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run; an input
/// with no events at all is rejected.
pub fn run_cluster_streaming(
    config: &ClusterConfig,
    streams: Vec<Vec<Event>>,
    window_len: u64,
    allowed_lateness_ms: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = streams.len();
    assert!(n_locals > 0, "need at least one local node");
    assert!(window_len > 0, "window length must be positive");
    let total_events: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for e in streams.iter().flatten() {
        first = first.min(e.ts / window_len);
        last = last.max(e.ts / window_len);
    }
    if total_events == 0 {
        return Err(ClusterError::Core(dema_core::DemaError::EmptyWindow));
    }
    let windows = last - first + 1;
    run_cluster_inner(
        config,
        streams
            .into_iter()
            .map(|events| NodeWork::Streaming {
                events,
                window_len,
                range: (first, last),
                lateness: allowed_lateness_ms,
            })
            .collect(),
        windows,
        total_events,
    )
}

/// Reject topologies the wiring cannot realize.
fn validate_topology(topology: Topology) -> Result<(), ClusterError> {
    if let Topology::Tree { fanout, depth } = topology {
        if fanout < 2 {
            return Err(ClusterError::Protocol(format!(
                "tree topology needs fanout ≥ 2, got {fanout}"
            )));
        }
        if depth < 2 {
            return Err(ClusterError::Protocol(format!(
                "tree topology needs depth ≥ 2 (depth 1 is the star), got {depth}"
            )));
        }
    }
    Ok(())
}

/// Reject membership plans the runtime cannot honor, and build the epoch
/// ledger for a staged plan (`None` for fixed membership). Churn is a
/// Dema-engine, star-topology feature: the drain handshake needs the
/// engine's control plane and per-leaf control links (README's per-engine
/// matrix documents the restriction).
fn validate_membership(
    config: &ClusterConfig,
    windows: u64,
    n_locals: usize,
) -> Result<Option<EpochLedger>, ClusterError> {
    if config.membership.is_empty() {
        return Ok(None);
    }
    if !matches!(config.engine, EngineKind::Dema { .. }) {
        return Err(ClusterError::Protocol(
            "membership churn requires the Dema engine".into(),
        ));
    }
    if !matches!(config.topology, Topology::Star) {
        return Err(ClusterError::Protocol(
            "membership churn requires the star topology".into(),
        ));
    }
    for change in &config.membership.changes {
        if change.window >= windows {
            return Err(ClusterError::Protocol(format!(
                "membership boundary {} is not below the run's {} windows",
                change.window, windows
            )));
        }
    }
    EpochLedger::from_plan(n_locals, &config.membership).map(Some)
}

/// Shared orchestration: wire links, spawn node threads, drive the root.
fn run_cluster_inner(
    config: &ClusterConfig,
    work: Vec<NodeWork>,
    windows: u64,
    total_events: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = work.len();

    engines::validate(config.engine)?;
    validate_topology(config.topology)?;
    let ledger = validate_membership(config, windows, n_locals)?;
    // A churn plan restricts each node's contribution to its membership
    // span: input rows outside `[join, leave)` are dropped here, so callers
    // hand every node the same full-length window table regardless of the
    // plan, and the per-node steppers see exactly the windows they owe.
    let (work, total_events) = match &ledger {
        None => (work, total_events),
        Some(ledger) => {
            let mut sliced = Vec::with_capacity(work.len());
            let mut total = 0u64;
            for (n, node_work) in work.into_iter().enumerate() {
                let NodeWork::Windowed(ws) = node_work else {
                    return Err(ClusterError::Protocol(
                        "membership churn requires pre-windowed inputs".into(),
                    ));
                };
                let first = ledger.join_window(n as u32) as usize;
                let last = ledger
                    .leave_window(n as u32)
                    .map_or(ws.len(), |w| w as usize);
                let span: Vec<Vec<Event>> = ws
                    .into_iter()
                    .enumerate()
                    .filter(|(w, _)| (first..last).contains(w))
                    .map(|(_, events)| events)
                    .collect();
                total += span.iter().map(|w| w.len() as u64).sum::<u64>();
                sliced.push(NodeWork::Windowed(span));
            }
            (sliced, total)
        }
    };

    let close_times: CloseTimes = crate::local::new_close_times();
    let resilient = config.resilience.is_some();
    // Resilience promotes every engine to a control plane: the root needs a
    // root→local path for its retry NACKs, and each local a responder to
    // serve them from its sent-message cache.
    let control_plane = engines::descriptor(config.engine).control_plane || resilient;
    let initial_gamma = engines::initial_gamma(config.engine);
    let fault_counters = FaultCounters::new_shared();
    // Frames the fault wrappers attempted (including dropped ones) — kept
    // separate so the report's per-node traffic stays what the wire saw.
    let injected_counters = NetworkCounters::new_shared();

    // Wire tier 0: one data link per local (leaf → parent), and for engines
    // with a control plane one control link per local (parent → leaf) plus a
    // second uplink for the responder, accounted in the same counters.
    let mut data_counters = Vec::with_capacity(n_locals);
    let control_counters = NetworkCounters::new_shared();
    let mut data_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut control_rx: Vec<Box<dyn MsgReceiver>> = Vec::with_capacity(n_locals);
    let mut responder_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut children: Vec<ChildHandle> = Vec::with_capacity(n_locals);
    // Simulated full-duplex per-node links for the throttled transport: the
    // data path and the responder share the node's uplink; the control path
    // uses the downlink.
    let throttle_mbits = match config.transport {
        TransportKind::Throttled { mbits_per_sec } => Some(mbits_per_sec),
        _ => None,
    };
    for n in 0..n_locals {
        let uplink = throttle_mbits.map(Throttle::new_shared);
        let downlink = throttle_mbits.map(Throttle::new_shared);
        let counters = NetworkCounters::new_shared();
        let node_faults = config.faults.iter().find(|f| f.node == n as u32);
        let (tx, rx) = make_link(
            config.transport,
            SharedCounters::clone(&counters),
            uplink.as_ref(),
        )?;
        let tx = wrap_faulty(
            tx,
            node_faults.and_then(|f| f.uplink.as_ref()),
            &injected_counters,
        );
        let mut ups = vec![rx];
        let mut ctl = None;
        if control_plane {
            let (ctl_tx, ctl_rx) = make_link(
                config.transport,
                SharedCounters::clone(&control_counters),
                downlink.as_ref(),
            )?;
            ctl = Some(wrap_faulty(
                ctl_tx,
                node_faults.and_then(|f| f.control.as_ref()),
                &injected_counters,
            ));
            control_rx.push(ctl_rx);
            let (resp_tx, resp_rx) = make_link(
                config.transport,
                SharedCounters::clone(&counters),
                uplink.as_ref(),
            )?;
            responder_tx.push(wrap_faulty(
                resp_tx,
                node_faults.and_then(|f| f.responder.as_ref()),
                &injected_counters,
            ));
            ups.push(resp_rx);
        }
        data_counters.push(counters);
        data_tx.push(tx);
        children.push(ChildHandle {
            ups,
            ctl,
            range: (n as u32, n as u32),
            leaf: true,
        });
    }

    // Wire the relay tiers (none for the star): each pass groups up to
    // `fanout` children under a fresh relay until only the root's direct
    // children remain. Every relay gets its own uplink counters (and
    // downlink counters when the engine has a control plane) so the report
    // can attribute traffic per tier.
    let mut relay_specs = Vec::new(); // deferred spawns: (ups, up_tx, down_rx, relay_children)
    let mut relay_tier_counters: Vec<Vec<(SharedCounters, Option<SharedCounters>)>> = Vec::new();
    if let Topology::Tree { fanout, depth } = config.topology {
        for _tier in 1..depth {
            let mut next: Vec<ChildHandle> = Vec::new();
            let mut tier_counters = Vec::new();
            let mut iter = children.into_iter().peekable();
            while iter.peek().is_some() {
                let group: Vec<ChildHandle> = iter.by_ref().take(fanout).collect();
                let up_counters = NetworkCounters::new_shared();
                let up_throttle = throttle_mbits.map(Throttle::new_shared);
                let (up_tx, up_rx) = make_link(
                    config.transport,
                    SharedCounters::clone(&up_counters),
                    up_throttle.as_ref(),
                )?;
                let mut down_counters = None;
                let mut parent_ctl = None;
                let mut relay_down_rx = None;
                if control_plane {
                    let c = NetworkCounters::new_shared();
                    let down_throttle = throttle_mbits.map(Throttle::new_shared);
                    let (tx, rx) = make_link(
                        config.transport,
                        SharedCounters::clone(&c),
                        down_throttle.as_ref(),
                    )?;
                    down_counters = Some(c);
                    parent_ctl = Some(tx);
                    relay_down_rx = Some(rx);
                }
                tier_counters.push((up_counters, down_counters));

                let mut ups = Vec::new();
                let mut relay_children = Vec::new();
                let mut range = (u32::MAX, 0u32);
                for ch in group {
                    range.0 = range.0.min(ch.range.0);
                    range.1 = range.1.max(ch.range.1);
                    ups.extend(ch.ups);
                    if let Some(sender) = ch.ctl {
                        relay_children.push(RelayChild {
                            range: ch.range,
                            sender,
                            leaf: ch.leaf,
                        });
                    }
                }
                relay_specs.push((ups, up_tx, relay_down_rx, relay_children));
                next.push(ChildHandle {
                    ups: vec![up_rx],
                    ctl: parent_ctl,
                    range,
                    leaf: false,
                });
            }
            children = next;
            relay_tier_counters.push(tier_counters);
        }
    }

    // The root's per-leaf control senders: direct links in the star, routed
    // envelopes over each top child's shared downlink in a tree. Children
    // arrive in leaf order, so pushing per range keeps index == node id.
    let mut control_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut root_rx: Vec<Box<dyn MsgReceiver>> = Vec::new();
    for ch in children {
        root_rx.extend(ch.ups);
        let Some(ctl) = ch.ctl else { continue };
        if ch.leaf {
            control_tx.push(ctl);
        } else {
            let shared: Arc<Mutex<Box<dyn MsgSender>>> =
                Arc::new(Mutex::new(rank::ROUTED_DOWNLINK, ctl));
            for leaf in ch.range.0..=ch.range.1 {
                control_tx.push(Box::new(RoutedSender::new(
                    NodeId(leaf),
                    Arc::clone(&shared),
                )));
            }
        }
    }

    let started = Instant::now();
    let alloc_before = dema_core::alloc::snapshot();
    let wire_before = dema_wire::pool::BufferPool::global().stats();
    let reactor_stats = ReactorStats::new_shared();

    // Shard the node roles over `threads` reactors: each shard hosts its
    // bucket of locals (with their responders) and relays on ONE event
    // loop. The shard count doubles as the per-node sort budget, keeping
    // the `DEMA_THREADS` semantics of the threaded runner.
    let engine = config.engine;
    let pace = config.pace_window_ms;
    let sort_threads = config
        .threads
        .unwrap_or_else(dema_core::par::default_threads);
    let shards = sort_threads.max(1);

    let mut shard_locals: Vec<Vec<LocalNodeSpec>> = (0..shards).map(|_| Vec::new()).collect();
    for (n, node_work) in work.into_iter().enumerate() {
        let responder = control_plane.then(|| (control_rx.remove(0), responder_tx.remove(0)));
        let (first_window, leave_window) = match &ledger {
            Some(l) => (l.join_window(n as u32), l.leave_window(n as u32)),
            None => (0, None),
        };
        shard_locals[n % shards].push(LocalNodeSpec {
            node: NodeId(n as u32),
            work: node_work,
            up: data_tx.remove(0),
            responder,
            first_window,
            leave_window,
        });
    }
    let mut shard_relays: Vec<Vec<RelaySpec>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, (ups, parent_up, parent_down, children)) in relay_specs.into_iter().enumerate() {
        shard_relays[i % shards].push(RelaySpec {
            ups,
            parent_up,
            parent_down,
            children,
        });
    }

    let mut handles = Vec::new();
    for (i, (locals, relays)) in shard_locals.into_iter().zip(shard_relays).enumerate() {
        if locals.is_empty() && relays.is_empty() {
            continue;
        }
        let ct = Arc::clone(&close_times);
        let stats = Arc::clone(&reactor_stats);
        handles.push(
            spawn_shard(format!("dema-shard-{i}"), move || {
                run_shard(
                    engine,
                    initial_gamma,
                    resilient,
                    sort_threads,
                    pace,
                    ct,
                    locals,
                    relays,
                    stats,
                )
            })
            .map_err(|e| ClusterError::Net(NetError::Io(e)))?,
        );
    }

    // Host the root on this thread's own reactor: every uplink receiver is
    // a source, and retry / liveness deadlines surface as reactor timers
    // ([`RootNode::next_deadline`]) instead of a tick per polling sweep.
    let mut root = RootNode::with_extra_quantiles(
        config.quantile,
        config.extra_quantiles.clone(),
        config.engine,
        n_locals,
        windows,
        control_tx,
        Arc::clone(&close_times),
        config.resilience.map(|r| ResilienceCtx {
            config: r,
            counters: Arc::clone(&fault_counters),
        }),
        config.pipeline_depth,
    );
    if ledger.is_some() {
        root = root.with_membership(&config.membership)?;
    }
    let mut root_reactor = Reactor::new(Arc::clone(&reactor_stats));
    let mut root_host = RoleHost::new(RootRole::new(root), Vec::new());
    for (i, rx) in root_rx.into_iter().enumerate() {
        root_reactor.register(0, i, Box::new(RecvSource(rx)));
    }
    {
        let mut handlers: Vec<&mut dyn Handler<ClusterError>> = vec![&mut root_host];
        // The host absorbs role errors, so the loop itself cannot fail.
        root_reactor.run(&mut handlers)?;
    }
    let wall_time = started.elapsed();

    let (root_role, root_err) = root_host.into_parts();
    let mut result: Result<(), ClusterError> = root_err.map_or(Ok(()), Err);
    let root = root_role.into_root();
    // Dropping the root's control senders (inside `into_results`) cascades
    // the shutdown: responder roles retire on control-link disconnect,
    // relay roles cascade the close downward and retire as both of their
    // directions drain, and each shard's reactor exits once every hosted
    // role is done. The uplink receivers (owned by `root_reactor`) must
    // stay alive until the shards are reaped: a drained responder may
    // still be emitting its post-`DrainComplete` `StreamEnd` sign-off
    // after the root has already accounted it, and dropping the receiver
    // first would turn that clean handshake into a spurious Disconnected.
    let late_events = root.late_events();
    let epochs = root.epoch_stats();
    let drained_nodes = root.drained_nodes();
    let dead_nodes = root.dead_nodes();
    let (outcomes, latency) = root.into_results();
    let faulty_run = !config.faults.is_empty();
    for h in handles {
        match h.join() {
            Ok(errors) => {
                for e in errors {
                    match e {
                        // Fault-injected runs sever links by design; a node
                        // seeing its own link die is the scenario, not a
                        // failure.
                        ClusterError::Net(NetError::Disconnected) if faulty_run => {}
                        e => result = result.and(Err(e)),
                    }
                }
            }
            Err(_) => result = result.and(Err(ClusterError::NodePanic("reactor shard".into()))),
        }
    }
    drop(root_reactor);
    result?;

    // Per-tier attribution: tier 0 is the leaf links (per-leaf data
    // counters up, the shared control counter down), each relay pass adds a
    // tier of per-relay-edge counters. The star reports no tiers — its only
    // tier is already `per_node_traffic` / `control_traffic`.
    let mut tier_traffic = Vec::new();
    if !relay_tier_counters.is_empty() {
        let mut tier0 = TierTraffic {
            up: data_counters.iter().map(|c| c.snapshot()).collect(),
            down: Vec::new(),
        };
        if control_plane {
            tier0.down.push(control_counters.snapshot());
        }
        tier_traffic.push(tier0);
        for tier in &relay_tier_counters {
            let mut t = TierTraffic::default();
            for (up, down) in tier {
                t.up.push(up.snapshot());
                if let Some(down) = down {
                    t.down.push(down.snapshot());
                }
            }
            tier_traffic.push(t);
        }
    }

    Ok(RunReport {
        outcomes,
        per_node_traffic: data_counters.iter().map(|c| c.snapshot()).collect(),
        control_traffic: control_counters.snapshot(),
        wall_time,
        total_events,
        latency,
        late_events,
        tier_traffic,
        fault_stats: fault_counters.snapshot(),
        reactor: reactor_stats.snapshot(),
        epochs,
        drained_nodes,
        dead_nodes,
        alloc: dema_core::alloc::snapshot().since(&alloc_before),
        wire: dema_wire::pool::BufferPool::global()
            .stats()
            .since(&wire_before),
    })
}

/// Everything a shard needs to host one local node: its input, its data
/// uplink, and (for control-plane engines) the responder's pair of links.
struct LocalNodeSpec {
    node: NodeId,
    work: NodeWork,
    up: Box<dyn MsgSender>,
    /// Control-plane engines: the root→local control receiver paired with
    /// the responder's uplink. One option, so a half-wired responder is
    /// unrepresentable.
    responder: Option<(Box<dyn MsgReceiver>, Box<dyn MsgSender>)>,
    /// First window this node produces (0 unless it is a planned joiner).
    first_window: u64,
    /// Epoch boundary this node leaves at (`None` for members that stay).
    leave_window: Option<u64>,
}

/// Everything a shard needs to host one relay node.
struct RelaySpec {
    ups: Vec<Box<dyn MsgReceiver>>,
    parent_up: Box<dyn MsgSender>,
    parent_down: Option<Box<dyn MsgReceiver>>,
    children: Vec<RelayChild>,
}

/// Host one shard's bucket of locals, responders, and relays on a single
/// reactor event loop, and return every error the hosted roles recorded
/// (a failing role retires — dropping its links — without stopping the
/// shard, matching the threaded runner's per-thread error semantics).
#[allow(clippy::too_many_arguments)] // one-shot plumbing from run_cluster_inner
fn run_shard(
    engine: EngineKind,
    initial_gamma: u64,
    resilient: bool,
    sort_threads: usize,
    pace: Option<u64>,
    close_times: CloseTimes,
    locals: Vec<LocalNodeSpec>,
    relays: Vec<RelaySpec>,
    stats: Arc<ReactorStats>,
) -> Vec<ClusterError> {
    // The shared per-node state outlives the roles borrowing it below.
    let shareds: Vec<Arc<LocalShared>> = locals
        .iter()
        .map(|_| LocalShared::configured(initial_gamma, resilient, sort_threads))
        .collect();
    let mut reactor = Reactor::new(stats);
    let mut hosts: Vec<RoleHost<Box<dyn Stepper + '_>>> = Vec::new();
    for (spec, shared) in locals.into_iter().zip(&shareds) {
        let node = spec.node;
        let (stepper, node_pace) = match spec.work {
            NodeWork::Windowed(node_windows) => {
                let mut stepper = LocalStepper::new(node, node_windows, engine, shared)
                    .with_first_window(spec.first_window);
                if let Some(boundary) = spec.leave_window {
                    stepper = stepper.with_leave_window(boundary);
                }
                (stepper, pace)
            }
            NodeWork::Streaming {
                events,
                window_len,
                range,
                lateness,
            } => {
                let (node_windows, late) =
                    stream_windows(node, events, window_len, range, lateness);
                (
                    LocalStepper::new(node, node_windows, engine, shared).with_late_events(late),
                    // Streaming inputs carry their own event-time cadence.
                    None,
                )
            }
        };
        let role = LocalRole::new(node, stepper, Arc::clone(&close_times), node_pace);
        hosts.push(RoleHost::new(
            Box::new(role) as Box<dyn Stepper + '_>,
            vec![spec.up],
        ));
        if let Some((ctl_rx, resp_up)) = spec.responder {
            reactor.register(hosts.len(), 0, Box::new(RecvSource(ctl_rx)));
            hosts.push(RoleHost::new(
                Box::new(ResponderRole::new(node, shared)) as Box<dyn Stepper + '_>,
                vec![resp_up],
            ));
        }
    }
    for spec in relays {
        let handler = hosts.len();
        let n_ups = spec.ups.len();
        let mut senders: Vec<Box<dyn MsgSender>> = vec![spec.parent_up];
        let mut routes = Vec::with_capacity(spec.children.len());
        for child in spec.children {
            routes.push(RelayChildRoute {
                range: child.range,
                via: senders.len(),
                leaf: child.leaf,
            });
            senders.push(child.sender);
        }
        for (i, rx) in spec.ups.into_iter().enumerate() {
            reactor.register(handler, i, Box::new(RecvSource(rx)));
        }
        let has_down = spec.parent_down.is_some();
        if let Some(down) = spec.parent_down {
            reactor.register(handler, n_ups, Box::new(RecvSource(down)));
        }
        hosts.push(RoleHost::new(
            Box::new(RelayRole::new(n_ups, routes, has_down)) as Box<dyn Stepper + '_>,
            senders,
        ));
    }
    let mut handlers: Vec<&mut dyn Handler<ClusterError>> = hosts
        .iter_mut()
        .map(|h| h as &mut dyn Handler<ClusterError>)
        .collect();
    if let Err(e) = reactor.run(&mut handlers) {
        // Unreachable — hosts absorb role errors — but keep it visible.
        return vec![e];
    }
    hosts.iter_mut().filter_map(RoleHost::take_error).collect()
}

/// Convenience: run the same inputs through a second engine and return both
/// reports (used by accuracy experiments that need identical inputs).
pub fn run_pair(
    a: &ClusterConfig,
    b: &ClusterConfig,
    inputs: &[Vec<Vec<Event>>],
) -> Result<(RunReport, RunReport), ClusterError> {
    let ra = run_cluster(a, inputs.to_vec())?;
    let rb = run_cluster(b, inputs.to_vec())?;
    Ok((ra, rb))
}

/// Aggregate helper: total data-plane traffic of a report.
pub fn data_traffic(report: &RunReport) -> NetworkSnapshot {
    report
        .per_node_traffic
        .iter()
        .fold(NetworkSnapshot::default(), |acc, s| acc.plus(s))
}
