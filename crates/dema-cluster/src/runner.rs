//! Orchestration: build the topology, spawn node threads, drive the root,
//! collect the report.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::{Event, NodeId};
use dema_metrics::{NetworkCounters, NetworkSnapshot};
use dema_net::mem::{link, throttled_link, Throttle};
use dema_net::tcp::{accept, listen, TcpSender};
use dema_net::{MsgReceiver, MsgSender, NetError, SharedCounters};
use parking_lot::Mutex;

use crate::config::{ClusterConfig, EngineKind, TransportKind};
use crate::local::{run_local, run_local_streaming, run_responder, CloseTimes, LocalShared};
use crate::report::RunReport;
use crate::root::RootNode;
use crate::ClusterError;

/// One unidirectional wired link.
type Link = (Box<dyn MsgSender>, Box<dyn MsgReceiver>);

/// Build a link of the configured transport whose traffic lands in
/// `counters`. `throttle` carries the sending node's simulated link for
/// [`TransportKind::Throttled`].
fn make_link(
    kind: TransportKind,
    counters: SharedCounters,
    throttle: Option<&std::sync::Arc<Throttle>>,
) -> Result<Link, ClusterError> {
    match kind {
        TransportKind::Mem => {
            let (tx, rx) = link(counters);
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Throttled { .. } => {
            let throttle = throttle.ok_or_else(|| {
                ClusterError::Protocol("throttled transport needs a link throttle".into())
            })?;
            let (tx, rx) = throttled_link(counters, std::sync::Arc::clone(throttle));
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Tcp => {
            let addr = "127.0.0.1:0"
                .parse()
                .map_err(|e| ClusterError::Protocol(format!("loopback addr: {e}")))?;
            let listener = listen(addr)?;
            let addr = listener.local_addr().map_err(NetError::Io)?;
            let sender = std::thread::spawn(move || TcpSender::connect(addr, counters));
            let receiver = accept(&listener)?;
            let tx = sender
                .join()
                .map_err(|_| ClusterError::NodePanic("tcp connect".into()))??;
            Ok((Box::new(tx), Box::new(receiver)))
        }
    }
}

/// The per-node work a cluster run executes.
enum NodeWork {
    /// Pre-windowed inputs: element `w` is window `w`'s event set.
    Windowed(Vec<Vec<Event>>),
    /// Raw event-time stream, windowed on the node by watermarks.
    Streaming {
        /// This node's events (roughly time-ordered; out-of-orderness beyond
        /// the lateness bound is dropped and counted).
        events: Vec<Event>,
        /// Tumbling window length (ms).
        window_len: u64,
        /// Global `(first, last)` absolute window ids all nodes report.
        range: (u64, u64),
        /// Watermark slack (ms).
        lateness: u64,
    },
}

/// Run one cluster experiment over pre-windowed inputs.
///
/// `inputs[n][w]` holds the events of local node `n` for window `w`; every
/// node must provide the same number of windows (align with
/// `take_windows`). Returns the full [`RunReport`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run.
pub fn run_cluster(
    config: &ClusterConfig,
    inputs: Vec<Vec<Vec<Event>>>,
) -> Result<RunReport, ClusterError> {
    let n_locals = inputs.len();
    assert!(n_locals > 0, "need at least one local node");
    let windows = inputs[0].len();
    assert!(
        inputs.iter().all(|w| w.len() == windows),
        "all local nodes must cover the same window range"
    );
    let total_events: u64 = inputs.iter().flatten().map(|w| w.len() as u64).sum();
    run_cluster_inner(
        config,
        inputs.into_iter().map(NodeWork::Windowed).collect(),
        windows as u64,
        total_events,
    )
}

/// Run one cluster experiment over raw event-time streams: each local node
/// derives tumbling windows of `window_len` ms from event timestamps and
/// closes them as its watermark (max event time − `allowed_lateness_ms`)
/// advances. Events arriving behind the watermark are dropped and counted
/// in [`RunReport::late_events`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run; an input
/// with no events at all is rejected.
pub fn run_cluster_streaming(
    config: &ClusterConfig,
    streams: Vec<Vec<Event>>,
    window_len: u64,
    allowed_lateness_ms: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = streams.len();
    assert!(n_locals > 0, "need at least one local node");
    assert!(window_len > 0, "window length must be positive");
    let total_events: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for e in streams.iter().flatten() {
        first = first.min(e.ts / window_len);
        last = last.max(e.ts / window_len);
    }
    if total_events == 0 {
        return Err(ClusterError::Core(dema_core::DemaError::EmptyWindow));
    }
    let windows = last - first + 1;
    run_cluster_inner(
        config,
        streams
            .into_iter()
            .map(|events| NodeWork::Streaming {
                events,
                window_len,
                range: (first, last),
                lateness: allowed_lateness_ms,
            })
            .collect(),
        windows,
        total_events,
    )
}

/// Shared orchestration: wire links, spawn node threads, drive the root.
fn run_cluster_inner(
    config: &ClusterConfig,
    work: Vec<NodeWork>,
    windows: u64,
    total_events: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = work.len();

    let close_times: CloseTimes = Arc::new(Mutex::new(HashMap::new()));
    let is_dema = matches!(config.engine, EngineKind::Dema { .. });
    let initial_gamma = match config.engine {
        EngineKind::Dema { gamma, .. } => gamma.initial(),
        _ => 2,
    };

    // Wire the topology: one data link per local (local → root), and for
    // Dema one control link per local (root → local).
    let mut data_counters = Vec::with_capacity(n_locals);
    let mut data_rx: Vec<Box<dyn MsgReceiver>> = Vec::with_capacity(n_locals);
    let mut data_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let control_counters = NetworkCounters::new_shared();
    let mut control_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut control_rx: Vec<Box<dyn MsgReceiver>> = Vec::with_capacity(n_locals);
    // Simulated full-duplex per-node links for the throttled transport: the
    // data path and the responder share the node's uplink; the control path
    // uses the downlink.
    let (uplinks, downlinks): (Vec<_>, Vec<_>) = match config.transport {
        TransportKind::Throttled { mbits_per_sec } => (0..n_locals)
            .map(|_| {
                (Some(Throttle::new_shared(mbits_per_sec)), Some(Throttle::new_shared(mbits_per_sec)))
            })
            .unzip(),
        _ => (vec![None; n_locals], vec![None; n_locals]),
    };
    for n in 0..n_locals {
        let counters = NetworkCounters::new_shared();
        let (tx, rx) =
            make_link(config.transport, SharedCounters::clone(&counters), uplinks[n].as_ref())?;
        data_counters.push(counters);
        data_tx.push(tx);
        data_rx.push(rx);
        if is_dema {
            let (tx, rx) = make_link(
                config.transport,
                SharedCounters::clone(&control_counters),
                downlinks[n].as_ref(),
            )?;
            control_tx.push(tx);
            control_rx.push(rx);
        }
    }
    // Responders need their own sending handle on the data path; give each
    // local a second link whose traffic lands in the same counters (and the
    // same simulated uplink).
    let mut responder_tx: Vec<Box<dyn MsgSender>> = Vec::new();
    let mut responder_data_rx: Vec<Box<dyn MsgReceiver>> = Vec::new();
    if is_dema {
        for (n, counters) in data_counters.iter().enumerate() {
            let (tx, rx) =
                make_link(config.transport, SharedCounters::clone(counters), uplinks[n].as_ref())?;
            responder_tx.push(tx);
            responder_data_rx.push(rx);
        }
    }

    let started = Instant::now();

    // Spawn local nodes (and responders for Dema).
    let mut handles = Vec::new();
    let engine = config.engine;
    let pace = config.pace_window_ms;
    for (n, node_work) in work.into_iter().enumerate() {
        let node = NodeId(n as u32);
        let shared = LocalShared::new(initial_gamma);
        let mut tx = data_tx.remove(0);
        let ct = Arc::clone(&close_times);
        if is_dema {
            let mut ctl_rx = control_rx.remove(0);
            let mut resp_tx = responder_tx.remove(0);
            let resp_shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                run_responder(node, ctl_rx.as_mut(), resp_tx.as_mut(), &resp_shared)
            }));
        }
        handles.push(std::thread::spawn(move || match node_work {
            NodeWork::Windowed(node_windows) => {
                run_local(node, node_windows, engine, tx.as_mut(), &shared, &ct, pace)
            }
            NodeWork::Streaming { events, window_len, range, lateness } => run_local_streaming(
                node,
                events,
                window_len,
                range,
                lateness,
                engine,
                tx.as_mut(),
                &shared,
                &ct,
            ),
        }));
    }

    // Drive the root on this thread.
    let mut root = RootNode::with_extra_quantiles(
        config.quantile,
        config.extra_quantiles.clone(),
        config.engine,
        n_locals,
        windows,
        control_tx,
        Arc::clone(&close_times),
    );
    let mut receivers = data_rx;
    receivers.extend(responder_data_rx);
    let mut result: Result<(), ClusterError> = Ok(());
    let mut idle_sweeps = 0u32;
    'drive: while !root.finished() {
        let mut progressed = false;
        for rx in &mut receivers {
            // Drain each receiver non-blockingly; the protocol is bursty
            // (one batch per window per node), so draining amortizes sweeps.
            loop {
                match rx.try_recv() {
                    Ok(Some(msg)) => {
                        progressed = true;
                        if let Err(e) = root.handle(msg) {
                            result = Err(e);
                            break 'drive;
                        }
                    }
                    Ok(None) => break,
                    Err(NetError::Disconnected) => break,
                    Err(e) => {
                        result = Err(e.into());
                        break 'drive;
                    }
                }
            }
        }
        if progressed {
            idle_sweeps = 0;
        } else {
            // Back off gently: spin briefly for low latency, then yield.
            idle_sweeps += 1;
            if idle_sweeps > 64 {
                std::thread::sleep(Duration::from_micros(20));
            } else {
                std::thread::yield_now();
            }
        }
    }
    let wall_time = started.elapsed();

    // Release the responders (they exit on control-link disconnect) and
    // reap every thread.
    let late_events = root.late_events();
    let (outcomes, latency) = root.into_results();
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => result = result.and(Err(e)),
            Err(_) => result = result.and(Err(ClusterError::NodePanic("local node".into()))),
        }
    }
    result?;

    Ok(RunReport {
        outcomes,
        per_node_traffic: data_counters.iter().map(|c| c.snapshot()).collect(),
        control_traffic: control_counters.snapshot(),
        wall_time,
        total_events,
        latency,
        late_events,
    })
}

/// Convenience: run the same inputs through a second engine and return both
/// reports (used by accuracy experiments that need identical inputs).
pub fn run_pair(
    a: &ClusterConfig,
    b: &ClusterConfig,
    inputs: &[Vec<Vec<Event>>],
) -> Result<(RunReport, RunReport), ClusterError> {
    let ra = run_cluster(a, inputs.to_vec())?;
    let rb = run_cluster(b, inputs.to_vec())?;
    Ok((ra, rb))
}

/// Aggregate helper: total data-plane traffic of a report.
pub fn data_traffic(report: &RunReport) -> NetworkSnapshot {
    report
        .per_node_traffic
        .iter()
        .fold(NetworkSnapshot::default(), |acc, s| acc.plus(s))
}
