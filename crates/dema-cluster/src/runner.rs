//! Orchestration: build the topology, spawn node threads, drive the root,
//! collect the report.
//!
//! Wiring is engine-agnostic: everything engine-specific the runner needs
//! (does the engine have a control plane? what γ do locals start with? is
//! the configuration valid?) comes from the engine registry in
//! [`crate::engines`]. The overlay between leaves and root is either the
//! flat star of the paper's experiments or a multi-level aggregation tree
//! of [`crate::relay`] nodes ([`Topology::Tree`]), with per-tier traffic
//! attribution in [`crate::report::TierTraffic`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::{Event, NodeId};
use dema_core::sync::{rank, Mutex};
use dema_metrics::{FaultCounters, NetworkCounters, NetworkSnapshot};
use dema_net::fault::FaultPlan;
use dema_net::mem::{link, throttled_link, Throttle};
use dema_net::tcp::{accept, listen, TcpSender};
use dema_net::{MsgReceiver, MsgSender, NetError, SharedCounters};

use crate::config::{ClusterConfig, Topology, TransportKind};
use crate::engines::{self, ResilienceCtx};
use crate::local::{run_local, run_local_streaming, run_responder, CloseTimes, LocalShared};
use crate::relay::{run_relay, RelayChild, RoutedSender};
use crate::report::{RunReport, TierTraffic};
use crate::root::RootNode;
use crate::ClusterError;

/// How long a TCP link gets to complete its loopback handshake before the
/// run aborts with the underlying I/O error.
const TCP_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// One unidirectional wired link.
type Link = (Box<dyn MsgSender>, Box<dyn MsgReceiver>);

/// Interpose a fault-injecting wrapper when the plan actually perturbs
/// anything; transparent plans (and no plan) keep the bare sender.
fn wrap_faulty(
    tx: Box<dyn MsgSender>,
    plan: Option<&FaultPlan>,
    counters: &SharedCounters,
) -> Box<dyn MsgSender> {
    match plan {
        Some(p) if !p.is_transparent() => {
            Box::new(p.clone().wrap(tx, SharedCounters::clone(counters)))
        }
        _ => tx,
    }
}

/// Build a link of the configured transport whose traffic lands in
/// `counters`. `throttle` carries the sending node's simulated link for
/// [`TransportKind::Throttled`].
fn make_link(
    kind: TransportKind,
    counters: SharedCounters,
    throttle: Option<&std::sync::Arc<Throttle>>,
) -> Result<Link, ClusterError> {
    match kind {
        TransportKind::Mem => {
            let (tx, rx) = link(counters);
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Throttled { .. } => {
            let throttle = throttle.ok_or_else(|| {
                ClusterError::Protocol("throttled transport needs a link throttle".into())
            })?;
            let (tx, rx) = throttled_link(counters, std::sync::Arc::clone(throttle));
            Ok((Box::new(tx), Box::new(rx)))
        }
        TransportKind::Tcp => {
            let addr = "127.0.0.1:0"
                .parse()
                .map_err(|e| ClusterError::Protocol(format!("loopback addr: {e}")))?;
            let listener = listen(addr)?;
            let addr = listener.local_addr().map_err(NetError::Io)?;
            // Loopback connects complete against the listener's backlog, so
            // connect-then-accept cannot deadlock; a bounded connect keeps a
            // broken environment from hanging the run and surfaces the real
            // I/O error instead of a thread panic.
            let tx = TcpSender::connect_timeout(addr, counters, TCP_CONNECT_TIMEOUT)?;
            let receiver = accept(&listener)?;
            Ok((Box::new(tx), Box::new(receiver)))
        }
    }
}

/// The per-node work a cluster run executes.
enum NodeWork {
    /// Pre-windowed inputs: element `w` is window `w`'s event set.
    Windowed(Vec<Vec<Event>>),
    /// Raw event-time stream, windowed on the node by watermarks.
    Streaming {
        /// This node's events (roughly time-ordered; out-of-orderness beyond
        /// the lateness bound is dropped and counted).
        events: Vec<Event>,
        /// Tumbling window length (ms).
        window_len: u64,
        /// Global `(first, last)` absolute window ids all nodes report.
        range: (u64, u64),
        /// Watermark slack (ms).
        lateness: u64,
    },
}

/// A wired subtree as seen by its parent-to-be: the uplink receivers the
/// parent drains, the downlink sender the parent feeds (if the engine has a
/// control plane), and the leaf id range the subtree covers.
struct ChildHandle {
    ups: Vec<Box<dyn MsgReceiver>>,
    ctl: Option<Box<dyn MsgSender>>,
    range: (u32, u32),
    leaf: bool,
}

/// Run one cluster experiment over pre-windowed inputs.
///
/// `inputs[n][w]` holds the events of local node `n` for window `w`; every
/// node must provide the same number of windows (align with
/// `take_windows`). Returns the full [`RunReport`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run.
pub fn run_cluster(
    config: &ClusterConfig,
    inputs: Vec<Vec<Vec<Event>>>,
) -> Result<RunReport, ClusterError> {
    let n_locals = inputs.len();
    assert!(n_locals > 0, "need at least one local node");
    let windows = inputs[0].len();
    assert!(
        inputs.iter().all(|w| w.len() == windows),
        "all local nodes must cover the same window range"
    );
    let total_events: u64 = inputs.iter().flatten().map(|w| w.len() as u64).sum();
    run_cluster_inner(
        config,
        inputs.into_iter().map(NodeWork::Windowed).collect(),
        windows as u64,
        total_events,
    )
}

/// Run one cluster experiment over raw event-time streams: each local node
/// derives tumbling windows of `window_len` ms from event timestamps and
/// closes them as its watermark (max event time − `allowed_lateness_ms`)
/// advances. Events arriving behind the watermark are dropped and counted
/// in [`RunReport::late_events`].
///
/// # Errors
/// Any protocol, transport, or algorithm failure aborts the run; an input
/// with no events at all is rejected.
pub fn run_cluster_streaming(
    config: &ClusterConfig,
    streams: Vec<Vec<Event>>,
    window_len: u64,
    allowed_lateness_ms: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = streams.len();
    assert!(n_locals > 0, "need at least one local node");
    assert!(window_len > 0, "window length must be positive");
    let total_events: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for e in streams.iter().flatten() {
        first = first.min(e.ts / window_len);
        last = last.max(e.ts / window_len);
    }
    if total_events == 0 {
        return Err(ClusterError::Core(dema_core::DemaError::EmptyWindow));
    }
    let windows = last - first + 1;
    run_cluster_inner(
        config,
        streams
            .into_iter()
            .map(|events| NodeWork::Streaming {
                events,
                window_len,
                range: (first, last),
                lateness: allowed_lateness_ms,
            })
            .collect(),
        windows,
        total_events,
    )
}

/// Reject topologies the wiring cannot realize.
fn validate_topology(topology: Topology) -> Result<(), ClusterError> {
    if let Topology::Tree { fanout, depth } = topology {
        if fanout < 2 {
            return Err(ClusterError::Protocol(format!(
                "tree topology needs fanout ≥ 2, got {fanout}"
            )));
        }
        if depth < 2 {
            return Err(ClusterError::Protocol(format!(
                "tree topology needs depth ≥ 2 (depth 1 is the star), got {depth}"
            )));
        }
    }
    Ok(())
}

/// Shared orchestration: wire links, spawn node threads, drive the root.
fn run_cluster_inner(
    config: &ClusterConfig,
    work: Vec<NodeWork>,
    windows: u64,
    total_events: u64,
) -> Result<RunReport, ClusterError> {
    let n_locals = work.len();

    engines::validate(config.engine)?;
    validate_topology(config.topology)?;

    let close_times: CloseTimes = crate::local::new_close_times();
    let resilient = config.resilience.is_some();
    // Resilience promotes every engine to a control plane: the root needs a
    // root→local path for its retry NACKs, and each local a responder to
    // serve them from its sent-message cache.
    let control_plane = engines::descriptor(config.engine).control_plane || resilient;
    let initial_gamma = engines::initial_gamma(config.engine);
    let fault_counters = FaultCounters::new_shared();
    // Frames the fault wrappers attempted (including dropped ones) — kept
    // separate so the report's per-node traffic stays what the wire saw.
    let injected_counters = NetworkCounters::new_shared();

    // Wire tier 0: one data link per local (leaf → parent), and for engines
    // with a control plane one control link per local (parent → leaf) plus a
    // second uplink for the responder, accounted in the same counters.
    let mut data_counters = Vec::with_capacity(n_locals);
    let control_counters = NetworkCounters::new_shared();
    let mut data_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut control_rx: Vec<Box<dyn MsgReceiver>> = Vec::with_capacity(n_locals);
    let mut responder_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut children: Vec<ChildHandle> = Vec::with_capacity(n_locals);
    // Simulated full-duplex per-node links for the throttled transport: the
    // data path and the responder share the node's uplink; the control path
    // uses the downlink.
    let throttle_mbits = match config.transport {
        TransportKind::Throttled { mbits_per_sec } => Some(mbits_per_sec),
        _ => None,
    };
    for n in 0..n_locals {
        let uplink = throttle_mbits.map(Throttle::new_shared);
        let downlink = throttle_mbits.map(Throttle::new_shared);
        let counters = NetworkCounters::new_shared();
        let node_faults = config.faults.iter().find(|f| f.node == n as u32);
        let (tx, rx) = make_link(
            config.transport,
            SharedCounters::clone(&counters),
            uplink.as_ref(),
        )?;
        let tx = wrap_faulty(
            tx,
            node_faults.and_then(|f| f.uplink.as_ref()),
            &injected_counters,
        );
        let mut ups = vec![rx];
        let mut ctl = None;
        if control_plane {
            let (ctl_tx, ctl_rx) = make_link(
                config.transport,
                SharedCounters::clone(&control_counters),
                downlink.as_ref(),
            )?;
            ctl = Some(wrap_faulty(
                ctl_tx,
                node_faults.and_then(|f| f.control.as_ref()),
                &injected_counters,
            ));
            control_rx.push(ctl_rx);
            let (resp_tx, resp_rx) = make_link(
                config.transport,
                SharedCounters::clone(&counters),
                uplink.as_ref(),
            )?;
            responder_tx.push(wrap_faulty(
                resp_tx,
                node_faults.and_then(|f| f.responder.as_ref()),
                &injected_counters,
            ));
            ups.push(resp_rx);
        }
        data_counters.push(counters);
        data_tx.push(tx);
        children.push(ChildHandle {
            ups,
            ctl,
            range: (n as u32, n as u32),
            leaf: true,
        });
    }

    // Wire the relay tiers (none for the star): each pass groups up to
    // `fanout` children under a fresh relay until only the root's direct
    // children remain. Every relay gets its own uplink counters (and
    // downlink counters when the engine has a control plane) so the report
    // can attribute traffic per tier.
    let mut relay_specs = Vec::new(); // deferred spawns: (ups, up_tx, down_rx, relay_children)
    let mut relay_tier_counters: Vec<Vec<(SharedCounters, Option<SharedCounters>)>> = Vec::new();
    if let Topology::Tree { fanout, depth } = config.topology {
        for _tier in 1..depth {
            let mut next: Vec<ChildHandle> = Vec::new();
            let mut tier_counters = Vec::new();
            let mut iter = children.into_iter().peekable();
            while iter.peek().is_some() {
                let group: Vec<ChildHandle> = iter.by_ref().take(fanout).collect();
                let up_counters = NetworkCounters::new_shared();
                let up_throttle = throttle_mbits.map(Throttle::new_shared);
                let (up_tx, up_rx) = make_link(
                    config.transport,
                    SharedCounters::clone(&up_counters),
                    up_throttle.as_ref(),
                )?;
                let mut down_counters = None;
                let mut parent_ctl = None;
                let mut relay_down_rx = None;
                if control_plane {
                    let c = NetworkCounters::new_shared();
                    let down_throttle = throttle_mbits.map(Throttle::new_shared);
                    let (tx, rx) = make_link(
                        config.transport,
                        SharedCounters::clone(&c),
                        down_throttle.as_ref(),
                    )?;
                    down_counters = Some(c);
                    parent_ctl = Some(tx);
                    relay_down_rx = Some(rx);
                }
                tier_counters.push((up_counters, down_counters));

                let mut ups = Vec::new();
                let mut relay_children = Vec::new();
                let mut range = (u32::MAX, 0u32);
                for ch in group {
                    range.0 = range.0.min(ch.range.0);
                    range.1 = range.1.max(ch.range.1);
                    ups.extend(ch.ups);
                    if let Some(sender) = ch.ctl {
                        relay_children.push(RelayChild {
                            range: ch.range,
                            sender,
                            leaf: ch.leaf,
                        });
                    }
                }
                relay_specs.push((ups, up_tx, relay_down_rx, relay_children));
                next.push(ChildHandle {
                    ups: vec![up_rx],
                    ctl: parent_ctl,
                    range,
                    leaf: false,
                });
            }
            children = next;
            relay_tier_counters.push(tier_counters);
        }
    }

    // The root's per-leaf control senders: direct links in the star, routed
    // envelopes over each top child's shared downlink in a tree. Children
    // arrive in leaf order, so pushing per range keeps index == node id.
    let mut control_tx: Vec<Box<dyn MsgSender>> = Vec::with_capacity(n_locals);
    let mut root_rx: Vec<Box<dyn MsgReceiver>> = Vec::new();
    for ch in children {
        root_rx.extend(ch.ups);
        let Some(ctl) = ch.ctl else { continue };
        if ch.leaf {
            control_tx.push(ctl);
        } else {
            let shared: Arc<Mutex<Box<dyn MsgSender>>> =
                Arc::new(Mutex::new(rank::ROUTED_DOWNLINK, ctl));
            for leaf in ch.range.0..=ch.range.1 {
                control_tx.push(Box::new(RoutedSender::new(
                    NodeId(leaf),
                    Arc::clone(&shared),
                )));
            }
        }
    }

    let started = Instant::now();

    // Spawn the relays…
    let mut handles = Vec::new();
    for (ups, up_tx, down_rx, relay_children) in relay_specs {
        // lint: allow(R9): long-lived relay topology thread, one per run, outside the sort budget
        handles.push(std::thread::spawn(move || {
            run_relay(ups, up_tx, down_rx, relay_children)
        }));
    }

    // …then the local nodes (and responders for control-plane engines).
    let engine = config.engine;
    let pace = config.pace_window_ms;
    let sort_threads = config
        .threads
        .unwrap_or_else(dema_core::par::default_threads);
    for (n, node_work) in work.into_iter().enumerate() {
        let node = NodeId(n as u32);
        let shared = LocalShared::configured(initial_gamma, resilient, sort_threads);
        let mut tx = data_tx.remove(0);
        let ct = Arc::clone(&close_times);
        if control_plane {
            let mut ctl_rx = control_rx.remove(0);
            let mut resp_tx = responder_tx.remove(0);
            let resp_shared = Arc::clone(&shared);
            // lint: allow(R9): long-lived responder thread, one per node per run, not per-window work
            handles.push(std::thread::spawn(move || {
                run_responder(node, ctl_rx.as_mut(), resp_tx.as_mut(), &resp_shared)
            }));
        }
        // lint: allow(R9): long-lived local-node thread, one per node per run, not per-window work
        handles.push(std::thread::spawn(move || match node_work {
            NodeWork::Windowed(node_windows) => {
                run_local(node, node_windows, engine, tx.as_mut(), &shared, &ct, pace)
            }
            NodeWork::Streaming {
                events,
                window_len,
                range,
                lateness,
            } => run_local_streaming(
                node,
                events,
                window_len,
                range,
                lateness,
                engine,
                tx.as_mut(),
                &shared,
                &ct,
            ),
        }));
    }

    // Drive the root on this thread.
    let mut root = RootNode::with_extra_quantiles(
        config.quantile,
        config.extra_quantiles.clone(),
        config.engine,
        n_locals,
        windows,
        control_tx,
        Arc::clone(&close_times),
        config.resilience.map(|r| ResilienceCtx {
            config: r,
            counters: Arc::clone(&fault_counters),
        }),
        config.pipeline_depth,
    );
    let mut receivers = root_rx;
    let mut result: Result<(), ClusterError> = Ok(());
    let mut idle_sweeps = 0u32;
    'drive: while !root.finished() {
        let mut progressed = false;
        for rx in &mut receivers {
            // Drain each receiver non-blockingly; the protocol is bursty
            // (one batch per window per node), so draining amortizes sweeps.
            loop {
                match rx.try_recv() {
                    Ok(Some(msg)) => {
                        progressed = true;
                        if let Err(e) = root.handle(msg) {
                            result = Err(e);
                            break 'drive;
                        }
                    }
                    Ok(None) => break,
                    Err(NetError::Disconnected) => break,
                    Err(e) => {
                        result = Err(e.into());
                        break 'drive;
                    }
                }
            }
        }
        // Retry / liveness pass (a no-op on non-resilient runs).
        if let Err(e) = root.tick() {
            result = Err(e);
            break 'drive;
        }
        if progressed {
            idle_sweeps = 0;
        } else {
            // Back off gently: spin briefly for low latency, then yield.
            idle_sweeps += 1;
            if idle_sweeps > 64 {
                std::thread::sleep(Duration::from_micros(20));
            } else {
                std::thread::yield_now();
            }
        }
    }
    let wall_time = started.elapsed();

    // Dropping the root's control senders cascades the shutdown: responders
    // exit on control-link disconnect, relays drain and exit as both of
    // their directions close. Reap every thread.
    let late_events = root.late_events();
    let (outcomes, latency) = root.into_results();
    drop(receivers);
    let faulty_run = !config.faults.is_empty();
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            // Fault-injected runs sever links by design; a node seeing its
            // own link die is the scenario, not a failure.
            Ok(Err(ClusterError::Net(NetError::Disconnected))) if faulty_run => {}
            Ok(Err(e)) => result = result.and(Err(e)),
            Err(_) => result = result.and(Err(ClusterError::NodePanic("local node".into()))),
        }
    }
    result?;

    // Per-tier attribution: tier 0 is the leaf links (per-leaf data
    // counters up, the shared control counter down), each relay pass adds a
    // tier of per-relay-edge counters. The star reports no tiers — its only
    // tier is already `per_node_traffic` / `control_traffic`.
    let mut tier_traffic = Vec::new();
    if !relay_tier_counters.is_empty() {
        let mut tier0 = TierTraffic {
            up: data_counters.iter().map(|c| c.snapshot()).collect(),
            down: Vec::new(),
        };
        if control_plane {
            tier0.down.push(control_counters.snapshot());
        }
        tier_traffic.push(tier0);
        for tier in &relay_tier_counters {
            let mut t = TierTraffic::default();
            for (up, down) in tier {
                t.up.push(up.snapshot());
                if let Some(down) = down {
                    t.down.push(down.snapshot());
                }
            }
            tier_traffic.push(t);
        }
    }

    Ok(RunReport {
        outcomes,
        per_node_traffic: data_counters.iter().map(|c| c.snapshot()).collect(),
        control_traffic: control_counters.snapshot(),
        wall_time,
        total_events,
        latency,
        late_events,
        tier_traffic,
        fault_stats: fault_counters.snapshot(),
    })
}

/// Convenience: run the same inputs through a second engine and return both
/// reports (used by accuracy experiments that need identical inputs).
pub fn run_pair(
    a: &ClusterConfig,
    b: &ClusterConfig,
    inputs: &[Vec<Vec<Event>>],
) -> Result<(RunReport, RunReport), ClusterError> {
    let ra = run_cluster(a, inputs.to_vec())?;
    let rb = run_cluster(b, inputs.to_vec())?;
    Ok((ra, rb))
}

/// Aggregate helper: total data-plane traffic of a report.
pub fn data_traffic(report: &RunReport) -> NetworkSnapshot {
    report
        .per_node_traffic
        .iter()
        .fold(NetworkSnapshot::default(), |acc, s| acc.plus(s))
}
