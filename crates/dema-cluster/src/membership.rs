//! Membership epochs: which locals contribute to which windows.
//!
//! A [`MembershipPlan`](crate::config::MembershipPlan) describes when nodes
//! join or leave a run; the [`EpochLedger`] compiles it into a dense table
//! of epochs, each covering a contiguous window range under one fixed
//! member set. Epoch switches align to window boundaries: a change staged
//! at window `w` means the joining nodes produce windows `≥ w` and the
//! leaving nodes produce windows `< w`. Because the ledger is a pure
//! function of the plan — not of message arrival order — every replica of
//! the computation (threaded runner, reactor runtime, the deterministic
//! explorer in `dema-model`) agrees on the member set of every window, which
//! is what makes churn runs bit-reproducible across thread counts and
//! transports (DESIGN.md §14).

use crate::config::MembershipPlan;
use crate::ClusterError;

/// One membership epoch: a contiguous window range under a fixed member set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochInfo {
    /// Epoch number (dense from 0).
    pub epoch: u64,
    /// First window computed under this epoch.
    pub first_window: u64,
    /// Member node ids, ascending.
    pub members: Vec<u32>,
    /// Nodes that joined at this epoch's boundary (empty for epoch 0).
    pub joined: Vec<u32>,
    /// Nodes that left at this epoch's boundary (empty for epoch 0).
    pub left: Vec<u32>,
}

/// The compiled epoch table of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochLedger {
    epochs: Vec<EpochInfo>,
}

impl EpochLedger {
    /// The single-epoch ledger of a fixed-membership run: nodes
    /// `0..n_locals`, no boundaries.
    pub fn trivial(n_locals: usize) -> EpochLedger {
        EpochLedger {
            epochs: vec![EpochInfo {
                epoch: 0,
                first_window: 0,
                members: (0..dema_core::numeric::len_to_u32(n_locals)).collect(),
                joined: Vec::new(),
                left: Vec::new(),
            }],
        }
    }

    /// Compile a plan against a run of `n_locals` distinct node ids.
    ///
    /// Epoch 0's members are the ids `0..n_locals` minus every node that
    /// joins later. Boundaries must be strictly increasing and non-zero;
    /// a node may join at most once, leave at most once, must be a member
    /// when it leaves, must not already be a member when it joins, and a
    /// joiner may leave only at a later boundary.
    ///
    /// # Errors
    /// [`ClusterError::Protocol`] describing the rejected change.
    pub fn from_plan(n_locals: usize, plan: &MembershipPlan) -> Result<EpochLedger, ClusterError> {
        let all: Vec<u32> = (0..dema_core::numeric::len_to_u32(n_locals)).collect();
        let joiners: std::collections::HashSet<u32> = plan
            .changes
            .iter()
            .flat_map(|c| c.joins.iter().copied())
            .collect();
        let mut members: Vec<u32> = all
            .iter()
            .copied()
            .filter(|n| !joiners.contains(n))
            .collect();
        if members.is_empty() {
            return Err(ClusterError::Protocol(
                "membership: epoch 0 has no members".into(),
            ));
        }
        let mut epochs = vec![EpochInfo {
            epoch: 0,
            first_window: 0,
            members: members.clone(),
            joined: Vec::new(),
            left: Vec::new(),
        }];
        let mut last_boundary = 0u64;
        let mut ever_joined: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut ever_left: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for change in &plan.changes {
            if change.window == 0 || change.window <= last_boundary {
                return Err(ClusterError::Protocol(format!(
                    "membership: boundary {} must exceed the previous boundary {last_boundary}",
                    change.window
                )));
            }
            last_boundary = change.window;
            if change.joins.is_empty() && change.leaves.is_empty() {
                return Err(ClusterError::Protocol(format!(
                    "membership: boundary {} changes nothing",
                    change.window
                )));
            }
            let mut joined = change.joins.clone();
            joined.sort_unstable();
            joined.dedup();
            let mut left = change.leaves.clone();
            left.sort_unstable();
            left.dedup();
            if joined.len() != change.joins.len() || left.len() != change.leaves.len() {
                return Err(ClusterError::Protocol(format!(
                    "membership: boundary {} lists a node twice",
                    change.window
                )));
            }
            for &n in &joined {
                if u64::from(n) >= n_locals as u64 {
                    return Err(ClusterError::Protocol(format!(
                        "membership: joiner n{n} outside the node range 0..{n_locals}"
                    )));
                }
                if members.contains(&n) || !ever_joined.insert(n) {
                    return Err(ClusterError::Protocol(format!(
                        "membership: n{n} joins while already a member"
                    )));
                }
            }
            for &n in &left {
                if joined.contains(&n) {
                    return Err(ClusterError::Protocol(format!(
                        "membership: n{n} joins and leaves at the same boundary"
                    )));
                }
                if !members.contains(&n) || !ever_left.insert(n) {
                    return Err(ClusterError::Protocol(format!(
                        "membership: n{n} leaves without being a member"
                    )));
                }
            }
            members.retain(|n| !left.contains(n));
            members.extend(joined.iter().copied());
            members.sort_unstable();
            if members.is_empty() {
                return Err(ClusterError::Protocol(format!(
                    "membership: boundary {} leaves the cluster empty",
                    change.window
                )));
            }
            epochs.push(EpochInfo {
                epoch: epochs.len() as u64,
                first_window: change.window,
                members: members.clone(),
                joined,
                left,
            });
        }
        Ok(EpochLedger { epochs })
    }

    /// Number of epochs (≥ 1).
    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when the run has a single fixed membership.
    pub fn is_trivial(&self) -> bool {
        self.epochs.len() == 1
    }

    /// The epoch `window` is computed under.
    pub fn epoch_of(&self, window: u64) -> u64 {
        self.epochs
            .iter()
            .rev()
            .find(|e| e.first_window <= window)
            .map_or(0, |e| e.epoch)
    }

    /// The epoch table entry for `epoch` (`None` past the end).
    pub fn info(&self, epoch: u64) -> Option<&EpochInfo> {
        self.epochs.get(usize::try_from(epoch).ok()?)
    }

    /// The member set of `window`, ascending.
    pub fn members_of(&self, window: u64) -> &[u32] {
        let idx = usize::try_from(self.epoch_of(window)).unwrap_or(0);
        &self.epochs[idx].members
    }

    /// `true` when `node` contributes to `window`.
    pub fn is_member(&self, window: u64, node: u32) -> bool {
        self.members_of(window).contains(&node)
    }

    /// The first window `node` produces (`0` for epoch-0 members).
    pub fn join_window(&self, node: u32) -> u64 {
        self.epochs
            .iter()
            .find(|e| e.joined.contains(&node))
            .map_or(0, |e| e.first_window)
    }

    /// The first window `node` does NOT produce, or `None` when the node
    /// stays to the end of the run.
    pub fn leave_window(&self, node: u32) -> Option<u64> {
        self.epochs
            .iter()
            .find(|e| e.left.contains(&node))
            .map(|e| e.first_window)
    }

    /// Every node that is a member of at least one epoch, ascending.
    pub fn ever_members(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .epochs
            .iter()
            .flat_map(|e| e.members.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The member set of the last epoch.
    pub fn final_members(&self) -> &[u32] {
        &self.epochs[self.epochs.len() - 1].members
    }

    /// All epochs in order.
    pub fn epochs(&self) -> &[EpochInfo] {
        &self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MembershipChange;

    fn plan(changes: Vec<MembershipChange>) -> MembershipPlan {
        MembershipPlan { changes }
    }

    #[test]
    fn trivial_ledger_covers_all_nodes_forever() {
        let l = EpochLedger::trivial(3);
        assert!(l.is_trivial());
        assert_eq!(l.epoch_of(0), 0);
        assert_eq!(l.epoch_of(u64::MAX), 0);
        assert_eq!(l.members_of(17), &[0, 1, 2]);
        assert_eq!(l.join_window(2), 0);
        assert_eq!(l.leave_window(2), None);
        assert_eq!(l.final_members(), &[0, 1, 2]);
    }

    #[test]
    fn acceptance_scenario_compiles() {
        // Start 4 locals, join 4 more at window 3, drain 2 at window 6.
        let l = EpochLedger::from_plan(
            8,
            &plan(vec![
                MembershipChange {
                    window: 3,
                    joins: vec![4, 5, 6, 7],
                    leaves: vec![],
                },
                MembershipChange {
                    window: 6,
                    joins: vec![],
                    leaves: vec![6, 7],
                },
            ]),
        )
        .unwrap();
        assert_eq!(l.n_epochs(), 3);
        assert_eq!(l.members_of(0), &[0, 1, 2, 3]);
        assert_eq!(l.members_of(2), &[0, 1, 2, 3]);
        assert_eq!(l.members_of(3), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(l.members_of(5), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(l.members_of(6), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(l.epoch_of(5), 1);
        assert_eq!(l.epoch_of(6), 2);
        assert_eq!(l.join_window(4), 3);
        assert_eq!(l.join_window(0), 0);
        assert_eq!(l.leave_window(6), Some(6));
        assert_eq!(l.leave_window(4), None);
        assert_eq!(l.final_members(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(l.ever_members(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(l.info(2).unwrap().left, vec![6, 7]);
        assert_eq!(l.info(2).unwrap().joined, Vec::<u32>::new());
    }

    #[test]
    fn epoch0_member_can_leave_and_rejoining_is_rejected() {
        let l = EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 2,
                joins: vec![],
                leaves: vec![1],
            }]),
        )
        .unwrap();
        assert_eq!(l.members_of(1), &[0, 1]);
        assert_eq!(l.members_of(2), &[0]);
        // A node that left cannot join again (single join/leave per node).
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![
                MembershipChange {
                    window: 2,
                    joins: vec![],
                    leaves: vec![1],
                },
                MembershipChange {
                    window: 4,
                    joins: vec![1],
                    leaves: vec![],
                },
            ]),
        )
        .is_err());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        // Boundary 0.
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 0,
                joins: vec![1],
                leaves: vec![],
            }])
        )
        .is_err());
        // Non-increasing boundaries.
        assert!(EpochLedger::from_plan(
            3,
            &plan(vec![
                MembershipChange {
                    window: 2,
                    joins: vec![2],
                    leaves: vec![],
                },
                MembershipChange {
                    window: 2,
                    joins: vec![],
                    leaves: vec![0],
                },
            ])
        )
        .is_err());
        // Empty change.
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![],
                leaves: vec![],
            }])
        )
        .is_err());
        // Joiner outside the node range.
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![9],
                leaves: vec![],
            }])
        )
        .is_err());
        // Leaving a node that never was a member.
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![],
                leaves: vec![7],
            }])
        )
        .is_err());
        // Join + leave at one boundary.
        assert!(EpochLedger::from_plan(
            3,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![2],
                leaves: vec![2],
            }])
        )
        .is_err());
        // Everybody gone.
        assert!(EpochLedger::from_plan(
            1,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![],
                leaves: vec![0],
            }])
        )
        .is_err());
        // Epoch 0 empty (every node joins later).
        assert!(EpochLedger::from_plan(
            1,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![0],
                leaves: vec![],
            }])
        )
        .is_err());
        // Duplicate listing at one boundary.
        assert!(EpochLedger::from_plan(
            2,
            &plan(vec![MembershipChange {
                window: 1,
                joins: vec![1, 1],
                leaves: vec![],
            }])
        )
        .is_err());
    }
}
