//! The local-node shell: window pacing, watermarks, and close-time stamps.
//!
//! A local node consumes its pre-grouped window inputs in order. Per window
//! it invokes the engine's local duty (behind the
//! [`crate::engines::LocalEngine`] trait — sort + slice + synopses for
//! Dema, sort-and-ship for DecSort, ship-raw for the centralized engines,
//! sketch for the distributed ones) and moves on — it never blocks on the
//! root. Dema's calculation step is served by a small *responder* thread
//! that shares the node's slice store, so identification of window `w + 1`
//! can overlap the calculation step of window `w`, exactly as in the paper
//! ("the local nodes then proceed to process the next local windows").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::sync::{rank, Mutex};
use dema_core::window::{SortStrategy, WindowManager};
use dema_net::{MsgSender, NetError};
use dema_wire::Message;

use crate::config::EngineKind;
use crate::engines;
use crate::engines::dema::STORE_WINDOW_CAP;
use crate::engines::retry::END_KEY;
use crate::ClusterError;

pub use crate::engines::dema::{responder_step, run_responder, LocalShared, ResponderStatus};

/// Wall-clock instants at which each `(node, window)` closed — the latency
/// clock starts here.
pub type CloseTimes = Arc<Mutex<HashMap<(u32, u64), Instant>>>;

/// Build an empty [`CloseTimes`] map behind its ranked lock
/// (`cluster.close_times`, DESIGN.md §8).
pub fn new_close_times() -> CloseTimes {
    Arc::new(Mutex::new(rank::CLOSE_TIMES, HashMap::new()))
}

/// Data-plane sender that, on resilient runs, caches the last message sent
/// per window so the node's responder can serve the root's `ResendWindow`
/// NACKs. The stream-end message lives under the [`END_KEY`] slot.
/// Transparent (no clone, no lock) when the run is not resilient.
struct SentCache<'a> {
    inner: &'a mut dyn MsgSender,
    shared: &'a LocalShared,
    key: u64,
}

impl MsgSender for SentCache<'_> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        if self.shared.retain_sent {
            let mut sent = self.shared.sent.lock();
            sent.insert(self.key, msg.clone());
            // Bounded like the slice store; the stream-end slot survives.
            while sent.len() > STORE_WINDOW_CAP {
                let Some(&oldest) = sent.keys().filter(|&&k| k != END_KEY).min() else {
                    break;
                };
                sent.remove(&oldest);
            }
        }
        self.inner.send(msg)
    }

    fn flush_pending(&mut self) -> Result<bool, NetError> {
        self.inner.flush_pending()
    }
}

/// Run one local node's main loop over its window inputs.
///
/// With `pace_window_ms = Some(ms)`, window `i` closes no earlier than
/// `i · ms` after the run started — emulating real-time tumbling windows so
/// root feedback (γ updates) can influence later windows.
pub fn run_local(
    node: NodeId,
    windows: Vec<Vec<Event>>,
    engine: EngineKind,
    to_root: &mut dyn MsgSender,
    shared: &LocalShared,
    close_times: &CloseTimes,
    pace_window_ms: Option<u64>,
) -> Result<(), ClusterError> {
    let mut stepper = LocalStepper::new(node, windows, engine, shared);
    let started = Instant::now();
    while !stepper.is_done() {
        if let Some(w) = stepper.next_window() {
            if let Some(ms) = pace_window_ms {
                let due = started + std::time::Duration::from_millis(ms * w);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            close_times.lock().insert((node.0, w), Instant::now());
        }
        stepper.step(to_root)?;
    }
    Ok(())
}

/// Drives one local node one window at a time — the single-step seam
/// shared by the threaded loop ([`run_local`] is a thin driver around
/// it), the reactor runtime's local role (`crate::host`), and the
/// deterministic interleaving explorer in `dema-model`. Each
/// [`LocalStepper::step`] closes the next window through the engine's
/// local duty with the same per-window sent-cache semantics everywhere,
/// and a final step sends the `StreamEnd` marker. No pacing and no
/// close-time stamps here: the driver owns time.
pub struct LocalStepper<'a> {
    node: NodeId,
    windows: std::vec::IntoIter<Vec<Event>>,
    next_window: u64,
    duty: Box<dyn engines::LocalEngine + 'a>,
    shared: &'a LocalShared,
    done: bool,
    late_events: u64,
    /// Pending join announcement: a planned joiner introduces itself to
    /// the root before closing its first window (DESIGN.md §14).
    announce_join: bool,
    /// Set for a planned leaver: the epoch boundary its final
    /// `LeaveAnnounce` names (sent in place of `StreamEnd`).
    leave_window: Option<u64>,
}

impl<'a> LocalStepper<'a> {
    /// A stepper that will process `windows` in order for `node`.
    pub fn new(
        node: NodeId,
        windows: Vec<Vec<Event>>,
        engine: EngineKind,
        shared: &'a LocalShared,
    ) -> Self {
        LocalStepper {
            node,
            windows: windows.into_iter(),
            next_window: 0,
            duty: engines::build_local(engine, shared),
            shared,
            done: false,
            late_events: 0,
            announce_join: false,
            leave_window: None,
        }
    }

    /// Report `late` dropped-as-late events in the final `StreamEnd`
    /// (streaming inputs; see [`stream_windows`]).
    #[must_use]
    pub fn with_late_events(mut self, late: u64) -> Self {
        self.late_events = late;
        self
    }

    /// Start producing at window `first` instead of 0 — a planned joiner.
    /// The first step announces the join (`JoinRequest`) so the root can
    /// hand back the live γ; the joiner streams without waiting for the
    /// accept, since the staged plan already admits it.
    #[must_use]
    pub fn with_first_window(mut self, first: u64) -> Self {
        self.next_window = first;
        self.announce_join = first > 0;
        self
    }

    /// Stop producing at window `boundary` — a planned leaver. Once its
    /// windows are exhausted the stepper sends `LeaveAnnounce` naming the
    /// boundary instead of `StreamEnd`; the node's responder keeps serving
    /// replay obligations until the root's `DrainComplete` retires it.
    #[must_use]
    pub fn with_leave_window(mut self, boundary: u64) -> Self {
        self.leave_window = Some(boundary);
        self
    }

    /// `true` once the `StreamEnd` marker has been sent.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The id of the window the next [`LocalStepper::step`] will close,
    /// or `None` when the next step sends `StreamEnd` (or nothing).
    pub fn next_window(&self) -> Option<u64> {
        (!self.done && self.windows.len() > 0).then_some(self.next_window)
    }

    /// Process the next window, or send `StreamEnd` once windows are
    /// exhausted. Returns `false` (doing nothing) when already done.
    pub fn step(&mut self, to_root: &mut dyn MsgSender) -> Result<bool, ClusterError> {
        if self.done {
            return Ok(false);
        }
        if self.announce_join {
            // Best-effort: a lost JoinRequest only costs the γ handoff —
            // membership itself is staged in the root's plan, so the
            // joiner's synopses are expected either way. Not cached.
            self.announce_join = false;
            to_root.send(&Message::JoinRequest {
                node: self.node,
                window: WindowId(self.next_window),
            })?;
            return Ok(true);
        }
        match self.windows.next() {
            Some(events) => {
                let window = WindowId(self.next_window);
                self.next_window += 1;
                let mut cache = SentCache {
                    inner: to_root,
                    shared: self.shared,
                    key: window.0,
                };
                self.duty.on_window(self.node, window, events, &mut cache)?;
            }
            None => {
                let mut cache = SentCache {
                    inner: to_root,
                    shared: self.shared,
                    key: END_KEY,
                };
                // A leaver's end-of-stream is the drain announcement; it
                // rides the END_KEY cache slot so a ResendWindow NACK can
                // replay it if lost.
                let bye = match self.leave_window {
                    Some(boundary) => Message::LeaveAnnounce {
                        node: self.node,
                        window: WindowId(boundary),
                    },
                    None => Message::StreamEnd {
                        node: self.node,
                        late_events: self.late_events,
                    },
                };
                cache.send(&bye)?;
                self.done = true;
            }
        }
        Ok(true)
    }
}

/// Event-time streaming local loop: windows are derived from raw event
/// timestamps via a [`WindowManager`] and closed as the node's watermark
/// (max seen event time minus `allowed_lateness_ms`) passes their end.
/// Events behind the watermark are dropped and counted, per the paper's
/// event-time processing model.
///
/// The node reports *every* window id in `window_range` (inclusive), sending
/// empty reports for windows it saw no events in, so the root's
/// all-locals-reported trigger fires for every global window.
#[allow(clippy::too_many_arguments)]
pub fn run_local_streaming(
    node: NodeId,
    events: Vec<Event>,
    window_len: u64,
    window_range: (u64, u64),
    allowed_lateness_ms: u64,
    engine: EngineKind,
    to_root: &mut dyn MsgSender,
    shared: &LocalShared,
    close_times: &CloseTimes,
) -> Result<(), ClusterError> {
    let (windows, late) =
        stream_windows(node, events, window_len, window_range, allowed_lateness_ms);
    let mut stepper = LocalStepper::new(node, windows, engine, shared).with_late_events(late);
    while !stepper.is_done() {
        if let Some(w) = stepper.next_window() {
            close_times.lock().insert((node.0, w), Instant::now());
        }
        stepper.step(to_root)?;
    }
    Ok(())
}

/// Derive the per-window event sets a streaming node reports: tumbling
/// windows of `window_len` ms closed by the node's watermark (max event
/// time − `allowed_lateness_ms`), normalized to 0-based ids covering all
/// of `window_range` (inclusive — windows the node saw no events in are
/// empty entries). Returns the windows plus the count of events dropped
/// behind the watermark.
///
/// This is the windowing half of [`run_local_streaming`], split out so
/// streaming work can ride the same [`LocalStepper`] as pre-windowed work
/// (the reactor runtime hosts both through one role).
pub fn stream_windows(
    node: NodeId,
    events: Vec<Event>,
    window_len: u64,
    window_range: (u64, u64),
    allowed_lateness_ms: u64,
) -> (Vec<Vec<Event>>, u64) {
    let (first_window, last_window) = window_range;
    let mut mgr = WindowManager::new(node, window_len, SortStrategy::OnClose);
    let mut out: Vec<Vec<Event>> = Vec::new();
    let mut next_to_emit = first_window;
    let emit = |out: &mut Vec<Vec<Event>>, next: &mut u64, wid: u64, events: Vec<Event>| {
        while *next < wid {
            out.push(Vec::new());
            *next += 1;
        }
        if wid >= *next {
            out.push(events);
            *next = wid + 1;
        }
    };
    for e in events {
        let watermark = e.ts.saturating_sub(allowed_lateness_ms);
        for closed in mgr.advance_watermark(watermark) {
            let wid = closed.id().0;
            emit(
                &mut out,
                &mut next_to_emit,
                wid,
                closed.into_sorted_events(),
            );
        }
        mgr.ingest(e);
    }
    for closed in mgr.drain() {
        let wid = closed.id().0;
        emit(
            &mut out,
            &mut next_to_emit,
            wid,
            closed.into_sorted_events(),
        );
    }
    while next_to_emit <= last_window {
        out.push(Vec::new());
        next_to_emit += 1;
    }
    (out, mgr.late_events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GammaMode;
    use crate::engines::dema::STORE_WINDOW_CAP;
    use dema_core::selector::SelectionStrategy;
    use dema_metrics::NetworkCounters;
    use dema_net::mem::link;
    use dema_net::MsgReceiver;
    use std::sync::atomic::Ordering;

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, 0, i as u64))
            .collect()
    }

    fn dema_engine() -> EngineKind {
        EngineKind::Dema {
            gamma: GammaMode::Fixed(4),
            strategy: SelectionStrategy::WindowCut,
        }
    }

    #[test]
    fn dema_local_sends_synopses_and_stores_slices() {
        let counters = NetworkCounters::new_shared();
        let (mut tx, mut rx) = link(counters);
        let shared = LocalShared::new(4);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(1),
            vec![events(&[5, 1, 9, 3, 7, 2, 8, 4])],
            dema_engine(),
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::SynopsisBatch {
                node,
                window,
                synopses,
            } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(window, WindowId(0));
                assert_eq!(synopses.len(), 2); // 8 events, γ=4
                assert_eq!(synopses[0].first, 1);
                assert_eq!(synopses[1].last, 9);
            }
            other => panic!("expected synopses, got {other:?}"),
        }
        assert!(matches!(rx.recv().unwrap(), Message::StreamEnd { .. }));
        assert!(shared.store.lock().contains_key(&0));
        assert!(close_times.lock().contains_key(&(1, 0)));
    }

    #[test]
    fn decsort_local_ships_sorted() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(0),
            vec![events(&[3, 1, 2])],
            EngineKind::DecSort,
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::EventBatch { sorted, events, .. } => {
                assert!(sorted);
                let vals: Vec<i64> = events.iter().map(|e| e.value).collect();
                assert_eq!(vals, vec![1, 2, 3]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn centralized_local_ships_raw() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(0),
            vec![events(&[3, 1, 2])],
            EngineKind::Centralized,
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::EventBatch { sorted, events, .. } => {
                assert!(!sorted);
                assert_eq!(events.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tdigest_local_ships_centroids() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        let vals: Vec<i64> = (0..1000).collect();
        run_local(
            NodeId(0),
            vec![events(&vals)],
            EngineKind::TdigestDistributed { compression: 50.0 },
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::DigestBatch {
                count, centroids, ..
            } => {
                assert_eq!(count, 1000);
                assert!(!centroids.is_empty());
                assert!(centroids.len() < 200, "{} centroids", centroids.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kll_local_ships_weighted_summary() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        let vals: Vec<i64> = (0..5000).collect();
        run_local(
            NodeId(0),
            vec![events(&vals)],
            EngineKind::KllDistributed { k: 128 },
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::SketchBatch {
                count,
                min,
                max,
                items,
                ..
            } => {
                assert_eq!(count, 5000);
                assert_eq!(min, 0.0);
                assert_eq!(max, 4999.0);
                // Weight conservation: the summary accounts for every event.
                assert_eq!(items.iter().map(|(_, w)| w).sum::<u64>(), 5000);
                // And it is sublinear in the window size.
                assert!(items.len() < 1000, "{} items shipped", items.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stepper_matches_run_local_message_for_message() {
        let win = |seed: i64| events(&[seed, seed + 2, seed + 1, seed + 3]);
        let windows = vec![win(10), win(20), win(30)];

        let (mut tx_a, mut rx_a) = link(NetworkCounters::new_shared());
        let shared_a = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(3),
            windows.clone(),
            dema_engine(),
            &mut tx_a,
            &shared_a,
            &close_times,
            None,
        )
        .unwrap();

        let (mut tx_b, mut rx_b) = link(NetworkCounters::new_shared());
        let shared_b = LocalShared::new(2);
        let mut stepper = LocalStepper::new(NodeId(3), windows, dema_engine(), &shared_b);
        let mut steps = 0;
        while stepper.step(&mut tx_b).unwrap() {
            steps += 1;
        }
        assert_eq!(steps, 4, "3 windows + StreamEnd");
        assert!(stepper.is_done());
        assert!(!stepper.step(&mut tx_b).unwrap(), "done stepper is inert");

        drop(tx_a);
        drop(tx_b);
        loop {
            match (rx_a.recv(), rx_b.recv()) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bytes(), b.to_bytes()),
                (Err(_), Err(_)) => break,
                (a, b) => panic!("stream lengths differ: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn responder_serves_candidates_and_gamma() {
        let (mut data_tx, mut data_rx) = link(NetworkCounters::new_shared());
        let (mut ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(4);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(2),
            vec![events(&[5, 1, 9, 3, 7, 2, 8, 4])],
            dema_engine(),
            &mut data_tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();

        let shared2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            run_responder(NodeId(2), &mut ctl_rx, &mut data_tx, &shared2)
        });
        ctl_tx.send(&Message::GammaUpdate { gamma: 16 }).unwrap();
        ctl_tx
            .send(&Message::CandidateRequest {
                window: WindowId(0),
                slices: vec![1],
            })
            .unwrap();

        let _syn = data_rx.recv().unwrap();
        let _end = data_rx.recv().unwrap();
        match data_rx.recv().unwrap() {
            Message::CandidateReply {
                node,
                window,
                slices,
            } => {
                assert_eq!(node, NodeId(2));
                assert_eq!(window, WindowId(0));
                assert_eq!(slices.len(), 1);
                assert_eq!(slices[0].0, 1);
                let vals: Vec<i64> = slices[0].1.iter().map(|e| e.value).collect();
                assert_eq!(vals, vec![5, 7, 8, 9]);
            }
            other => panic!("{other:?}"),
        }
        drop(ctl_tx); // root done → responder exits cleanly
        handle.join().unwrap().unwrap();
        assert_eq!(shared.gamma.load(Ordering::Relaxed), 16);
        assert!(shared.store.lock().is_empty(), "served window evicted");
    }

    #[test]
    fn candidate_reply_shares_the_stored_buffer() {
        // Zero-copy witness for the candidate-fetch hot path: the run inside
        // the responder's reply must be a view into the very allocation the
        // store holds (Arc::ptr_eq), not a copy of it.
        use dema_core::shared::SharedRun;
        let (mut data_tx, mut data_rx) = link(NetworkCounters::new_shared());
        let (mut ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(4);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(1),
            vec![events(&[5, 1, 9, 3, 7, 2, 8, 4])],
            dema_engine(),
            &mut data_tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        // Capture the stored run before the responder evicts the window.
        let stored_run = shared.store.lock()[&0][1].events.clone();

        let shared2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            run_responder(NodeId(1), &mut ctl_rx, &mut data_tx, &shared2)
        });
        ctl_tx
            .send(&Message::CandidateRequest {
                window: WindowId(0),
                slices: vec![1],
            })
            .unwrap();
        let _syn = data_rx.recv().unwrap();
        let _end = data_rx.recv().unwrap();
        match data_rx.recv().unwrap() {
            Message::CandidateReply { slices, .. } => {
                assert!(
                    SharedRun::ptr_eq(&slices[0].1, &stored_run),
                    "reply run must share the stored window's allocation"
                );
            }
            other => panic!("{other:?}"),
        }
        drop(ctl_tx);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn responder_rejects_unknown_window() {
        let (mut data_tx, _data_rx) = link(NetworkCounters::new_shared());
        let (mut ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(4);
        ctl_tx
            .send(&Message::CandidateRequest {
                window: WindowId(7),
                slices: vec![0],
            })
            .unwrap();
        drop(ctl_tx);
        let res = run_responder(NodeId(0), &mut ctl_rx, &mut data_tx, &shared);
        assert!(matches!(res, Err(ClusterError::Protocol(_))));
    }

    #[test]
    fn store_is_bounded() {
        let (mut tx, rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(2);
        let close_times: CloseTimes = new_close_times();
        let windows: Vec<Vec<Event>> = (0..100).map(|_| events(&[1, 2])).collect();
        run_local(
            NodeId(0),
            windows,
            dema_engine(),
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        assert!(shared.store.lock().len() <= STORE_WINDOW_CAP);
        drop(rx);
    }

    #[test]
    fn empty_window_still_reports() {
        let (mut tx, mut rx) = link(NetworkCounters::new_shared());
        let shared = LocalShared::new(4);
        let close_times: CloseTimes = new_close_times();
        run_local(
            NodeId(0),
            vec![vec![]],
            dema_engine(),
            &mut tx,
            &shared,
            &close_times,
            None,
        )
        .unwrap();
        match rx.recv().unwrap() {
            Message::SynopsisBatch { synopses, .. } => assert!(synopses.is_empty()),
            other => panic!("{other:?}"),
        }
    }
}
