//! Cluster run configuration.

use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;

/// How γ evolves across windows (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaMode {
    /// Use the same slice factor for every window (the paper's throughput /
    /// network experiments fix γ = 10 000).
    Fixed(u64),
    /// Start at `initial`, then let the root re-optimize after every window
    /// using the observed `l_G` and candidate count (`γ* = √(2·l_G/m)`),
    /// broadcasting updates to the locals.
    Adaptive {
        /// γ for the first window.
        initial: u64,
    },
    /// The paper's §3.3 future-work variant: a *separate* γ per local node,
    /// each minimizing that node's own cost `2·l_i/γ_i + m_i·(γ_i − 2)`.
    /// Nodes whose value range never holds the quantile converge to one
    /// slice per window (two events on the wire); busy nodes near the
    /// quantile get fine slicing.
    AdaptivePerNode {
        /// γ for every node's first window.
        initial: u64,
    },
}

impl GammaMode {
    /// The γ the first window will use.
    pub fn initial(&self) -> u64 {
        match *self {
            GammaMode::Fixed(g)
            | GammaMode::Adaptive { initial: g }
            | GammaMode::AdaptivePerNode { initial: g } => g,
        }
    }
}

/// Which aggregation engine the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// The paper's approach (exact).
    Dema {
        /// Slice-factor policy.
        gamma: GammaMode,
        /// Candidate selector.
        strategy: SelectionStrategy,
    },
    /// Scotty-like: ship everything, sort at the root (exact).
    Centralized,
    /// Desis-like: local sort, ship sorted runs, root merges (exact).
    DecSort,
    /// t-digest built at the root from raw events (approximate).
    TdigestCentral {
        /// Digest compression δ.
        compression: f64,
    },
    /// t-digest built locally, centroids shipped and merged (approximate).
    TdigestDistributed {
        /// Digest compression δ.
        compression: f64,
    },
}

impl EngineKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Dema { .. } => "dema",
            EngineKind::Centralized => "centralized",
            EngineKind::DecSort => "dec-sort",
            EngineKind::TdigestCentral { .. } => "tdigest",
            EngineKind::TdigestDistributed { .. } => "tdigest-dist",
        }
    }

    /// `true` if the engine computes exact quantiles.
    pub fn is_exact(&self) -> bool {
        !matches!(self, EngineKind::TdigestCentral { .. } | EngineKind::TdigestDistributed { .. })
    }
}

/// Which transport the runner wires the topology with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels with exact wire accounting (default).
    #[default]
    Mem,
    /// In-process channels with a simulated per-node link capacity, for the
    /// bandwidth-constrained edge settings the paper targets. Each local
    /// node gets a full-duplex link of this many megabits per second.
    Throttled {
        /// Uplink/downlink capacity per local node (Mbit/s).
        mbits_per_sec: u64,
    },
    /// Real TCP sockets over loopback.
    Tcp,
}

/// Full configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The quantile every window computes.
    pub quantile: Quantile,
    /// Additional quantiles answered per window from the *same*
    /// identification and calculation step (Dema engine only; the union of
    /// candidate slices is fetched once). Results land in
    /// [`crate::report::WindowOutcome::extra_values`].
    pub extra_quantiles: Vec<Quantile>,
    /// Engine under test.
    pub engine: EngineKind,
    /// Transport between nodes.
    pub transport: TransportKind,
    /// Wall-clock pacing between consecutive window closes on each local
    /// node, in milliseconds. `None` replays as fast as possible (throughput
    /// measurements); `Some(ms)` emulates real-time tumbling windows (time-
    /// compressed), which is what lets adaptive-γ feedback land before the
    /// next window is sliced.
    pub pace_window_ms: Option<u64>,
}

impl ClusterConfig {
    /// Dema with fixed γ and the exact window-cut selector — the paper's
    /// default configuration.
    pub fn dema_fixed(gamma: u64, quantile: Quantile) -> ClusterConfig {
        ClusterConfig {
            quantile,
            engine: EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::WindowCut,
            },
            transport: TransportKind::Mem,
            pace_window_ms: None,
            extra_quantiles: Vec::new(),
        }
    }

    /// A baseline configuration.
    pub fn baseline(engine: EngineKind, quantile: Quantile) -> ClusterConfig {
        ClusterConfig {
            quantile,
            engine,
            transport: TransportKind::Mem,
            pace_window_ms: None,
            extra_quantiles: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_initial() {
        assert_eq!(GammaMode::Fixed(500).initial(), 500);
        assert_eq!(GammaMode::Adaptive { initial: 64 }.initial(), 64);
    }

    #[test]
    fn labels_and_exactness() {
        assert_eq!(ClusterConfig::dema_fixed(10, Quantile::MEDIAN).engine.label(), "dema");
        assert!(EngineKind::Centralized.is_exact());
        assert!(EngineKind::DecSort.is_exact());
        assert!(!EngineKind::TdigestCentral { compression: 100.0 }.is_exact());
        assert!(!EngineKind::TdigestDistributed { compression: 100.0 }.is_exact());
    }
}
