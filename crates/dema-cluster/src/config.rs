//! Cluster run configuration.

use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_net::fault::FaultPlan;

/// How γ evolves across windows (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaMode {
    /// Use the same slice factor for every window (the paper's throughput /
    /// network experiments fix γ = 10 000).
    Fixed(u64),
    /// Start at `initial`, then let the root re-optimize after every window
    /// using the observed `l_G` and candidate count (`γ* = √(2·l_G/m)`),
    /// broadcasting updates to the locals.
    Adaptive {
        /// γ for the first window.
        initial: u64,
    },
    /// The paper's §3.3 future-work variant: a *separate* γ per local node,
    /// each minimizing that node's own cost `2·l_i/γ_i + m_i·(γ_i − 2)`.
    /// Nodes whose value range never holds the quantile converge to one
    /// slice per window (two events on the wire); busy nodes near the
    /// quantile get fine slicing.
    AdaptivePerNode {
        /// γ for every node's first window.
        initial: u64,
    },
}

impl GammaMode {
    /// The γ the first window will use.
    pub fn initial(&self) -> u64 {
        match *self {
            GammaMode::Fixed(g)
            | GammaMode::Adaptive { initial: g }
            | GammaMode::AdaptivePerNode { initial: g } => g,
        }
    }
}

/// Which aggregation engine the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// The paper's approach (exact).
    Dema {
        /// Slice-factor policy.
        gamma: GammaMode,
        /// Candidate selector.
        strategy: SelectionStrategy,
    },
    /// Scotty-like: ship everything, sort at the root (exact).
    Centralized,
    /// Desis-like: local sort, ship sorted runs, root merges (exact).
    DecSort,
    /// t-digest built at the root from raw events (approximate).
    TdigestCentral {
        /// Digest compression δ.
        compression: f64,
    },
    /// t-digest built locally, centroids shipped and merged (approximate).
    TdigestDistributed {
        /// Digest compression δ.
        compression: f64,
    },
    /// KLL sketch built locally, weighted items shipped and unioned at the
    /// root (approximate).
    KllDistributed {
        /// Sketch capacity parameter `k` (clamped to ≥ 8 by the sketch).
        k: usize,
    },
}

impl EngineKind {
    /// Short label for reports (from the engine registry).
    pub fn label(&self) -> &'static str {
        crate::engines::descriptor(*self).label
    }

    /// `true` if the engine computes exact quantiles (from the registry).
    pub fn is_exact(&self) -> bool {
        crate::engines::descriptor(*self).exact
    }
}

/// Which transport the runner wires the topology with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels with exact wire accounting (default).
    #[default]
    Mem,
    /// In-process channels with a simulated per-node link capacity, for the
    /// bandwidth-constrained edge settings the paper targets. Each local
    /// node gets a full-duplex link of this many megabits per second.
    Throttled {
        /// Uplink/downlink capacity per local node (Mbit/s).
        mbits_per_sec: u64,
    },
    /// Real TCP sockets over loopback.
    Tcp,
}

/// Shape of the aggregation overlay the runner wires between the local
/// nodes and the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Every local node links directly to the root (default; depth 1).
    #[default]
    Star,
    /// A balanced aggregation tree: relay nodes forward synopses/batches up
    /// and fan candidate requests and γ updates down. `depth` counts link
    /// tiers between a leaf and the root (`Star` ≡ depth 1, so `depth ≥ 2`
    /// here), and each inner node adopts up to `fanout` children.
    Tree {
        /// Maximum children per relay (≥ 2).
        fanout: usize,
        /// Link tiers between leaf and root (≥ 2).
        depth: usize,
    },
}

impl Topology {
    /// Number of link tiers between a leaf and the root.
    pub fn depth(&self) -> usize {
        match *self {
            Topology::Star => 1,
            Topology::Tree { depth, .. } => depth,
        }
    }
}

/// Retry / liveness parameters of the root's fault-tolerance layer.
///
/// When a [`ClusterConfig`] carries one of these, the root arms a deadline
/// per expected window stage, NACKs missing contributions with
/// [`dema_wire::Message::ResendWindow`] / `CandidateRetry` under exponential
/// backoff, and declares a local dead after `liveness_k` consecutive missed
/// deadlines. Windows then complete from the survivors' data as
/// [`crate::report::Degraded`] outcomes instead of hanging the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Base per-stage deadline before the first retry, in milliseconds.
    pub request_timeout_ms: u64,
    /// Retries per window stage before the missing nodes are given up on.
    pub max_retries: u32,
    /// Consecutive missed deadlines before a node is declared dead.
    pub liveness_k: u32,
    /// Seed for the retry jitter (deterministic chaos runs).
    pub seed: u64,
}

impl Default for Resilience {
    fn default() -> Resilience {
        Resilience {
            request_timeout_ms: 100,
            max_retries: 4,
            liveness_k: 8,
            seed: 0x00_D3_7A_FA_17,
        }
    }
}

/// Fault plans injected on one local node's links (chaos testing).
///
/// Absent plans leave the corresponding link untouched. Plans apply at
/// tier 0 only — the node's own uplinks/downlink — which is where the
/// paper's edge-network failures live.
#[derive(Debug, Clone, Default)]
pub struct NodeFaults {
    /// Which local node the plans apply to.
    pub node: u32,
    /// Fault plan for the node's data-plane uplink (synopses, batches).
    pub uplink: Option<FaultPlan>,
    /// Fault plan for the node's responder uplink (candidate replies).
    pub responder: Option<FaultPlan>,
    /// Fault plan for the root→node control downlink.
    pub control: Option<FaultPlan>,
}

/// One staged membership change, applied at a window boundary: the listed
/// joiners produce windows `≥ window`, the listed leavers produce windows
/// `< window`. Compiled (and validated) into an
/// [`crate::membership::EpochLedger`] before the run starts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipChange {
    /// The window boundary the change aligns to (first window of the new
    /// epoch; must be > 0 and strictly increasing across changes).
    pub window: u64,
    /// Node ids joining at this boundary.
    pub joins: Vec<u32>,
    /// Node ids leaving (draining) at this boundary.
    pub leaves: Vec<u32>,
}

/// The full membership schedule of a run. Empty (the default) means fixed
/// membership — the seed behavior. Only the Dema engine supports churn
/// (its control plane carries the join/drain handshake); the runner rejects
/// non-empty plans for other engines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    /// Staged changes in boundary order.
    pub changes: Vec<MembershipChange>,
}

impl MembershipPlan {
    /// `true` when the plan stages no changes (fixed membership).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Full configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The quantile every window computes.
    pub quantile: Quantile,
    /// Additional quantiles answered per window from the *same*
    /// identification and calculation step (Dema engine only; the union of
    /// candidate slices is fetched once). Results land in
    /// [`crate::report::WindowOutcome::extra_values`].
    pub extra_quantiles: Vec<Quantile>,
    /// Engine under test.
    pub engine: EngineKind,
    /// Transport between nodes.
    pub transport: TransportKind,
    /// Shape of the aggregation overlay (star or multi-level tree).
    pub topology: Topology,
    /// Wall-clock pacing between consecutive window closes on each local
    /// node, in milliseconds. `None` replays as fast as possible (throughput
    /// measurements); `Some(ms)` emulates real-time tumbling windows (time-
    /// compressed), which is what lets adaptive-γ feedback land before the
    /// next window is sliced.
    pub pace_window_ms: Option<u64>,
    /// Retry / liveness parameters. `None` (the default) runs the seed
    /// protocol unchanged: no deadlines, no retries, a lost message hangs
    /// its window exactly as before.
    pub resilience: Option<Resilience>,
    /// Per-node fault injection plans (chaos testing). Empty for clean runs.
    pub faults: Vec<NodeFaults>,
    /// Thread budget for the per-window local sort (`dema_core::par`).
    /// `None` resolves [`dema_core::par::default_threads`] (the
    /// `DEMA_THREADS` override or a capped hardware default). The sorted
    /// output — and therefore every byte on the wire — is identical at
    /// every value; this only changes wall-clock.
    pub threads: Option<usize>,
    /// Max windows the root admits into its identification/calculation
    /// stage at once (clamped to ≥ 1; engines without a window pipeline
    /// ignore it). Deeper pipelines overlap root work across windows
    /// without changing any per-window result or traffic counter.
    pub pipeline_depth: usize,
    /// Staged membership changes (epoch-based join/leave/drain; DESIGN.md
    /// §14). Empty for fixed membership. Dema engine only.
    pub membership: MembershipPlan,
}

impl ClusterConfig {
    /// Dema with fixed γ and the exact window-cut selector — the paper's
    /// default configuration.
    pub fn dema_fixed(gamma: u64, quantile: Quantile) -> ClusterConfig {
        ClusterConfig {
            quantile,
            engine: EngineKind::Dema {
                gamma: GammaMode::Fixed(gamma),
                strategy: SelectionStrategy::WindowCut,
            },
            transport: TransportKind::Mem,
            topology: Topology::Star,
            pace_window_ms: None,
            extra_quantiles: Vec::new(),
            resilience: None,
            faults: Vec::new(),
            threads: None,
            pipeline_depth: crate::engines::dema::PIPELINE_DEPTH,
            membership: MembershipPlan::default(),
        }
    }

    /// A baseline configuration.
    pub fn baseline(engine: EngineKind, quantile: Quantile) -> ClusterConfig {
        ClusterConfig {
            quantile,
            engine,
            transport: TransportKind::Mem,
            topology: Topology::Star,
            pace_window_ms: None,
            extra_quantiles: Vec::new(),
            resilience: None,
            faults: Vec::new(),
            threads: None,
            pipeline_depth: crate::engines::dema::PIPELINE_DEPTH,
            membership: MembershipPlan::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_initial() {
        assert_eq!(GammaMode::Fixed(500).initial(), 500);
        assert_eq!(GammaMode::Adaptive { initial: 64 }.initial(), 64);
    }

    #[test]
    fn labels_and_exactness() {
        assert_eq!(
            ClusterConfig::dema_fixed(10, Quantile::MEDIAN)
                .engine
                .label(),
            "dema"
        );
        assert!(EngineKind::Centralized.is_exact());
        assert!(EngineKind::DecSort.is_exact());
        assert!(!EngineKind::TdigestCentral { compression: 100.0 }.is_exact());
        assert!(!EngineKind::TdigestDistributed { compression: 100.0 }.is_exact());
        assert!(!EngineKind::KllDistributed { k: 256 }.is_exact());
        assert_eq!(EngineKind::KllDistributed { k: 256 }.label(), "kll-dist");
    }

    #[test]
    fn topology_depth() {
        assert_eq!(Topology::Star.depth(), 1);
        assert_eq!(
            Topology::Tree {
                fanout: 4,
                depth: 3
            }
            .depth(),
            3
        );
        assert_eq!(Topology::default(), Topology::Star);
    }
}
