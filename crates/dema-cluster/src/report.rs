//! Run reports: what the harness reads after a cluster run.

use std::time::Duration;

use dema_core::event::WindowId;
use dema_metrics::{FaultSnapshot, LatencyHistogram, NetworkSnapshot, ReactorSnapshot};

/// How a window's answer lost exactness when some locals' data never
/// arrived (dead nodes, exhausted retries). Produced only by resilient runs
/// ([`crate::ClusterConfig::resilience`]); a clean run never degrades.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// Locals whose contribution is missing from this window, ascending.
    pub missing_nodes: Vec<u32>,
    /// Dema only: an upper bound on how far the answer's global rank can
    /// sit from the requested one, in events. Derivable when every local's
    /// synopses arrived but some candidate slices were lost (the bound is
    /// the lost slices' synopsis counts summed); `None` when a whole node's
    /// synopses are missing (its window contribution is unknown) and for
    /// the non-Dema engines.
    pub rank_error_bound: Option<u64>,
    /// Retry messages the root sent for this window before completing it.
    pub retries: u32,
}

/// The outcome of one global window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Which window.
    pub window: WindowId,
    /// The aggregate value (`None` for an empty window).
    pub value: Option<i64>,
    /// Values of the configured extra quantiles, in configuration order
    /// (empty unless `extra_quantiles` was set; Dema engine only).
    pub extra_values: Vec<i64>,
    /// Global window size `l_G`.
    pub total_events: u64,
    /// Window-close → result latency in microseconds.
    pub latency_us: u64,
    /// Dema only: candidate events fetched in the calculation step.
    pub candidate_events: u64,
    /// Dema only: number of candidate slices (the cost model's `m`).
    pub candidate_slices: u64,
    /// Dema only: synopses received for this window.
    pub synopses: u64,
    /// γ in effect when the window was sliced (Dema), 0 otherwise.
    pub gamma: u64,
    /// The membership epoch this window was computed under (0 for the whole
    /// run when no membership changes were staged; DESIGN.md §14).
    pub epoch: u64,
    /// `Some` when the window completed without every node's data
    /// (resilient runs only); `None` for an exact answer.
    pub degraded: Option<Degraded>,
}

/// Data-plane traffic one member contributed to one epoch, measured at the
/// root as its window messages arrive (receive-side accounting, so the
/// numbers are identical across transports and thread counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochNodeTraffic {
    /// The contributing local node.
    pub node: u32,
    /// Window-keyed data-plane messages received (synopses, candidate
    /// replies, batches — membership and stream-end control excluded).
    pub messages: u64,
    /// Events carried by those messages ([`dema_wire::Message::event_units`]).
    pub events: u64,
}

/// Per-epoch accounting of a run with membership churn (a fixed-membership
/// run reports exactly one of these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epoch number (dense from 0).
    pub epoch: u64,
    /// First window computed under this epoch.
    pub first_window: u64,
    /// Member node ids, ascending.
    pub members: Vec<u32>,
    /// Nodes that joined at this epoch's boundary.
    pub joined: Vec<u32>,
    /// Nodes that drained away at this epoch's boundary.
    pub left: Vec<u32>,
    /// Membership handoffs at this boundary (joins + drains).
    pub handoffs: u64,
    /// Windows of this epoch finalized by the end of the run.
    pub windows_completed: u64,
    /// How many of them completed degraded.
    pub degraded_windows: u64,
    /// `EpochSwitch` broadcast → first finalized window of the epoch, in
    /// microseconds (0 for epoch 0 and for epochs whose first window
    /// resolved before the boundary broadcast went out).
    pub switch_latency_us: u64,
    /// Per-member data-plane traffic of this epoch, node-ascending.
    pub per_node: Vec<EpochNodeTraffic>,
}

/// Traffic attributed to one tier of the aggregation topology. Tier 0 is
/// the set of leaf links (local → first aggregator); the last tier is the
/// set of links into the root. For the star topology the report leaves
/// [`RunReport::tier_traffic`] empty — there is only one tier and it equals
/// `per_node_traffic` + `control_traffic`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierTraffic {
    /// Upward (data-plane) traffic per link of this tier, in link order.
    pub up: Vec<NetworkSnapshot>,
    /// Downward (control-plane) traffic per link of this tier (empty for
    /// engines with no control plane).
    pub down: Vec<NetworkSnapshot>,
}

impl TierTraffic {
    /// Total upward traffic across this tier's links.
    pub fn up_total(&self) -> NetworkSnapshot {
        self.up
            .iter()
            .fold(NetworkSnapshot::default(), |acc, s| acc.plus(s))
    }

    /// Total downward traffic across this tier's links.
    pub fn down_total(&self) -> NetworkSnapshot {
        self.down
            .iter()
            .fold(NetworkSnapshot::default(), |acc, s| acc.plus(s))
    }
}

/// Aggregated results of a cluster run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-window outcomes in window order.
    pub outcomes: Vec<WindowOutcome>,
    /// Data-plane traffic per local node (local → root link).
    pub per_node_traffic: Vec<NetworkSnapshot>,
    /// Control-plane traffic (root → locals: candidate requests, γ updates).
    pub control_traffic: NetworkSnapshot,
    /// Wall-clock duration of the whole run.
    pub wall_time: Duration,
    /// Total events ingested across all locals.
    pub total_events: u64,
    /// Latency distribution across windows (µs).
    pub latency: LatencyHistogram,
    /// Events dropped as late across all locals (streaming mode only).
    pub late_events: u64,
    /// Per-tier traffic attribution for tree topologies, tier 0 = leaf
    /// links, last tier = links into the root. Empty for the star topology.
    pub tier_traffic: Vec<TierTraffic>,
    /// Retry / degradation work the fault-tolerance layer did
    /// ([`FaultSnapshot::is_clean`] for an undisturbed run).
    pub fault_stats: FaultSnapshot,
    /// Reactor loop health aggregated over every shard plus the root loop:
    /// sweeps, delivered events, timer lag, ready-queue depth.
    pub reactor: ReactorSnapshot,
    /// Per-epoch accounting, epoch order (one entry for fixed-membership
    /// runs; DESIGN.md §14).
    pub epochs: Vec<EpochStats>,
    /// Locals that drained away cleanly (`DrainComplete` handshake), node
    /// order. Distinct from `dead_nodes`: a drained node is not a failure.
    pub drained_nodes: Vec<u32>,
    /// Locals declared dead by the liveness/retry budget, node order.
    pub dead_nodes: Vec<u32>,
    /// Allocator activity during the run (fresh blocks per phase, recycled
    /// count, reallocs), from the armed counting allocator
    /// ([`dema_core::alloc`]). All-zero when the allocator is disarmed
    /// (release builds without the `strict` feature).
    pub alloc: dema_core::alloc::AllocSnapshot,
    /// Wire buffer pool activity during the run: acquires, recycled
    /// reuses, and fresh-allocation misses of the process-wide
    /// [`dema_wire::pool::BufferPool`].
    pub wire: dema_wire::pool::PoolStats,
}

impl RunReport {
    /// Events processed per wall-clock second.
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_events as f64 / secs
    }

    /// All traffic (data + control) summed across links.
    pub fn total_traffic(&self) -> NetworkSnapshot {
        self.per_node_traffic
            .iter()
            .fold(self.control_traffic, |acc, s| acc.plus(s))
    }

    /// The per-window quantile values, in window order.
    pub fn values(&self) -> Vec<Option<i64>> {
        self.outcomes.iter().map(|o| o.value).collect()
    }

    /// Mean latency in microseconds (`None` if no windows completed).
    pub fn mean_latency_us(&self) -> Option<f64> {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut latency = LatencyHistogram::new();
        latency.record(100);
        latency.record(300);
        RunReport {
            outcomes: vec![WindowOutcome {
                window: WindowId(0),
                value: Some(5),
                extra_values: vec![],
                total_events: 1000,
                latency_us: 100,
                candidate_events: 10,
                candidate_slices: 1,
                synopses: 4,
                gamma: 100,
                epoch: 0,
                degraded: None,
            }],
            per_node_traffic: vec![
                NetworkSnapshot {
                    bytes: 100,
                    messages: 2,
                    events: 8,
                },
                NetworkSnapshot {
                    bytes: 50,
                    messages: 1,
                    events: 4,
                },
            ],
            control_traffic: NetworkSnapshot {
                bytes: 10,
                messages: 1,
                events: 0,
            },
            wall_time: Duration::from_millis(500),
            total_events: 1000,
            latency,
            late_events: 0,
            tier_traffic: Vec::new(),
            fault_stats: FaultSnapshot::default(),
            reactor: ReactorSnapshot::default(),
            epochs: Vec::new(),
            drained_nodes: Vec::new(),
            dead_nodes: Vec::new(),
            alloc: dema_core::alloc::AllocSnapshot::default(),
            wire: dema_wire::pool::PoolStats::default(),
        }
    }

    #[test]
    fn throughput_is_events_over_wall_time() {
        assert_eq!(report().throughput_eps(), 2000.0);
    }

    #[test]
    fn traffic_sums_links() {
        let t = report().total_traffic();
        assert_eq!(
            t,
            NetworkSnapshot {
                bytes: 160,
                messages: 4,
                events: 12
            }
        );
    }

    #[test]
    fn values_and_latency() {
        let r = report();
        assert_eq!(r.values(), vec![Some(5)]);
        assert_eq!(r.mean_latency_us(), Some(200.0));
    }

    #[test]
    fn tier_traffic_totals() {
        let tier = TierTraffic {
            up: vec![
                NetworkSnapshot {
                    bytes: 100,
                    messages: 2,
                    events: 8,
                },
                NetworkSnapshot {
                    bytes: 50,
                    messages: 1,
                    events: 4,
                },
            ],
            down: vec![NetworkSnapshot {
                bytes: 10,
                messages: 1,
                events: 0,
            }],
        };
        assert_eq!(
            tier.up_total(),
            NetworkSnapshot {
                bytes: 150,
                messages: 3,
                events: 12
            }
        );
        assert_eq!(
            tier.down_total(),
            NetworkSnapshot {
                bytes: 10,
                messages: 1,
                events: 0
            }
        );
    }
}
