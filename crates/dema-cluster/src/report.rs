//! Run reports: what the harness reads after a cluster run.

use std::time::Duration;

use dema_core::event::WindowId;
use dema_metrics::{LatencyHistogram, NetworkSnapshot};

/// The outcome of one global window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Which window.
    pub window: WindowId,
    /// The aggregate value (`None` for an empty window).
    pub value: Option<i64>,
    /// Values of the configured extra quantiles, in configuration order
    /// (empty unless `extra_quantiles` was set; Dema engine only).
    pub extra_values: Vec<i64>,
    /// Global window size `l_G`.
    pub total_events: u64,
    /// Window-close → result latency in microseconds.
    pub latency_us: u64,
    /// Dema only: candidate events fetched in the calculation step.
    pub candidate_events: u64,
    /// Dema only: number of candidate slices (the cost model's `m`).
    pub candidate_slices: u64,
    /// Dema only: synopses received for this window.
    pub synopses: u64,
    /// γ in effect when the window was sliced (Dema), 0 otherwise.
    pub gamma: u64,
}

/// Aggregated results of a cluster run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-window outcomes in window order.
    pub outcomes: Vec<WindowOutcome>,
    /// Data-plane traffic per local node (local → root link).
    pub per_node_traffic: Vec<NetworkSnapshot>,
    /// Control-plane traffic (root → locals: candidate requests, γ updates).
    pub control_traffic: NetworkSnapshot,
    /// Wall-clock duration of the whole run.
    pub wall_time: Duration,
    /// Total events ingested across all locals.
    pub total_events: u64,
    /// Latency distribution across windows (µs).
    pub latency: LatencyHistogram,
    /// Events dropped as late across all locals (streaming mode only).
    pub late_events: u64,
}

impl RunReport {
    /// Events processed per wall-clock second.
    pub fn throughput_eps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_events as f64 / secs
    }

    /// All traffic (data + control) summed across links.
    pub fn total_traffic(&self) -> NetworkSnapshot {
        self.per_node_traffic
            .iter()
            .fold(self.control_traffic, |acc, s| acc.plus(s))
    }

    /// The per-window quantile values, in window order.
    pub fn values(&self) -> Vec<Option<i64>> {
        self.outcomes.iter().map(|o| o.value).collect()
    }

    /// Mean latency in microseconds (`None` if no windows completed).
    pub fn mean_latency_us(&self) -> Option<f64> {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut latency = LatencyHistogram::new();
        latency.record(100);
        latency.record(300);
        RunReport {
            outcomes: vec![WindowOutcome {
                window: WindowId(0),
                value: Some(5),
                extra_values: vec![],
                total_events: 1000,
                latency_us: 100,
                candidate_events: 10,
                candidate_slices: 1,
                synopses: 4,
                gamma: 100,
            }],
            per_node_traffic: vec![
                NetworkSnapshot { bytes: 100, messages: 2, events: 8 },
                NetworkSnapshot { bytes: 50, messages: 1, events: 4 },
            ],
            control_traffic: NetworkSnapshot { bytes: 10, messages: 1, events: 0 },
            wall_time: Duration::from_millis(500),
            total_events: 1000,
            latency,
            late_events: 0,
        }
    }

    #[test]
    fn throughput_is_events_over_wall_time() {
        assert_eq!(report().throughput_eps(), 2000.0);
    }

    #[test]
    fn traffic_sums_links() {
        let t = report().total_traffic();
        assert_eq!(t, NetworkSnapshot { bytes: 160, messages: 4, events: 12 });
    }

    #[test]
    fn values_and_latency() {
        let r = report();
        assert_eq!(r.values(), vec![Some(5)]);
        assert_eq!(r.mean_latency_us(), Some(200.0));
    }
}
