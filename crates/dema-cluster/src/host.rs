//! Reactor hosting for cluster roles (DESIGN.md §13).
//!
//! The threaded runner gave every node its own OS thread and its own
//! blocking drive loop. This module re-expresses each node as a *role*: a
//! passive protocol state machine behind the [`Stepper`] trait that turns
//! reactor events (a message, a timer, a writability notice, a wake) into
//! a list of [`Outbound`] effects. A [`RoleHost`] adapts one role to the
//! [`dema_net::reactor::Handler`] contract — it owns the role's senders,
//! applies its outbounds, re-registers writability interest when a
//! nonblocking sender reports buffered bytes, and absorbs the role's
//! errors so one node's death on a shared reactor shard behaves exactly
//! like one thread's death did: its links drop (peers see `Disconnected`)
//! and the rest of the shard keeps running.
//!
//! Four roles cover the cluster:
//!
//! * [`LocalRole`] — drives a [`LocalStepper`] window by window, pumped by
//!   `Wake` events (or pacing timers when `pace_window_ms` is set).
//! * [`ResponderRole`] — serves the root's control messages from the
//!   node's slice store via [`responder_step`], one message at a time.
//! * [`RelayRole`] — forwards uplink traffic verbatim and routes
//!   [`Message::Routed`] envelopes downward, mirroring
//!   [`crate::relay::run_relay`].
//! * [`RootRole`] — wraps [`RootNode`]; retry/liveness deadlines become
//!   reactor timers ([`RootNode::next_deadline`]) instead of a per-sweep
//!   `tick` poll.

use std::time::{Duration, Instant};

use dema_core::event::NodeId;
use dema_net::reactor::{Handler, Ops, ReactorEvent};
use dema_net::{MsgSender, NetError};
use dema_wire::Message;

use crate::local::{responder_step, CloseTimes, LocalShared, LocalStepper, ResponderStatus};
use crate::root::RootNode;
use crate::ClusterError;

/// An effect a role requests; applied by its [`RoleHost`] after the role's
/// event method returns.
#[derive(Debug)]
pub enum Outbound {
    /// Send `msg` on the role's sender `via`.
    Send {
        /// Role-local sender index.
        via: usize,
        /// The message (by value — a relay forwards without cloning).
        msg: Message,
    },
    /// Drop sender `via` now (the peer sees `Disconnected`); used for the
    /// relay's downward shutdown cascade.
    Close {
        /// Role-local sender index.
        via: usize,
    },
    /// Arm a one-shot reactor timer delivering `token` back at `at`.
    Timer {
        /// Deadline.
        at: Instant,
        /// Token returned in the matching [`Stepper::on_timer`].
        token: u64,
    },
    /// Ask for another [`Stepper::on_wake`] on the next sweep.
    Wake,
}

/// A protocol state machine hosted on a reactor shard. Pure with respect
/// to I/O: every method receives an event and pushes [`Outbound`] effects;
/// the [`RoleHost`] owns the actual senders.
pub trait Stepper {
    /// A message arrived on the role's source `link`.
    ///
    /// # Errors
    /// Protocol violations and algorithm failures; the host records the
    /// error and retires the role (dropping its links), it does not abort
    /// the shard.
    fn on_message(
        &mut self,
        link: usize,
        msg: Message,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError>;

    /// A timer armed via [`Outbound::Timer`] came due. Stale fires are
    /// possible (timers are never cancelled) — re-check state.
    ///
    /// # Errors
    /// Same contract as [`Stepper::on_message`].
    fn on_timer(&mut self, token: u64, out: &mut Vec<Outbound>) -> Result<(), ClusterError>;

    /// Source `link` closed; no further messages will arrive on it.
    ///
    /// # Errors
    /// Same contract as [`Stepper::on_message`].
    fn on_disconnect(&mut self, link: usize, out: &mut Vec<Outbound>) -> Result<(), ClusterError>;

    /// Self-driven work: delivered once at loop start and again after any
    /// [`Outbound::Wake`].
    ///
    /// # Errors
    /// Same contract as [`Stepper::on_message`].
    fn on_wake(&mut self, out: &mut Vec<Outbound>) -> Result<(), ClusterError>;

    /// `true` once the role needs no further events.
    fn done(&self) -> bool;
}

impl Stepper for Box<dyn Stepper + '_> {
    fn on_message(
        &mut self,
        link: usize,
        msg: Message,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        (**self).on_message(link, msg, out)
    }

    fn on_timer(&mut self, token: u64, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        (**self).on_timer(token, out)
    }

    fn on_disconnect(&mut self, link: usize, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        (**self).on_disconnect(link, out)
    }

    fn on_wake(&mut self, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        (**self).on_wake(out)
    }

    fn done(&self) -> bool {
        (**self).done()
    }
}

/// A [`MsgSender`] that records sends as [`Outbound::Send`] effects on a
/// fixed sender index, letting the existing engine duties ([`LocalStepper`],
/// [`responder_step`]) run unmodified under a role.
struct CaptureSender<'v> {
    via: usize,
    out: &'v mut Vec<Outbound>,
}

impl MsgSender for CaptureSender<'_> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.out.push(Outbound::Send {
            via: self.via,
            msg: msg.clone(),
        });
        Ok(())
    }
}

/// Adapts one [`Stepper`] role to the reactor's [`Handler`] contract:
/// owns the role's senders, applies its outbounds, tracks nonblocking
/// senders with buffered bytes (re-registering writability interest until
/// they drain), and absorbs role failures.
///
/// Failure semantics mirror a node thread's death in the threaded runner:
/// the first error is recorded, every sender is dropped (peers observe
/// `Disconnected`), and the role stops receiving events — but the shard's
/// other roles keep running. The runner collects recorded errors after the
/// shard joins, with the same per-error forgiveness rules as before.
pub struct RoleHost<R> {
    role: R,
    senders: Vec<Option<Box<dyn MsgSender>>>,
    /// Senders with buffered-but-unwritten bytes (`flush_pending` said
    /// `false`); the host keeps writability interest alive for these and
    /// refuses to report `done` until they drain.
    pending: Vec<bool>,
    pending_count: usize,
    error: Option<ClusterError>,
    dead: bool,
    out: Vec<Outbound>,
}

impl<R: Stepper> RoleHost<R> {
    /// Host `role` with its sender table (indices are the role's `via`s).
    pub fn new(role: R, senders: Vec<Box<dyn MsgSender>>) -> RoleHost<R> {
        let n = senders.len();
        RoleHost {
            role,
            senders: senders.into_iter().map(Some).collect(),
            pending: vec![false; n],
            pending_count: 0,
            error: None,
            dead: false,
            out: Vec::new(),
        }
    }

    /// Take the first error the role (or its I/O) produced, if any.
    pub fn take_error(&mut self) -> Option<ClusterError> {
        self.error.take()
    }

    /// Recover the role (e.g. the [`RootRole`] after the loop exits),
    /// along with any recorded error.
    pub fn into_parts(self) -> (R, Option<ClusterError>) {
        (self.role, self.error)
    }

    /// Retire the role after a failure: record the first error, drop every
    /// link so peers see `Disconnected` (the thread-death equivalent), and
    /// stop dispatching events to it.
    fn fail(&mut self, e: ClusterError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
        self.dead = true;
        for s in &mut self.senders {
            *s = None;
        }
        self.pending_count = 0;
    }

    /// Retry buffered bytes on sender `via`, updating pending bookkeeping
    /// and writability interest.
    fn flush(&mut self, via: usize, ops: &mut Ops) -> Result<(), ClusterError> {
        let Some(s) = self.senders.get_mut(via).and_then(Option::as_mut) else {
            return Ok(());
        };
        match s.flush_pending() {
            Ok(true) => {
                if self.pending[via] {
                    self.pending[via] = false;
                    self.pending_count -= 1;
                }
                Ok(())
            }
            Ok(false) => {
                if !self.pending[via] {
                    self.pending[via] = true;
                    self.pending_count += 1;
                }
                ops.watch_writable(via);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Apply the effects a role requested.
    fn apply(&mut self, out: &mut Vec<Outbound>, ops: &mut Ops) -> Result<(), ClusterError> {
        for ob in out.drain(..) {
            match ob {
                Outbound::Send { via, msg } => {
                    {
                        let Some(s) = self.senders.get_mut(via).and_then(Option::as_mut) else {
                            return Err(ClusterError::Protocol(format!(
                                "role send on closed link {via}"
                            )));
                        };
                        s.send(&msg)?;
                    }
                    self.flush(via, ops)?;
                }
                Outbound::Close { via } => {
                    if let Some(slot) = self.senders.get_mut(via) {
                        *slot = None;
                    }
                    if self.pending.get(via).copied().unwrap_or(false) {
                        self.pending[via] = false;
                        self.pending_count -= 1;
                    }
                }
                Outbound::Timer { at, token } => ops.arm_timer(at, token),
                Outbound::Wake => ops.wake(),
            }
        }
        Ok(())
    }

    /// Once the role is done and nothing is buffered, release the links —
    /// the reactor-world equivalent of the role's thread exiting and its
    /// senders dropping, which is what cascades the cluster shutdown.
    fn release_if_done(&mut self) {
        if self.role.done() && self.pending_count == 0 {
            for s in &mut self.senders {
                *s = None;
            }
        }
    }
}

impl<R: Stepper> Handler<ClusterError> for RoleHost<R> {
    fn on_event(&mut self, ev: ReactorEvent, ops: &mut Ops) -> Result<(), ClusterError> {
        if self.dead {
            return Ok(());
        }
        if let ReactorEvent::Writable { link } = ev {
            if let Err(e) = self.flush(link, ops) {
                self.fail(e);
            }
            self.release_if_done();
            return Ok(());
        }
        let mut out = std::mem::take(&mut self.out);
        let res = match ev {
            ReactorEvent::Readable { link, msg } => self.role.on_message(link, msg, &mut out),
            ReactorEvent::Closed { link } => self.role.on_disconnect(link, &mut out),
            ReactorEvent::Timer { token } => self.role.on_timer(token, &mut out),
            ReactorEvent::Wake => self.role.on_wake(&mut out),
            ReactorEvent::Writable { .. } => Ok(()), // handled above
        };
        let res = res.and_then(|()| self.apply(&mut out, ops));
        out.clear();
        self.out = out;
        match res {
            Ok(()) => self.release_if_done(),
            Err(e) => self.fail(e),
        }
        Ok(())
    }

    fn on_io_error(&mut self, _link: usize, err: NetError) -> Result<(), ClusterError> {
        if !self.dead {
            self.fail(err.into());
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.dead || (self.role.done() && self.pending_count == 0)
    }
}

/// The local role's single sender: its data uplink.
pub const LOCAL_UPLINK: usize = 0;

/// A local node hosted on a reactor: the [`LocalStepper`] pumped one
/// window per `Wake`, with `pace_window_ms` re-expressed as reactor
/// timers instead of thread sleeps.
pub struct LocalRole<'a> {
    node: NodeId,
    stepper: LocalStepper<'a>,
    close_times: CloseTimes,
    pace_window_ms: Option<u64>,
    started: Instant,
}

impl<'a> LocalRole<'a> {
    /// Host `stepper` for `node`, stamping window closes into
    /// `close_times` exactly where the threaded loop did.
    pub fn new(
        node: NodeId,
        stepper: LocalStepper<'a>,
        close_times: CloseTimes,
        pace_window_ms: Option<u64>,
    ) -> LocalRole<'a> {
        LocalRole {
            node,
            stepper,
            close_times,
            pace_window_ms,
            started: Instant::now(),
        }
    }

    /// Close the next window (or the stream), honoring pacing: a window
    /// not yet due arms a timer instead of sleeping the shard.
    fn pump(&mut self, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        if self.stepper.is_done() {
            return Ok(());
        }
        if let Some(w) = self.stepper.next_window() {
            if let Some(ms) = self.pace_window_ms {
                let due = self.started + Duration::from_millis(ms.saturating_mul(w));
                if due > Instant::now() {
                    out.push(Outbound::Timer { at: due, token: w });
                    return Ok(());
                }
            }
            self.close_times
                .lock()
                .insert((self.node.0, w), Instant::now());
        }
        let mut cap = CaptureSender {
            via: LOCAL_UPLINK,
            out,
        };
        self.stepper.step(&mut cap)?;
        if !self.stepper.is_done() {
            // One window per event keeps shard sweeps fair across nodes.
            out.push(Outbound::Wake);
        }
        Ok(())
    }
}

impl Stepper for LocalRole<'_> {
    fn on_message(
        &mut self,
        link: usize,
        _msg: Message,
        _out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        Err(ClusterError::Protocol(format!(
            "{}: local data role has no inbound link {link}",
            self.node
        )))
    }

    fn on_timer(&mut self, _token: u64, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        self.pump(out)
    }

    fn on_disconnect(
        &mut self,
        _link: usize,
        _out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        Ok(())
    }

    fn on_wake(&mut self, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        self.pump(out)
    }

    fn done(&self) -> bool {
        self.stepper.is_done()
    }
}

/// The responder role's single sender: its own uplink to the root.
pub const RESPONDER_UPLINK: usize = 0;

/// A Dema responder hosted on a reactor: serves the root's control
/// messages from the node's shared slice store, one [`responder_step`]
/// per delivery — the reactor analogue of
/// [`crate::local::run_responder`]'s blocking loop.
pub struct ResponderRole<'a> {
    node: NodeId,
    shared: &'a LocalShared,
    stopped: bool,
}

impl<'a> ResponderRole<'a> {
    /// A responder for `node` over its shared local state.
    pub fn new(node: NodeId, shared: &'a LocalShared) -> ResponderRole<'a> {
        ResponderRole {
            node,
            shared,
            stopped: false,
        }
    }
}

impl Stepper for ResponderRole<'_> {
    fn on_message(
        &mut self,
        _link: usize,
        msg: Message,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        if self.stopped {
            return Ok(());
        }
        let mut cap = CaptureSender {
            via: RESPONDER_UPLINK,
            out,
        };
        match responder_step(self.node, msg, &mut cap, self.shared)? {
            ResponderStatus::Continue => Ok(()),
            ResponderStatus::Stop => {
                self.stopped = true;
                Ok(())
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        Ok(())
    }

    fn on_disconnect(
        &mut self,
        _link: usize,
        _out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        // Control link closed: the root is finished with this node.
        self.stopped = true;
        Ok(())
    }

    fn on_wake(&mut self, _out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        Ok(())
    }

    fn done(&self) -> bool {
        self.stopped
    }
}

/// The relay role's first sender: the uplink to its parent. Child
/// downlinks follow at `1..`.
pub const RELAY_PARENT_UP: usize = 0;

/// One downward route of a [`RelayRole`].
pub struct RelayChildRoute {
    /// Inclusive leaf-id range the child subtree covers.
    pub range: (u32, u32),
    /// The role's sender index for this child's downlink.
    pub via: usize,
    /// Leaf children receive the unwrapped control message; inner children
    /// receive the [`Message::Routed`] envelope unchanged.
    pub leaf: bool,
}

/// A relay node hosted on a reactor: sources `0..n_ups` are the child
/// uplinks, source `n_ups` (when wired) is the parent's downlink. Same
/// forwarding and shutdown-cascade semantics as [`crate::relay::run_relay`].
pub struct RelayRole {
    ups_open: Vec<bool>,
    down_open: bool,
    children: Vec<RelayChildRoute>,
}

impl RelayRole {
    /// A relay with `n_ups` child uplinks and the given downward routes;
    /// `has_down` is false for engines without a control plane.
    pub fn new(n_ups: usize, children: Vec<RelayChildRoute>, has_down: bool) -> RelayRole {
        RelayRole {
            ups_open: vec![true; n_ups],
            down_open: has_down,
            children,
        }
    }
}

impl Stepper for RelayRole {
    fn on_message(
        &mut self,
        link: usize,
        msg: Message,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        if link < self.ups_open.len() {
            // Upward traffic forwards verbatim — moved, never cloned.
            out.push(Outbound::Send {
                via: RELAY_PARENT_UP,
                msg,
            });
            return Ok(());
        }
        match msg {
            Message::Routed { dest, inner } => {
                let child = self
                    .children
                    .iter()
                    .find(|c| c.range.0 <= dest.0 && dest.0 <= c.range.1)
                    .ok_or_else(|| {
                        ClusterError::Protocol(format!(
                            "relay: no child covers destination node {}",
                            dest.0
                        ))
                    })?;
                let msg = if child.leaf {
                    *inner
                } else {
                    Message::Routed { dest, inner }
                };
                out.push(Outbound::Send {
                    via: child.via,
                    msg,
                });
                Ok(())
            }
            msg => Err(ClusterError::Protocol(format!(
                "relay: unrouted downward message {msg:?}"
            ))),
        }
    }

    fn on_timer(&mut self, _token: u64, _out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        Ok(())
    }

    fn on_disconnect(&mut self, link: usize, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        if link < self.ups_open.len() {
            self.ups_open[link] = false;
        } else {
            // The root (or the relay above) is done: cascade the shutdown
            // by closing our own downlinks so the tier below exits too.
            self.down_open = false;
            for c in &self.children {
                out.push(Outbound::Close { via: c.via });
            }
        }
        Ok(())
    }

    fn on_wake(&mut self, _out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        Ok(())
    }

    fn done(&self) -> bool {
        !self.down_open && self.ups_open.iter().all(|open| !open)
    }
}

/// The root hosted on its own reactor (the caller's thread): every uplink
/// receiver is a source, control sends stay inside the engine, and the
/// retry `Supervisor`'s deadlines surface as reactor timers via
/// [`RootNode::next_deadline`] instead of a `tick` per polling sweep.
pub struct RootRole {
    root: RootNode,
    /// Earliest timer currently armed, to avoid flooding the heap: a new
    /// timer is pushed only for a strictly earlier deadline (stale fires
    /// are harmless — `tick` re-derives real deadlines).
    armed: Option<Instant>,
}

impl RootRole {
    /// Host `root`.
    pub fn new(root: RootNode) -> RootRole {
        RootRole { root, armed: None }
    }

    /// Recover the root for result extraction after the loop exits.
    pub fn into_root(self) -> RootNode {
        self.root
    }

    fn rearm(&mut self, out: &mut Vec<Outbound>) {
        if let Some(due) = self.root.next_deadline() {
            if self.armed.is_none_or(|armed| due < armed) {
                out.push(Outbound::Timer { at: due, token: 0 });
                self.armed = Some(due);
            }
        }
    }
}

impl Stepper for RootRole {
    fn on_message(
        &mut self,
        _link: usize,
        msg: Message,
        out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        self.root.handle(msg)?;
        self.rearm(out);
        Ok(())
    }

    fn on_timer(&mut self, _token: u64, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        self.armed = None;
        self.root.tick()?;
        self.rearm(out);
        Ok(())
    }

    fn on_disconnect(
        &mut self,
        _link: usize,
        _out: &mut Vec<Outbound>,
    ) -> Result<(), ClusterError> {
        // A local finished and dropped its uplink — normal shutdown order.
        Ok(())
    }

    fn on_wake(&mut self, out: &mut Vec<Outbound>) -> Result<(), ClusterError> {
        self.rearm(out);
        Ok(())
    }

    fn done(&self) -> bool {
        self.root.finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineKind, GammaMode};
    use dema_core::event::{Event, WindowId};
    use dema_core::quantile::Quantile;
    use dema_core::selector::SelectionStrategy;
    use dema_metrics::{NetworkCounters, ReactorStats};
    use dema_net::mem::link;
    use dema_net::reactor::{Reactor, RecvSource};
    use dema_net::MsgReceiver;

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, 0, i as u64))
            .collect()
    }

    fn dema_engine() -> EngineKind {
        EngineKind::Dema {
            gamma: GammaMode::Fixed(4),
            strategy: SelectionStrategy::WindowCut,
        }
    }

    /// A full reactor-hosted Dema run with the runner's loop split: one
    /// shard reactor hosting the local + its responder, the root on its
    /// own reactor. The protocol completes with an exact answer and the
    /// shutdown cascade (into_results → ctl close → responder retires)
    /// lets the shard exit.
    #[test]
    fn reactor_shards_complete_a_dema_run() {
        let close_times = crate::local::new_close_times();
        let (up_tx, up_rx) = link(NetworkCounters::new_shared());
        let (resp_tx, resp_rx) = link(NetworkCounters::new_shared());
        let (ctl_tx, ctl_rx) = link(NetworkCounters::new_shared());

        let shard_close_times = std::sync::Arc::clone(&close_times);
        let shard = dema_net::reactor::spawn_shard("host-test-shard".into(), move || {
            let shared = LocalShared::new(4);
            let stepper = LocalStepper::new(
                NodeId(0),
                vec![events(&[5, 1, 9, 3, 7, 2, 8, 4])],
                dema_engine(),
                &shared,
            );
            let mut reactor = Reactor::new(ReactorStats::new_shared());
            let mut local_host = RoleHost::new(
                LocalRole::new(NodeId(0), stepper, shard_close_times, None),
                vec![Box::new(up_tx)],
            );
            let mut resp_host = RoleHost::new(
                ResponderRole::new(NodeId(0), &shared),
                vec![Box::new(resp_tx)],
            );
            reactor.register(1, 0, Box::new(RecvSource(Box::new(ctl_rx))));
            let mut handlers: Vec<&mut dyn Handler<ClusterError>> =
                vec![&mut local_host, &mut resp_host];
            reactor.run(&mut handlers).unwrap();
            let mut errs = Vec::new();
            errs.extend(local_host.take_error());
            errs.extend(resp_host.take_error());
            errs
        })
        .unwrap();

        let root = RootNode::new(
            Quantile::MEDIAN,
            dema_engine(),
            1,
            1,
            vec![Box::new(ctl_tx)],
            crate::local::new_close_times(),
        );
        let mut reactor = Reactor::new(ReactorStats::new_shared());
        let mut root_host = RoleHost::new(RootRole::new(root), Vec::new());
        reactor.register(0, 0, Box::new(RecvSource(Box::new(up_rx))));
        reactor.register(0, 1, Box::new(RecvSource(Box::new(resp_rx))));
        {
            let mut handlers: Vec<&mut dyn Handler<ClusterError>> = vec![&mut root_host];
            reactor.run(&mut handlers).unwrap();
        }
        let (role, err) = root_host.into_parts();
        assert!(err.is_none());
        // into_results drops the engine's control sender, releasing the
        // shard's responder; only then reap the shard.
        let (outcomes, _) = role.into_root().into_results();
        drop(reactor);
        let errs = shard.join().unwrap();
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(outcomes[0].value, Some(4)); // rank 4 of [1,2,3,4,5,7,8,9]
        assert_eq!(outcomes[0].total_events, 8);
        assert!(close_times.lock().contains_key(&(0, 0)));
    }

    /// A failing role retires without killing the shard: its links drop
    /// (peers see Disconnected) and the error is recoverable afterwards.
    #[test]
    fn role_failure_is_absorbed_and_links_drop() {
        struct Bomb;
        impl Stepper for Bomb {
            fn on_message(
                &mut self,
                _l: usize,
                _m: Message,
                _o: &mut Vec<Outbound>,
            ) -> Result<(), ClusterError> {
                Ok(())
            }
            fn on_timer(&mut self, _t: u64, _o: &mut Vec<Outbound>) -> Result<(), ClusterError> {
                Ok(())
            }
            fn on_disconnect(
                &mut self,
                _l: usize,
                _o: &mut Vec<Outbound>,
            ) -> Result<(), ClusterError> {
                Ok(())
            }
            fn on_wake(&mut self, _o: &mut Vec<Outbound>) -> Result<(), ClusterError> {
                Err(ClusterError::Protocol("boom".into()))
            }
            fn done(&self) -> bool {
                false
            }
        }
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let mut host = RoleHost::new(Bomb, vec![Box::new(tx)]);
        let mut reactor = Reactor::new(ReactorStats::new_shared());
        let mut handlers: Vec<&mut dyn Handler<ClusterError>> = vec![&mut host];
        // The initial wake detonates; the host absorbs it and reports done.
        reactor.run(&mut handlers).unwrap();
        assert!(matches!(
            host.take_error(),
            Some(ClusterError::Protocol(msg)) if msg == "boom"
        ));
        assert!(matches!(rx.recv(), Err(NetError::Disconnected)));
    }

    /// The relay role forwards upward traffic by value and routes envelopes
    /// downward with the leaf/inner unwrap rule of the threaded relay.
    #[test]
    fn relay_role_routes_like_the_threaded_relay() {
        let mut relay = RelayRole::new(
            1,
            vec![
                RelayChildRoute {
                    range: (0, 0),
                    via: 1,
                    leaf: true,
                },
                RelayChildRoute {
                    range: (1, 3),
                    via: 2,
                    leaf: false,
                },
            ],
            true,
        );
        let mut out = Vec::new();
        relay
            .on_message(
                0,
                Message::StreamEnd {
                    node: NodeId(0),
                    late_events: 0,
                },
                &mut out,
            )
            .unwrap();
        assert!(matches!(
            out.pop(),
            Some(Outbound::Send {
                via: RELAY_PARENT_UP,
                msg: Message::StreamEnd { .. }
            })
        ));
        // Leaf child: unwrapped. Inner child: envelope kept.
        relay
            .on_message(
                1,
                Message::Routed {
                    dest: NodeId(0),
                    inner: Box::new(Message::GammaUpdate { gamma: 9 }),
                },
                &mut out,
            )
            .unwrap();
        assert!(matches!(
            out.pop(),
            Some(Outbound::Send {
                via: 1,
                msg: Message::GammaUpdate { gamma: 9 }
            })
        ));
        relay
            .on_message(
                1,
                Message::Routed {
                    dest: NodeId(2),
                    inner: Box::new(Message::GammaUpdate { gamma: 5 }),
                },
                &mut out,
            )
            .unwrap();
        assert!(matches!(
            out.pop(),
            Some(Outbound::Send {
                via: 2,
                msg: Message::Routed { .. }
            })
        ));
        // Unrouted downward traffic is a protocol violation…
        assert!(relay
            .on_message(1, Message::GammaUpdate { gamma: 1 }, &mut out)
            .is_err());
        // …and the parent-down close cascades Close to every child.
        relay.on_disconnect(1, &mut out).unwrap();
        assert!(!relay.done(), "child uplink still open");
        assert_eq!(
            out.iter()
                .filter(|o| matches!(o, Outbound::Close { .. }))
                .count(),
            2
        );
        relay.on_disconnect(0, &mut Vec::new()).unwrap();
        assert!(relay.done());
    }

    /// Pacing through the reactor: a paced local arms a timer instead of
    /// sleeping, and the windows still close in order.
    #[test]
    fn paced_local_arms_timers() {
        let shared = LocalShared::new(4);
        let close_times = crate::local::new_close_times();
        let stepper = LocalStepper::new(
            NodeId(0),
            vec![events(&[2, 1]), events(&[4, 3])],
            dema_engine(),
            &shared,
        );
        let mut role = LocalRole::new(NodeId(0), stepper, close_times, Some(50));
        // Window 0 is due immediately (0 · 50ms); window 1 is not.
        let mut out = Vec::new();
        role.on_wake(&mut out).unwrap();
        assert!(
            out.iter().any(|o| matches!(
                o,
                Outbound::Send {
                    via: 0,
                    msg: Message::SynopsisBatch {
                        window: WindowId(0),
                        ..
                    }
                }
            )),
            "window 0 closes on the first pump"
        );
        out.clear();
        role.on_wake(&mut out).unwrap();
        match out.as_slice() {
            [Outbound::Timer { token: 1, .. }] => {}
            other => panic!("expected a pacing timer for window 1, got {other:?}"),
        }
    }
}
