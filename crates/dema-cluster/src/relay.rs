//! Relay nodes for multi-level aggregation trees.
//!
//! A relay is engine-agnostic plumbing: it forwards whatever its children
//! send *up* to its parent unchanged (synopses, event batches, sketches,
//! stream ends — re-encoded identically, so a tier's upward byte count
//! equals the tier below it), and it routes control messages *down*. The
//! root addresses a leaf by wrapping the control message in a
//! [`Message::Routed`] envelope; each relay looks at the destination, and
//! either unwraps the envelope (when the owning child *is* that leaf's
//! responder link) or forwards the envelope one tier further down.
//!
//! Shutdown cascades exactly like the star: the root drops its control
//! senders, the top relay sees its parent's downlink disconnect and drops
//! its own child downlinks, and so on until the leaf responders exit.

use dema_core::sync::Mutex;
use dema_net::{MsgReceiver, MsgSender, NetError};
use dema_wire::Message;
use std::sync::Arc;
use std::time::Duration;

use crate::ClusterError;

/// A relay's downward handle on one child subtree.
pub struct RelayChild {
    /// Inclusive range of leaf node ids the child subtree covers.
    pub range: (u32, u32),
    /// Downlink into the child.
    pub sender: Box<dyn MsgSender>,
    /// `true` when the child is a leaf (its responder expects the *inner*
    /// control message, not the routing envelope).
    pub leaf: bool,
}

/// A [`MsgSender`] that wraps every message in a [`Message::Routed`]
/// envelope addressed to one leaf, multiplexing many logical control links
/// over one physical downlink (shared via the mutex).
pub struct RoutedSender {
    dest: dema_core::event::NodeId,
    inner: Arc<Mutex<Box<dyn MsgSender>>>,
}

impl RoutedSender {
    /// Address `dest` over the shared physical downlink `inner`.
    pub fn new(
        dest: dema_core::event::NodeId,
        inner: Arc<Mutex<Box<dyn MsgSender>>>,
    ) -> RoutedSender {
        RoutedSender { dest, inner }
    }
}

impl MsgSender for RoutedSender {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let wrapped = Message::Routed {
            dest: self.dest,
            inner: Box::new(msg.clone()),
        };
        self.inner.lock().send(&wrapped)
    }

    fn flush_pending(&mut self) -> Result<bool, NetError> {
        self.inner.lock().flush_pending()
    }
}

/// Drive one relay node until both directions drain.
///
/// Upward: every message from `children_up` is forwarded to `parent_up`
/// verbatim. Downward: [`Message::Routed`] envelopes from `parent_down` are
/// delivered to the child whose leaf range covers the destination —
/// unwrapped for leaf children, forwarded as-is otherwise. The relay exits
/// once every child uplink has disconnected *and* the parent downlink is
/// gone (or was never wired, for engines without a control plane).
///
/// # Errors
/// A transport failure on a live link, a downward message without an
/// envelope, or a destination no child covers aborts the relay.
pub fn run_relay(
    children_up: Vec<Box<dyn MsgReceiver>>,
    mut parent_up: Box<dyn MsgSender>,
    mut parent_down: Option<Box<dyn MsgReceiver>>,
    mut children_down: Vec<RelayChild>,
) -> Result<(), ClusterError> {
    let mut ups: Vec<Option<Box<dyn MsgReceiver>>> = children_up.into_iter().map(Some).collect();
    let mut idle_sweeps = 0u32;
    loop {
        let mut progressed = false;

        for slot in &mut ups {
            let Some(rx) = slot.as_mut() else { continue };
            loop {
                match rx.try_recv() {
                    Ok(Some(msg)) => {
                        progressed = true;
                        parent_up.send(&msg)?;
                    }
                    Ok(None) => break,
                    Err(NetError::Disconnected) => {
                        *slot = None;
                        progressed = true;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }

        let mut close_down = false;
        if let Some(down) = parent_down.as_mut() {
            loop {
                match down.try_recv() {
                    Ok(Some(Message::Routed { dest, inner })) => {
                        progressed = true;
                        let child = children_down
                            .iter_mut()
                            .find(|c| c.range.0 <= dest.0 && dest.0 <= c.range.1)
                            .ok_or_else(|| {
                                ClusterError::Protocol(format!(
                                    "relay: no child covers destination node {}",
                                    dest.0
                                ))
                            })?;
                        if child.leaf {
                            child.sender.send(&inner)?;
                        } else {
                            child.sender.send(&Message::Routed { dest, inner })?;
                        }
                    }
                    Ok(Some(msg)) => {
                        return Err(ClusterError::Protocol(format!(
                            "relay: unrouted downward message {msg:?}"
                        )));
                    }
                    Ok(None) => break,
                    Err(NetError::Disconnected) => {
                        close_down = true;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if close_down {
            // The root (or the relay above) is done: cascade the shutdown by
            // dropping our own downlinks so the tier below exits too.
            parent_down = None;
            children_down.clear();
            progressed = true;
        }

        if ups.iter().all(Option::is_none) && parent_down.is_none() {
            return Ok(());
        }

        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps += 1;
            if idle_sweeps > 64 {
                std::thread::sleep(Duration::from_micros(20));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dema_core::event::{NodeId, WindowId};
    use dema_core::sync::rank;
    use dema_metrics::NetworkCounters;
    use dema_net::mem::link;

    #[test]
    fn routed_sender_wraps_every_message() {
        let (tx, mut rx) = link(NetworkCounters::new_shared());
        let shared: Arc<Mutex<Box<dyn MsgSender>>> =
            Arc::new(Mutex::new(rank::ROUTED_DOWNLINK, Box::new(tx)));
        let mut a = RoutedSender::new(NodeId(3), Arc::clone(&shared));
        let mut b = RoutedSender::new(NodeId(7), shared);
        a.send(&Message::GammaUpdate { gamma: 64 }).unwrap();
        b.send(&Message::CandidateRequest {
            window: WindowId(1),
            slices: vec![0],
        })
        .unwrap();
        match rx.recv().unwrap() {
            Message::Routed { dest, inner } => {
                assert_eq!(dest, NodeId(3));
                assert!(matches!(*inner, Message::GammaUpdate { gamma: 64 }));
            }
            other => panic!("{other:?}"),
        }
        match rx.recv().unwrap() {
            Message::Routed { dest, .. } => assert_eq!(dest, NodeId(7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relay_forwards_up_and_routes_down() {
        let mk = || link(NetworkCounters::new_shared());
        let (mut child0_tx, child0_rx) = mk();
        let (mut child1_tx, child1_rx) = mk();
        let (parent_up_tx, mut parent_up_rx) = mk();
        let (mut parent_down_tx, parent_down_rx) = mk();
        let (down0_tx, mut down0_rx) = mk();
        let (down1_tx, mut down1_rx) = mk();

        let handle = std::thread::spawn(move || {
            run_relay(
                vec![Box::new(child0_rx), Box::new(child1_rx)],
                Box::new(parent_up_tx),
                Some(Box::new(parent_down_rx)),
                vec![
                    RelayChild {
                        range: (0, 0),
                        sender: Box::new(down0_tx),
                        leaf: true,
                    },
                    RelayChild {
                        range: (1, 3),
                        sender: Box::new(down1_tx),
                        leaf: false,
                    },
                ],
            )
        });

        // Upward messages pass through verbatim.
        child0_tx
            .send(&Message::StreamEnd {
                node: NodeId(0),
                late_events: 0,
            })
            .unwrap();
        child1_tx
            .send(&Message::StreamEnd {
                node: NodeId(2),
                late_events: 1,
            })
            .unwrap();
        let mut ends = [parent_up_rx.recv().unwrap(), parent_up_rx.recv().unwrap()];
        ends.sort_by_key(|m| match m {
            Message::StreamEnd { node, .. } => node.0,
            _ => u32::MAX,
        });
        assert!(matches!(
            ends[0],
            Message::StreamEnd {
                node: NodeId(0),
                late_events: 0
            }
        ));
        assert!(matches!(
            ends[1],
            Message::StreamEnd {
                node: NodeId(2),
                late_events: 1
            }
        ));

        // Downward: leaf child gets the unwrapped message…
        parent_down_tx
            .send(&Message::Routed {
                dest: NodeId(0),
                inner: Box::new(Message::GammaUpdate { gamma: 9 }),
            })
            .unwrap();
        assert!(matches!(
            down0_rx.recv().unwrap(),
            Message::GammaUpdate { gamma: 9 }
        ));
        // …while an inner child receives the envelope unchanged.
        parent_down_tx
            .send(&Message::Routed {
                dest: NodeId(2),
                inner: Box::new(Message::GammaUpdate { gamma: 5 }),
            })
            .unwrap();
        match down1_rx.recv().unwrap() {
            Message::Routed { dest, inner } => {
                assert_eq!(dest, NodeId(2));
                assert!(matches!(*inner, Message::GammaUpdate { gamma: 5 }));
            }
            other => panic!("{other:?}"),
        }

        // Shutdown cascade: close both directions and the relay exits.
        drop(child0_tx);
        drop(child1_tx);
        drop(parent_down_tx);
        handle.join().unwrap().unwrap();
        // Downstream links died with the relay.
        assert!(matches!(down0_rx.recv(), Err(NetError::Disconnected)));
        assert!(matches!(down1_rx.recv(), Err(NetError::Disconnected)));
        assert!(matches!(parent_up_rx.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn relay_rejects_unrouted_and_unowned() {
        let mk = || link(NetworkCounters::new_shared());
        let (child_tx, child_rx) = mk();
        let (parent_up_tx, _parent_up_rx) = mk();
        let (mut parent_down_tx, parent_down_rx) = mk();
        let (down_tx, _down_rx) = mk();
        let handle = std::thread::spawn(move || {
            run_relay(
                vec![Box::new(child_rx)],
                Box::new(parent_up_tx),
                Some(Box::new(parent_down_rx)),
                vec![RelayChild {
                    range: (0, 1),
                    sender: Box::new(down_tx),
                    leaf: true,
                }],
            )
        });
        parent_down_tx
            .send(&Message::Routed {
                dest: NodeId(5),
                inner: Box::new(Message::GammaUpdate { gamma: 2 }),
            })
            .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)), "{err}");
        drop(child_tx);
    }
}
