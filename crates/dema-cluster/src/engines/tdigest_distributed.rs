//! The distributed t-digest extension (approximate) — the setup the paper
//! predicts ("we expect Tdigest to outperform Dema also with a
//! decentralized setup"): locals build digests, centroids are shipped, the
//! root merges.

use std::collections::{BTreeMap, HashSet};

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::numeric::{f64_to_i64, i64_to_f64, len_to_u64};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_sketch::{QuantileSketch, TDigest};
use dema_wire::Message;

use super::retry::{self, Supervisor};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: HashSet<u32>,
    digest: Option<TDigest>,
    count: u64,
}

impl retry::Contributions for WindowState {
    fn reported(&self) -> &HashSet<u32> {
        &self.reported
    }
}

/// Root half: merge per-node digests.
pub struct TdigestDistributedRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    control: Vec<Box<dyn MsgSender>>,
    sup: Option<Supervisor>,
}

impl TdigestDistributedRoot {
    /// Build from the shell params (compression travels with each batch).
    pub fn new(params: RootParams) -> TdigestDistributedRoot {
        TdigestDistributedRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            control: params.control,
            sup: params.resilience.map(Supervisor::new),
        }
    }

    fn finalize_window(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self.states.remove(&window.0).unwrap_or_default();
        let degraded = retry::close_window(&mut self.sup, window.0, &state.reported, self.n_locals);
        let total = state.count;
        if total == 0 {
            resolved.push((
                window,
                ResolvedWindow {
                    degraded,
                    ..Default::default()
                },
            ));
            return Ok(());
        }
        let digest = state.digest.as_ref().ok_or_else(|| {
            ClusterError::Protocol(format!("{window}: digest count {total} without a digest"))
        })?;
        let value = digest.quantile(self.quantile.fraction()).map(f64_to_i64);
        resolved.push((
            window,
            ResolvedWindow {
                value,
                total_events: total,
                degraded,
                ..Default::default()
            },
        ));
        Ok(())
    }
}

impl RootEngine for TdigestDistributedRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::DigestBatch {
            node,
            window,
            count,
            compression,
            centroids,
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "tdigest-dist root: unexpected message {msg:?}"
            )));
        };
        if !retry::admit(&mut self.sup, window.0, node.0) {
            return Ok(());
        }
        let state = self.states.entry(window.0).or_default();
        if !state.reported.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        let incoming = TDigest::from_centroids(compression, centroids);
        match &mut state.digest {
            Some(d) => d.merge_from(&incoming),
            None => state.digest = Some(incoming),
        }
        state.count += count;
        if retry::covered(&self.sup, &state.reported, self.n_locals) {
            self.finalize_window(window, resolved)?;
        }
        Ok(())
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        let (newly_dead, completable) = retry::run_tick(
            sup,
            &mut self.control,
            &self.states,
            self.n_locals,
            expected_windows,
            quiescent,
            missing_enders,
        )?;
        for w in completable {
            self.finalize_window(WindowId(w), resolved)?;
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }
}

/// Local half: build a digest per window, ship its centroids.
pub struct TdigestDistributedLocal {
    compression: f64,
}

impl TdigestDistributedLocal {
    /// Build the local half with digest compression δ.
    pub fn new(compression: f64) -> TdigestDistributedLocal {
        TdigestDistributedLocal { compression }
    }
}

impl LocalEngine for TdigestDistributedLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        let mut digest = TDigest::new(self.compression);
        for e in &events {
            digest.insert(i64_to_f64(e.value));
        }
        let centroids = digest.centroids().to_vec();
        to_root.send(&Message::DigestBatch {
            node,
            window,
            count: len_to_u64(events.len()),
            compression: self.compression,
            centroids,
        })?;
        Ok(())
    }
}
