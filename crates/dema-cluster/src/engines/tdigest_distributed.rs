//! The distributed t-digest extension (approximate) — the setup the paper
//! predicts ("we expect Tdigest to outperform Dema also with a
//! decentralized setup"): locals build digests, centroids are shipped, the
//! root merges.

use std::collections::BTreeMap;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::numeric::{f64_to_i64, i64_to_f64, len_to_u64};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_sketch::{QuantileSketch, TDigest};
use dema_wire::Message;

use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: usize,
    digest: Option<TDigest>,
    count: u64,
}

/// Root half: merge per-node digests.
pub struct TdigestDistributedRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
}

impl TdigestDistributedRoot {
    /// Build from the shell params (compression travels with each batch).
    pub fn new(params: RootParams) -> TdigestDistributedRoot {
        TdigestDistributedRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
        }
    }
}

impl RootEngine for TdigestDistributedRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::DigestBatch {
            window,
            count,
            compression,
            centroids,
            ..
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "tdigest-dist root: unexpected message {msg:?}"
            )));
        };
        let state = self.states.entry(window.0).or_default();
        let incoming = TDigest::from_centroids(compression, centroids);
        match &mut state.digest {
            Some(d) => d.merge_from(&incoming),
            None => state.digest = Some(incoming),
        }
        state.count += count;
        state.reported += 1;
        if state.reported == self.n_locals {
            let total = state.count;
            if total == 0 {
                self.states.remove(&window.0);
                resolved.push((window, ResolvedWindow::default()));
                return Ok(());
            }
            let digest = state.digest.as_ref().ok_or_else(|| {
                ClusterError::Protocol(format!("{window}: digest count {total} without a digest"))
            })?;
            let value = digest.quantile(self.quantile.fraction()).map(f64_to_i64);
            self.states.remove(&window.0);
            resolved.push((
                window,
                ResolvedWindow {
                    value,
                    total_events: total,
                    ..Default::default()
                },
            ));
        }
        Ok(())
    }
}

/// Local half: build a digest per window, ship its centroids.
pub struct TdigestDistributedLocal {
    compression: f64,
}

impl TdigestDistributedLocal {
    /// Build the local half with digest compression δ.
    pub fn new(compression: f64) -> TdigestDistributedLocal {
        TdigestDistributedLocal { compression }
    }
}

impl LocalEngine for TdigestDistributedLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        let mut digest = TDigest::new(self.compression);
        for e in &events {
            digest.insert(i64_to_f64(e.value));
        }
        let centroids = digest.centroids().to_vec();
        to_root.send(&Message::DigestBatch {
            node,
            window,
            count: len_to_u64(events.len()),
            compression: self.compression,
            centroids,
        })?;
        Ok(())
    }
}
