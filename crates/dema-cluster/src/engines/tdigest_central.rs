//! The centralized t-digest baseline (approximate) — raw events to the
//! root, which feeds a single t-digest (Dunning & Ertl) and reports an
//! approximate quantile. Same wire cost as the centralized engine, less
//! root CPU, no exactness.

use std::collections::{BTreeMap, HashSet};

use dema_core::event::{NodeId, WindowId};
use dema_core::numeric::{f64_to_i64, i64_to_f64, len_to_u64};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_sketch::{QuantileSketch, TDigest};
use dema_wire::Message;

use super::retry::{self, Supervisor};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

struct WindowState {
    reported: HashSet<u32>,
    digest: TDigest,
    count: u64,
}

impl retry::Contributions for WindowState {
    fn reported(&self) -> &HashSet<u32> {
        &self.reported
    }
}

/// Root half: insert every raw event into one digest per window.
pub struct TdigestCentralRoot {
    quantile: Quantile,
    compression: f64,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    control: Vec<Box<dyn MsgSender>>,
    sup: Option<Supervisor>,
}

impl TdigestCentralRoot {
    /// Build from the digest compression δ and the shell params.
    pub fn new(compression: f64, params: RootParams) -> TdigestCentralRoot {
        TdigestCentralRoot {
            quantile: params.quantile,
            compression,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            control: params.control,
            sup: params.resilience.map(Supervisor::new),
        }
    }

    fn finalize_window(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = match self.states.remove(&window.0) {
            Some(s) => s,
            None => WindowState {
                reported: HashSet::new(),
                digest: TDigest::new(self.compression),
                count: 0,
            },
        };
        let degraded = retry::close_window(&mut self.sup, window.0, &state.reported, self.n_locals);
        let total = state.count;
        let value = if total == 0 {
            None
        } else {
            state
                .digest
                .quantile(self.quantile.fraction())
                .map(f64_to_i64)
        };
        resolved.push((
            window,
            ResolvedWindow {
                value,
                total_events: total,
                degraded,
                ..Default::default()
            },
        ));
        Ok(())
    }
}

impl RootEngine for TdigestCentralRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch {
            node,
            window,
            events,
            ..
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "tdigest root: unexpected message {msg:?}"
            )));
        };
        if !retry::admit(&mut self.sup, window.0, node.0) {
            return Ok(());
        }
        let compression = self.compression;
        let state = self.states.entry(window.0).or_insert_with(|| WindowState {
            reported: HashSet::new(),
            digest: TDigest::new(compression),
            count: 0,
        });
        if !state.reported.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        for e in &events {
            state.digest.insert(i64_to_f64(e.value));
        }
        state.count += len_to_u64(events.len());
        if retry::covered(&self.sup, &state.reported, self.n_locals) {
            self.finalize_window(window, resolved)?;
        }
        Ok(())
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        let (newly_dead, completable) = retry::run_tick(
            sup,
            &mut self.control,
            &self.states,
            self.n_locals,
            expected_windows,
            quiescent,
            missing_enders,
        )?;
        for w in completable {
            self.finalize_window(WindowId(w), resolved)?;
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }
}

/// Local half: ship the window raw (the digest is built at the root).
pub struct TdigestCentralLocal;

impl LocalEngine for TdigestCentralLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<dema_core::event::Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: false,
            events,
        })?;
        Ok(())
    }
}
