//! The centralized t-digest baseline (approximate) — raw events to the
//! root, which feeds a single t-digest (Dunning & Ertl) and reports an
//! approximate quantile. Same wire cost as the centralized engine, less
//! root CPU, no exactness.

use std::collections::BTreeMap;

use dema_core::event::{NodeId, WindowId};
use dema_core::numeric::{f64_to_i64, i64_to_f64, len_to_u64};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_sketch::{QuantileSketch, TDigest};
use dema_wire::Message;

use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

struct WindowState {
    reported: usize,
    digest: TDigest,
    count: u64,
}

/// Root half: insert every raw event into one digest per window.
pub struct TdigestCentralRoot {
    quantile: Quantile,
    compression: f64,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
}

impl TdigestCentralRoot {
    /// Build from the digest compression δ and the shell params.
    pub fn new(compression: f64, params: RootParams) -> TdigestCentralRoot {
        TdigestCentralRoot {
            quantile: params.quantile,
            compression,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
        }
    }
}

impl RootEngine for TdigestCentralRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch { window, events, .. } = msg else {
            return Err(ClusterError::Protocol(format!(
                "tdigest root: unexpected message {msg:?}"
            )));
        };
        let compression = self.compression;
        let state = self.states.entry(window.0).or_insert_with(|| WindowState {
            reported: 0,
            digest: TDigest::new(compression),
            count: 0,
        });
        for e in &events {
            state.digest.insert(i64_to_f64(e.value));
        }
        state.count += len_to_u64(events.len());
        state.reported += 1;
        if state.reported == self.n_locals {
            let total = state.count;
            let value = state
                .digest
                .quantile(self.quantile.fraction())
                .map(f64_to_i64);
            self.states.remove(&window.0);
            resolved.push((
                window,
                ResolvedWindow {
                    value,
                    total_events: total,
                    ..Default::default()
                },
            ));
        }
        Ok(())
    }
}

/// Local half: ship the window raw (the digest is built at the root).
pub struct TdigestCentralLocal;

impl LocalEngine for TdigestCentralLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<dema_core::event::Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: false,
            events,
        })?;
        Ok(())
    }
}
