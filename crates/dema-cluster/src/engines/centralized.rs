//! The centralized baseline (exact) — Scotty/Flink-style: every raw event
//! is shipped to the root, which sorts the whole window and picks the
//! quantile. This is exactly the bottleneck the paper measures against.

use std::collections::BTreeMap;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::numeric::len_to_u64;
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_wire::Message;

use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: usize,
    batches: Vec<Vec<Event>>,
}

/// Root half: accumulate raw batches, sort, answer.
pub struct CentralizedRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
}

impl CentralizedRoot {
    /// Build from the shell params.
    pub fn new(params: RootParams) -> CentralizedRoot {
        CentralizedRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
        }
    }
}

impl RootEngine for CentralizedRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch { window, events, .. } = msg else {
            return Err(ClusterError::Protocol(format!(
                "centralized root: unexpected message {msg:?}"
            )));
        };
        let state = self.states.entry(window.0).or_default();
        state.batches.push(events);
        state.reported += 1;
        if state.reported == self.n_locals {
            let mut all: Vec<Event> = state.batches.drain(..).flatten().collect();
            self.states.remove(&window.0);
            let total = len_to_u64(all.len());
            if total == 0 {
                resolved.push((window, ResolvedWindow::default()));
                return Ok(());
            }
            // The centralized root does the full sort itself.
            all.sort_unstable();
            let k = self.quantile.pos(total)?;
            let value = all
                .get(dema_core::numeric::u64_to_usize(k - 1))
                .map(|e| e.value)
                .ok_or_else(|| {
                    ClusterError::Protocol(format!("{window}: rank {k} beyond {total} events"))
                })?;
            resolved.push((
                window,
                ResolvedWindow {
                    value: Some(value),
                    total_events: total,
                    ..Default::default()
                },
            ));
        }
        Ok(())
    }
}

/// Local half: ship the window raw.
pub struct CentralizedLocal;

impl LocalEngine for CentralizedLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: false,
            events,
        })?;
        Ok(())
    }
}
