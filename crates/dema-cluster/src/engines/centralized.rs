//! The centralized baseline (exact) — Scotty/Flink-style: every raw event
//! is shipped to the root, which sorts the whole window and picks the
//! quantile. This is exactly the bottleneck the paper measures against.

use std::collections::{BTreeMap, HashSet};

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::numeric::len_to_u64;
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_wire::Message;

use super::retry::{self, Supervisor};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: HashSet<u32>,
    batches: Vec<Vec<Event>>,
}

impl retry::Contributions for WindowState {
    fn reported(&self) -> &HashSet<u32> {
        &self.reported
    }
}

/// Root half: accumulate raw batches, sort, answer.
pub struct CentralizedRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    control: Vec<Box<dyn MsgSender>>,
    sup: Option<Supervisor>,
}

impl CentralizedRoot {
    /// Build from the shell params.
    pub fn new(params: RootParams) -> CentralizedRoot {
        CentralizedRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            control: params.control,
            sup: params.resilience.map(Supervisor::new),
        }
    }

    fn finalize_window(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self.states.remove(&window.0).unwrap_or_default();
        let degraded = retry::close_window(&mut self.sup, window.0, &state.reported, self.n_locals);
        let mut all: Vec<Event> = state.batches.into_iter().flatten().collect();
        let total = len_to_u64(all.len());
        if total == 0 {
            resolved.push((
                window,
                ResolvedWindow {
                    degraded,
                    ..Default::default()
                },
            ));
            return Ok(());
        }
        // The centralized root does the full sort itself.
        all.sort_unstable();
        let k = self.quantile.pos(total)?;
        let value = all
            .get(dema_core::numeric::u64_to_usize(k - 1))
            .map(|e| e.value)
            .ok_or_else(|| {
                ClusterError::Protocol(format!("{window}: rank {k} beyond {total} events"))
            })?;
        resolved.push((
            window,
            ResolvedWindow {
                value: Some(value),
                total_events: total,
                degraded,
                ..Default::default()
            },
        ));
        Ok(())
    }
}

impl RootEngine for CentralizedRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch {
            node,
            window,
            events,
            ..
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "centralized root: unexpected message {msg:?}"
            )));
        };
        if !retry::admit(&mut self.sup, window.0, node.0) {
            return Ok(());
        }
        let state = self.states.entry(window.0).or_default();
        if !state.reported.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        state.batches.push(events);
        if retry::covered(&self.sup, &state.reported, self.n_locals) {
            self.finalize_window(window, resolved)?;
        }
        Ok(())
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        let (newly_dead, completable) = retry::run_tick(
            sup,
            &mut self.control,
            &self.states,
            self.n_locals,
            expected_windows,
            quiescent,
            missing_enders,
        )?;
        for w in completable {
            self.finalize_window(WindowId(w), resolved)?;
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }
}

/// Local half: ship the window raw.
pub struct CentralizedLocal;

impl LocalEngine for CentralizedLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: false,
            events,
        })?;
        Ok(())
    }
}
