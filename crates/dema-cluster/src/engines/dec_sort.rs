//! The decentralized-sort baseline (exact) — modified Desis: locals sort
//! their windows and ship sorted runs; the root k-way merges (it never
//! re-sorts) and selects the quantile rank.

use std::collections::BTreeMap;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::merge::select_kth;
use dema_core::numeric::len_to_u64;
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_wire::Message;

use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: usize,
    runs: Vec<Vec<Event>>,
}

/// Root half: collect sorted runs, merge-select the rank.
pub struct DecSortRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
}

impl DecSortRoot {
    /// Build from the shell params.
    pub fn new(params: RootParams) -> DecSortRoot {
        DecSortRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
        }
    }
}

impl RootEngine for DecSortRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch { window, events, .. } = msg else {
            return Err(ClusterError::Protocol(format!(
                "dec-sort root: unexpected message {msg:?}"
            )));
        };
        let state = self.states.entry(window.0).or_default();
        state.runs.push(events);
        state.reported += 1;
        if state.reported == self.n_locals {
            let runs = std::mem::take(&mut state.runs);
            self.states.remove(&window.0);
            let total: u64 = runs.iter().map(|r| len_to_u64(r.len())).sum();
            if total == 0 {
                resolved.push((window, ResolvedWindow::default()));
                return Ok(());
            }
            // Locals pre-sorted; the root only merges.
            let k = self.quantile.pos(total)?;
            let value = select_kth(&runs, k).map_err(ClusterError::Core)?.value;
            resolved.push((
                window,
                ResolvedWindow {
                    value: Some(value),
                    total_events: total,
                    ..Default::default()
                },
            ));
        }
        Ok(())
    }
}

/// Local half: sort, then ship the sorted run.
pub struct DecSortLocal;

impl LocalEngine for DecSortLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        mut events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        events.sort_unstable();
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: true,
            events,
        })?;
        Ok(())
    }
}
