//! The decentralized-sort baseline (exact) — modified Desis: locals sort
//! their windows and ship sorted runs; the root k-way merges (it never
//! re-sorts) and selects the quantile rank.

use std::collections::{BTreeMap, HashSet};

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::merge::select_kth;
use dema_core::numeric::len_to_u64;
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_wire::Message;

use super::retry::{self, Supervisor};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: HashSet<u32>,
    runs: Vec<Vec<Event>>,
}

impl retry::Contributions for WindowState {
    fn reported(&self) -> &HashSet<u32> {
        &self.reported
    }
}

/// Root half: collect sorted runs, merge-select the rank.
pub struct DecSortRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    control: Vec<Box<dyn MsgSender>>,
    sup: Option<Supervisor>,
}

impl DecSortRoot {
    /// Build from the shell params.
    pub fn new(params: RootParams) -> DecSortRoot {
        DecSortRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            control: params.control,
            sup: params.resilience.map(Supervisor::new),
        }
    }

    fn finalize_window(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self.states.remove(&window.0).unwrap_or_default();
        let degraded = retry::close_window(&mut self.sup, window.0, &state.reported, self.n_locals);
        let runs = state.runs;
        let total: u64 = runs.iter().map(|r| len_to_u64(r.len())).sum();
        if total == 0 {
            resolved.push((
                window,
                ResolvedWindow {
                    degraded,
                    ..Default::default()
                },
            ));
            return Ok(());
        }
        // Locals pre-sorted; the root only merges.
        let k = self.quantile.pos(total)?;
        let value = select_kth(&runs, k).map_err(ClusterError::Core)?.value;
        resolved.push((
            window,
            ResolvedWindow {
                value: Some(value),
                total_events: total,
                degraded,
                ..Default::default()
            },
        ));
        Ok(())
    }
}

impl RootEngine for DecSortRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::EventBatch {
            node,
            window,
            events,
            ..
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "dec-sort root: unexpected message {msg:?}"
            )));
        };
        if !retry::admit(&mut self.sup, window.0, node.0) {
            return Ok(());
        }
        let state = self.states.entry(window.0).or_default();
        if !state.reported.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        state.runs.push(events);
        if retry::covered(&self.sup, &state.reported, self.n_locals) {
            self.finalize_window(window, resolved)?;
        }
        Ok(())
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        let (newly_dead, completable) = retry::run_tick(
            sup,
            &mut self.control,
            &self.states,
            self.n_locals,
            expected_windows,
            quiescent,
            missing_enders,
        )?;
        for w in completable {
            self.finalize_window(WindowId(w), resolved)?;
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }
}

/// Local half: sort, then ship the sorted run.
pub struct DecSortLocal {
    /// Thread budget for the window sort (`dema_core::par`).
    threads: usize,
}

impl DecSortLocal {
    /// Build the local half with an explicit sort-thread budget.
    pub fn new(threads: usize) -> DecSortLocal {
        DecSortLocal { threads }
    }
}

impl LocalEngine for DecSortLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        mut events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        dema_core::par::sort_events_with(&mut events, self.threads);
        to_root.send(&Message::EventBatch {
            node,
            window,
            sorted: true,
            events,
        })?;
        Ok(())
    }
}
