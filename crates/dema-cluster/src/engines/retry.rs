//! Retry / liveness supervisor shared by every root engine.
//!
//! The protocol's seed behavior is "a lost message hangs its window". When a
//! run carries a [`Resilience`] config, each root engine owns a
//! [`Supervisor`]: a per-window deadline table plus a per-node liveness
//! budget. A deadline is armed when the first contribution for a window
//! arrives (or, once the run goes quiescent, for every window that should
//! exist); when it expires the engine NACKs the missing nodes —
//! [`Message::ResendWindow`] for single-stage engines and Dema's stage 1,
//! [`Message::CandidateRetry`] for Dema's stage 2 — under exponential
//! backoff with seeded jitter. A node that misses `liveness_k` consecutive
//! deadlines (or is still missing when a window's retry budget runs out) is
//! declared dead; windows then complete from the survivors' data as
//! [`Degraded`] outcomes.
//!
//! Determinism: the only randomness is the retry jitter, drawn from a
//! [`FaultRng`] seeded by [`Resilience::seed`], so a chaos run's retry
//! schedule is reproducible modulo thread timing.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::WindowId;
use dema_core::numeric::len_to_u32;
use dema_metrics::FaultCounters;
use dema_net::fault::FaultRng;
use dema_net::{MsgSender, NetError};
use dema_wire::Message;

use crate::config::Resilience;
use crate::report::Degraded;
use crate::ClusterError;

/// Pseudo-window key for the stream-end deadline: NACKing a silent node's
/// [`Message::StreamEnd`] reuses the per-window machinery under this key.
/// Real window ids are dense from 0, so the collision is unreachable.
pub(crate) const END_KEY: u64 = u64::MAX;

/// Resilience parameters plus the counter sink, threaded from the runner
/// into the root engine.
#[derive(Clone)]
pub struct ResilienceCtx {
    /// Retry / liveness parameters.
    pub config: Resilience,
    /// Where the retry state machine records its work.
    pub counters: Arc<FaultCounters>,
}

/// What a deadline expiry asks the engine to do.
#[derive(Debug)]
pub(crate) enum ExpiryAction {
    /// NACK these still-live nodes; the deadline was re-armed with backoff.
    Retry {
        /// Live nodes to NACK.
        nodes: Vec<u32>,
        /// Attempt number carried in the retry message (1-based).
        attempt: u32,
        /// Nodes that crossed their liveness budget on this expiry.
        newly_dead: Vec<u32>,
    },
    /// Retry budget exhausted: every still-missing node was declared dead
    /// and the deadline removed. The engine should complete the window from
    /// survivors.
    GiveUp {
        /// Nodes declared dead by the give-up.
        newly_dead: Vec<u32>,
    },
}

struct Deadline {
    due: Instant,
    attempt: u32,
}

/// Per-window deadlines + per-node liveness, owned by a root engine.
pub(crate) struct Supervisor {
    cfg: Resilience,
    pub(crate) counters: Arc<FaultCounters>,
    rng: FaultRng,
    deadlines: BTreeMap<u64, Deadline>,
    misses: HashMap<u32, u32>,
    dead: BTreeSet<u32>,
    /// Nodes that departed cleanly via the membership drain handshake.
    /// Never charged a miss, never declared dead, and counted as covered
    /// for every window — distinct from `dead` in the run report.
    drained: BTreeSet<u32>,
    retries_of: HashMap<u64, u32>,
    done: HashSet<u64>,
}

impl Supervisor {
    pub(crate) fn new(ctx: ResilienceCtx) -> Supervisor {
        Supervisor {
            rng: FaultRng::new(ctx.config.seed),
            cfg: ctx.config,
            counters: ctx.counters,
            deadlines: BTreeMap::new(),
            misses: HashMap::new(),
            dead: BTreeSet::new(),
            drained: BTreeSet::new(),
            retries_of: HashMap::new(),
            done: HashSet::new(),
        }
    }

    /// Ceiling on any single wait the supervisor schedules. Configs with
    /// absurd `request_timeout_ms` (up to `u64::MAX`) must clamp here:
    /// unbounded `Instant + Duration` arithmetic panics on overflow.
    const MAX_WAIT: Duration = Duration::from_secs(3600);

    fn timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.request_timeout_ms.max(1)).min(Self::MAX_WAIT)
    }

    /// `now + wait`, clamped so extreme waits can never overflow `Instant`.
    fn deadline_after(wait: Duration) -> Instant {
        let now = Instant::now();
        let wait = wait.min(Self::MAX_WAIT);
        now.checked_add(wait).unwrap_or(now)
    }

    /// Arm the deadline for `w` if none is armed yet (idempotent; no-op for
    /// finished windows).
    pub(crate) fn arm(&mut self, w: u64) {
        if self.done.contains(&w) {
            return;
        }
        let due = Self::deadline_after(self.timeout());
        self.deadlines
            .entry(w)
            .or_insert(Deadline { due, attempt: 0 });
    }

    /// Drop the deadline for `w` (stage handoff or nothing left to wait on).
    pub(crate) fn disarm(&mut self, w: u64) {
        self.deadlines.remove(&w);
    }

    /// A message from `node` arrived: reset its consecutive-miss budget.
    pub(crate) fn note_alive(&mut self, node: u32) {
        if !self.dead.contains(&node) {
            self.misses.remove(&node);
        }
    }

    pub(crate) fn is_dead(&self, node: u32) -> bool {
        self.dead.contains(&node)
    }

    /// Mark `node` cleanly departed: its miss streak is wiped, it counts as
    /// covered everywhere, and no expiry will ever charge (or kill) it. A
    /// node already declared dead stays dead — drain is a verdict for nodes
    /// the liveness budget never condemned.
    pub(crate) fn mark_drained(&mut self, node: u32) {
        if !self.dead.contains(&node) && self.drained.insert(node) {
            self.misses.remove(&node);
            self.counters.record_node_drained();
        }
    }

    pub(crate) fn is_drained(&self, node: u32) -> bool {
        self.drained.contains(&node)
    }

    pub(crate) fn is_done(&self, w: u64) -> bool {
        self.done.contains(&w)
    }

    /// Mark `w` finished: its deadline is dropped and late contributions are
    /// suppressed as duplicates.
    pub(crate) fn finish(&mut self, w: u64) {
        self.done.insert(w);
        self.deadlines.remove(&w);
        self.retries_of.remove(&w);
    }

    /// Retry messages sent so far for window `w` (for the degraded record).
    pub(crate) fn retries_of(&self, w: u64) -> u32 {
        self.retries_of.get(&w).copied().unwrap_or(0)
    }

    /// `true` when every local either contributed (`reported`), is dead,
    /// or drained away cleanly.
    pub(crate) fn covered(&self, reported: Option<&HashSet<u32>>, n_locals: usize) -> bool {
        self.covered_members(reported, &(0..len_to_u32(n_locals)).collect::<Vec<u32>>())
    }

    /// [`Supervisor::covered`] against an explicit member set (membership
    /// epochs: only the window's epoch members owe a contribution).
    pub(crate) fn covered_members(&self, reported: Option<&HashSet<u32>>, members: &[u32]) -> bool {
        members.iter().all(|n| {
            reported.is_some_and(|r| r.contains(n))
                || self.dead.contains(n)
                || self.drained.contains(n)
        })
    }

    /// Earliest armed deadline, if any — the instant the reactor's timer
    /// should fire to drive this supervisor (DESIGN.md §13). `None` when
    /// no window is waiting on anything.
    pub(crate) fn next_due(&self) -> Option<Instant> {
        self.deadlines.values().map(|d| d.due).min()
    }

    /// Window keys whose deadline is due at `now`.
    // hot-path: supervisor-tick
    pub(crate) fn expired(&self, now: Instant) -> Vec<u64> {
        self.deadlines
            .iter()
            .filter(|(_, d)| d.due <= now)
            .map(|(&w, _)| w)
            .collect()
    }

    /// Handle one expiry. `missing_live` is the engine's view of which
    /// still-live nodes owe a contribution for `w`; each gets one miss
    /// charged against its liveness budget. Re-arms the deadline with
    /// exponential backoff + seeded jitter while the retry budget lasts,
    /// otherwise declares the stragglers dead and removes the deadline.
    pub(crate) fn on_expiry(&mut self, w: u64, missing_live: &[u32]) -> ExpiryAction {
        self.counters.record_timeout();
        let mut newly_dead = Vec::new();
        let mut survivors = Vec::new();
        for &n in missing_live {
            // A cleanly-departed node owes nothing: no miss, no NACK, and
            // never a death verdict.
            if self.drained.contains(&n) {
                continue;
            }
            let miss = self.misses.entry(n).or_insert(0);
            *miss += 1;
            if *miss >= self.cfg.liveness_k {
                if self.dead.insert(n) {
                    self.counters.record_node_dead();
                    newly_dead.push(n);
                }
            } else {
                survivors.push(n);
            }
        }
        let attempt = self.deadlines.get(&w).map_or(0, |d| d.attempt);
        if !survivors.is_empty() && attempt < self.cfg.max_retries {
            // `attempt` is unbounded in principle (max_retries is caller
            // config, up to u32::MAX), so every term saturates: the shift
            // is capped at 2^10, the multiply saturates, and the final
            // deadline is clamped to MAX_WAIT before touching `Instant`.
            let next = attempt.saturating_add(1);
            let base_ms = self.cfg.request_timeout_ms.max(1);
            let factor = 1u64.checked_shl(next.min(10)).unwrap_or(u64::MAX);
            let backoff = base_ms.saturating_mul(factor);
            let jitter_us = self.rng.next_below(base_ms.saturating_mul(1000) / 2 + 1);
            let wait =
                Duration::from_millis(backoff).saturating_add(Duration::from_micros(jitter_us));
            let due = Self::deadline_after(wait);
            self.deadlines.insert(w, Deadline { due, attempt: next });
            ExpiryAction::Retry {
                nodes: survivors,
                attempt: next,
                newly_dead,
            }
        } else {
            for n in survivors {
                if self.dead.insert(n) {
                    self.counters.record_node_dead();
                    newly_dead.push(n);
                }
            }
            self.deadlines.remove(&w);
            ExpiryAction::GiveUp { newly_dead }
        }
    }

    /// Record that a retry message went out for `w`.
    pub(crate) fn note_retry_sent(&mut self, w: u64) {
        *self.retries_of.entry(w).or_insert(0) += 1;
        self.counters.record_retry();
    }

    /// Build the degraded record for a window completing without every
    /// node's data, or `None` when all nodes reported. Records the
    /// degraded-window counter; the rank-error bound stays `None` (Dema
    /// fills it in where one is derivable).
    pub(crate) fn degrade_record(
        &mut self,
        w: u64,
        reported: &HashSet<u32>,
        n_locals: usize,
    ) -> Option<Degraded> {
        let missing: Vec<u32> = (0..len_to_u32(n_locals))
            .filter(|n| !reported.contains(n))
            .collect();
        if missing.is_empty() {
            return None;
        }
        self.counters.record_degraded_window();
        Some(Degraded {
            missing_nodes: missing,
            rank_error_bound: None,
            retries: self.retries_of(w),
        })
    }
}

/// Send that forgives a torn-down link: a NACK to a node whose control
/// downlink already disconnected must not abort the run — the liveness
/// budget will declare the node dead instead.
pub(crate) fn send_lossy(link: &mut dyn MsgSender, msg: &Message) -> Result<(), ClusterError> {
    match link.send(msg) {
        Ok(()) | Err(NetError::Disconnected) => Ok(()),
        Err(e) => Err(ClusterError::Net(e)),
    }
}

/// Shared tick body for single-stage engines (everything except Dema):
/// manages the stream-end deadline, charges expiries, and NACKs missing
/// contributions with [`Message::ResendWindow`]. Returns nodes newly
/// declared dead; the engine then sweeps for windows completable from
/// survivors.
pub(crate) fn tick_single_stage(
    sup: &mut Supervisor,
    control: &mut [Box<dyn MsgSender>],
    n_locals: usize,
    quiescent: bool,
    missing_enders: &[u32],
    has_reported: &dyn Fn(u64, u32) -> bool,
) -> Result<Vec<u32>, ClusterError> {
    if missing_enders.is_empty() {
        sup.disarm(END_KEY);
    } else if quiescent {
        sup.arm(END_KEY);
    }
    let mut newly_dead = Vec::new();
    let now = Instant::now();
    for w in sup.expired(now) {
        let missing: Vec<u32> = if w == END_KEY {
            missing_enders
                .iter()
                .copied()
                .filter(|&n| !sup.is_dead(n))
                .collect()
        } else {
            (0..len_to_u32(n_locals))
                .filter(|&n| !has_reported(w, n) && !sup.is_dead(n))
                .collect()
        };
        if missing.is_empty() {
            sup.disarm(w);
            continue;
        }
        match sup.on_expiry(w, &missing) {
            ExpiryAction::Retry {
                nodes,
                attempt,
                newly_dead: nd,
            } => {
                newly_dead.extend(nd);
                for n in nodes {
                    nack(
                        sup,
                        control,
                        n,
                        Message::ResendWindow {
                            window: WindowId(w),
                            attempt,
                        },
                    )?;
                }
            }
            ExpiryAction::GiveUp { newly_dead: nd } => newly_dead.extend(nd),
        }
    }
    Ok(newly_dead)
}

/// A window state that tracks which locals contributed, for the shared
/// single-stage tick.
pub(crate) trait Contributions {
    /// Locals whose contribution for this window arrived.
    fn reported(&self) -> &HashSet<u32>;
}

/// Pre-filter one arriving contribution. Suppresses it when the window is
/// already finished (a retry-induced duplicate), otherwise resets the
/// node's liveness budget and arms the window deadline. Returns `false`
/// when the message should be dropped. A no-op `true` without a supervisor.
pub(crate) fn admit(sup: &mut Option<Supervisor>, w: u64, node: u32) -> bool {
    let Some(sup) = sup.as_mut() else { return true };
    if sup.is_done(w) {
        sup.counters.record_duplicate();
        return false;
    }
    sup.note_alive(node);
    sup.arm(w);
    true
}

/// Record one suppressed duplicate (same node contributing twice).
pub(crate) fn suppress_duplicate(sup: &Option<Supervisor>) {
    if let Some(sup) = sup {
        sup.counters.record_duplicate();
    }
}

/// `true` when `reported` (plus the dead set, if supervised) covers every
/// local — the window cannot gain further contributions.
pub(crate) fn covered(sup: &Option<Supervisor>, reported: &HashSet<u32>, n_locals: usize) -> bool {
    match sup {
        Some(s) => s.covered(Some(reported), n_locals),
        None => reported.len() == n_locals,
    }
}

/// Close the books on a finishing window: build its degraded record (if
/// any) and mark it done so late duplicates are suppressed.
pub(crate) fn close_window(
    sup: &mut Option<Supervisor>,
    w: u64,
    reported: &HashSet<u32>,
    n_locals: usize,
) -> Option<Degraded> {
    let sup = sup.as_mut()?;
    let d = sup.degrade_record(w, reported, n_locals);
    sup.finish(w);
    d
}

/// Full tick for a single-stage engine: arms deadlines for every
/// outstanding window once the run is quiescent, runs
/// [`tick_single_stage`], and reports which windows became completable
/// from survivors. The engine then finalizes those windows itself.
pub(crate) fn run_tick<S: Contributions>(
    sup: &mut Supervisor,
    control: &mut [Box<dyn MsgSender>],
    states: &BTreeMap<u64, S>,
    n_locals: usize,
    expected_windows: u64,
    quiescent: bool,
    missing_enders: &[u32],
) -> Result<(Vec<u32>, Vec<u64>), ClusterError> {
    if quiescent {
        for w in 0..expected_windows {
            if !sup.is_done(w) {
                sup.arm(w);
            }
        }
    }
    let newly_dead = tick_single_stage(
        sup,
        control,
        n_locals,
        quiescent,
        missing_enders,
        &|w, n| states.get(&w).is_some_and(|s| s.reported().contains(&n)),
    )?;
    let completable = (0..expected_windows)
        .filter(|&w| !sup.is_done(w) && sup.covered(states.get(&w).map(|s| s.reported()), n_locals))
        .collect();
    Ok((newly_dead, completable))
}

/// Shared [`crate::engines::RootEngine::next_deadline`] body: the earliest
/// armed deadline of an optional supervisor.
pub(crate) fn next_due(sup: &Option<Supervisor>) -> Option<Instant> {
    sup.as_ref().and_then(Supervisor::next_due)
}

/// Send one NACK to `node`'s control link, recording it. Nodes without a
/// control link (never wired) are skipped silently.
pub(crate) fn nack(
    sup: &mut Supervisor,
    control: &mut [Box<dyn MsgSender>],
    node: u32,
    msg: Message,
) -> Result<(), ClusterError> {
    let Some(link) = control.get_mut(dema_core::numeric::u64_to_usize(u64::from(node))) else {
        return Ok(());
    };
    send_lossy(link.as_mut(), &msg)?;
    let w = match &msg {
        Message::ResendWindow { window, .. } | Message::CandidateRetry { window, .. } => window.0,
        _ => return Ok(()),
    };
    sup.note_retry_sent(w);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(timeout_ms: u64, max_retries: u32, liveness_k: u32) -> Supervisor {
        Supervisor::new(ResilienceCtx {
            config: Resilience {
                request_timeout_ms: timeout_ms,
                max_retries,
                liveness_k,
                seed: 7,
            },
            counters: FaultCounters::new_shared(),
        })
    }

    #[test]
    fn arm_is_idempotent_and_skips_finished_windows() {
        let mut s = sup(10, 2, 3);
        s.arm(0);
        let due = s.deadlines.get(&0).map(|d| d.due);
        s.arm(0);
        assert_eq!(s.deadlines.get(&0).map(|d| d.due), due);
        s.finish(0);
        s.arm(0);
        assert!(s.deadlines.is_empty());
        assert!(s.is_done(0));
    }

    #[test]
    fn backoff_saturates_at_extreme_parameters() {
        // Pathological config: u64::MAX-millisecond timeout, unbounded
        // retry budget, liveness budget that never kills the node. Every
        // step of the backoff arithmetic (shift, multiply, Duration sum,
        // Instant add) must saturate instead of overflowing or panicking.
        let mut s = sup(u64::MAX, u32::MAX, u32::MAX);
        s.arm(0);
        let mut last_attempt = 0;
        for _ in 0..64 {
            match s.on_expiry(0, &[1]) {
                ExpiryAction::Retry { attempt, .. } => {
                    assert_eq!(attempt, last_attempt + 1);
                    last_attempt = attempt;
                }
                other => panic!("budget never exhausts here: {other:?}"),
            }
            let d = s.deadlines.get(&0).expect("deadline re-armed");
            // The re-armed deadline is clamped: never further out than the
            // supervisor's wait ceiling (+ scheduling slack).
            assert!(
                d.due <= Instant::now() + Supervisor::MAX_WAIT,
                "deadline beyond MAX_WAIT at attempt {last_attempt}"
            );
        }
        // The shift cap means attempts ≥ 10 share the same (saturated)
        // backoff; attempts keep counting past the cap without wrapping.
        assert_eq!(last_attempt, 64);
    }

    #[test]
    fn backoff_shift_boundary_is_capped() {
        // At the 10-shift boundary the factor freezes at 1024×: attempts
        // 10, 11, 64 all schedule the same backoff (modulo jitter), and
        // base 1 ms keeps everything far from saturation so the window
        // deadline still moves monotonically forward.
        let mut s = sup(1, u32::MAX, u32::MAX);
        s.arm(0);
        let mut last_due = Instant::now();
        for i in 1..=12 {
            match s.on_expiry(0, &[1]) {
                ExpiryAction::Retry { attempt, .. } => assert_eq!(attempt, i),
                other => panic!("{other:?}"),
            }
            let d = s.deadlines.get(&0).expect("re-armed");
            assert!(d.due >= last_due, "deadline went backwards");
            assert!(d.due <= Instant::now() + Duration::from_millis(2048));
            last_due = d.due;
        }
    }

    #[test]
    fn expiry_retries_with_backoff_then_gives_up() {
        let mut s = sup(10, 2, 100);
        s.arm(0);
        let ExpiryAction::Retry { nodes, attempt, .. } = s.on_expiry(0, &[1]) else {
            panic!("expected a retry");
        };
        assert_eq!((nodes, attempt), (vec![1], 1));
        let d1 = s.deadlines.get(&0).map(|d| d.due).expect("re-armed");
        let ExpiryAction::Retry { attempt, .. } = s.on_expiry(0, &[1]) else {
            panic!("expected a second retry");
        };
        assert_eq!(attempt, 2);
        let d2 = s.deadlines.get(&0).map(|d| d.due).expect("re-armed");
        assert!(d2 > d1, "backoff grows the deadline");
        // Budget (max_retries = 2) exhausted: straggler dies.
        let ExpiryAction::GiveUp { newly_dead } = s.on_expiry(0, &[1]) else {
            panic!("expected give-up");
        };
        assert_eq!(newly_dead, vec![1]);
        assert!(s.is_dead(1));
        assert!(s.deadlines.is_empty());
        assert_eq!(s.counters.snapshot().timeouts, 3);
        assert_eq!(s.counters.snapshot().nodes_declared_dead, 1);
    }

    #[test]
    fn liveness_budget_declares_nodes_dead() {
        let mut s = sup(10, 100, 2);
        s.arm(0);
        assert!(matches!(
            s.on_expiry(0, &[4]),
            ExpiryAction::Retry { newly_dead, .. } if newly_dead.is_empty()
        ));
        // Second consecutive miss crosses liveness_k = 2.
        let ExpiryAction::GiveUp { newly_dead } = s.on_expiry(0, &[4]) else {
            panic!("all missing nodes died, nothing left to retry");
        };
        assert_eq!(newly_dead, vec![4]);
        assert!(s.is_dead(4));
    }

    #[test]
    fn arrivals_reset_the_liveness_budget() {
        let mut s = sup(10, 100, 2);
        s.arm(0);
        let _ = s.on_expiry(0, &[4]);
        s.note_alive(4);
        let _ = s.on_expiry(0, &[4]);
        assert!(!s.is_dead(4), "miss streak was broken by an arrival");
    }

    #[test]
    fn covered_accounts_for_dead_nodes() {
        let mut s = sup(10, 0, 1);
        let mut reported = HashSet::new();
        reported.insert(0u32);
        assert!(!s.covered(Some(&reported), 2));
        let _ = s.on_expiry(0, &[1]);
        assert!(s.is_dead(1));
        assert!(s.covered(Some(&reported), 2));
        assert!(!s.covered(None, 2), "live nodes never count as covered");
    }

    #[test]
    fn drained_nodes_are_never_charged_or_killed() {
        // liveness_k = 1: a single missed deadline kills a live node — but
        // a drained node must never be charged, retried, or declared dead.
        let mut s = sup(10, 2, 1);
        s.mark_drained(4);
        s.arm(0);
        let ExpiryAction::GiveUp { newly_dead } = s.on_expiry(0, &[4]) else {
            panic!("drained node must not be NACKed");
        };
        assert!(newly_dead.is_empty());
        assert!(!s.is_dead(4));
        assert!(s.is_drained(4));
        assert_eq!(s.counters.snapshot().nodes_drained, 1);
        assert_eq!(s.counters.snapshot().nodes_declared_dead, 0);
        // Drained counts as covered alongside reports from the others.
        let reported: HashSet<u32> = (0..4).collect();
        assert!(s.covered(Some(&reported), 5));
        assert!(s.covered_members(Some(&reported), &[0, 1, 2, 3, 4]));
        assert!(!s.covered_members(None, &[0]), "live nodes are not covered");
        // Draining twice records once.
        s.mark_drained(4);
        assert_eq!(s.counters.snapshot().nodes_drained, 1);
    }

    #[test]
    fn dead_nodes_cannot_be_retro_drained() {
        let mut s = sup(10, 2, 1);
        s.arm(0);
        let _ = s.on_expiry(0, &[3]); // liveness_k = 1: node 3 dies
        assert!(s.is_dead(3));
        s.mark_drained(3);
        assert!(!s.is_drained(3), "death verdict outranks a late drain");
        assert_eq!(s.counters.snapshot().nodes_drained, 0);
    }

    #[test]
    fn degrade_record_lists_missing_nodes_and_retries() {
        let mut s = sup(10, 3, 100);
        let mut reported = HashSet::new();
        reported.insert(0u32);
        reported.insert(2u32);
        s.note_retry_sent(7);
        s.note_retry_sent(7);
        let d = s.degrade_record(7, &reported, 3).expect("node 1 missing");
        assert_eq!(d.missing_nodes, vec![1]);
        assert_eq!(d.rank_error_bound, None);
        assert_eq!(d.retries, 2);
        assert_eq!(s.counters.snapshot().degraded_windows, 1);
        reported.insert(1u32);
        assert!(s.degrade_record(8, &reported, 3).is_none());
    }
}
