//! The distributed KLL engine (approximate) — registered to prove the
//! plugin surface: locals feed each window into a
//! [`dema_sketch::KllSketch`] (Karnin–Lang–Liberty) and ship the sketch's
//! weighted items with the exact min/max; the root unions the items across
//! nodes and answers the quantile by cumulative-weight rank.
//!
//! KLL conserves weight exactly (the sum of shipped weights equals the
//! observation count), so the union of per-node summaries is itself a valid
//! mergeable summary — rank queries over it carry the same `O(n/k)` error
//! bound as a single sketch over the concatenated stream. The conservation
//! check holds for degraded windows too: both sides of it only count
//! summaries that actually arrived.

use std::collections::{BTreeMap, HashSet};

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::numeric::{f64_to_i64, i64_to_f64, len_to_u64};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_sketch::{KllSketch, QuantileSketch};
use dema_wire::Message;

use super::retry::{self, Supervisor};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::ClusterError;

#[derive(Default)]
struct WindowState {
    reported: HashSet<u32>,
    items: Vec<(f64, u64)>,
    count: u64,
    min: f64,
    max: f64,
}

impl retry::Contributions for WindowState {
    fn reported(&self) -> &HashSet<u32> {
        &self.reported
    }
}

/// Root half: union weighted items, answer by cumulative-weight rank.
pub struct KllRoot {
    quantile: Quantile,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    control: Vec<Box<dyn MsgSender>>,
    sup: Option<Supervisor>,
}

impl KllRoot {
    /// Build from the shell params (k only matters on the local side).
    pub fn new(params: RootParams) -> KllRoot {
        KllRoot {
            quantile: params.quantile,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            control: params.control,
            sup: params.resilience.map(Supervisor::new),
        }
    }

    fn finalize_window(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let mut state = self.states.remove(&window.0).unwrap_or_default();
        let degraded = retry::close_window(&mut self.sup, window.0, &state.reported, self.n_locals);
        let total = state.count;
        if total == 0 {
            resolved.push((
                window,
                ResolvedWindow {
                    degraded,
                    ..Default::default()
                },
            ));
            return Ok(());
        }
        // Weight conservation across the union: the sketches must
        // account for every observation exactly once.
        let weight: u64 = state.items.iter().map(|(_, w)| w).sum();
        if weight != total {
            return Err(ClusterError::Protocol(format!(
                "{window}: sketch weight {weight} != count {total}"
            )));
        }
        let target = self.quantile.pos(total)?;
        state.items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut acc = 0u64;
        let mut estimate = state.max;
        for (v, w) in &state.items {
            acc += w;
            if acc >= target {
                estimate = *v;
                break;
            }
        }
        let value = f64_to_i64(estimate.clamp(state.min, state.max));
        resolved.push((
            window,
            ResolvedWindow {
                value: Some(value),
                total_events: total,
                degraded,
                ..Default::default()
            },
        ));
        Ok(())
    }
}

impl RootEngine for KllRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let Message::SketchBatch {
            node,
            window,
            count,
            min,
            max,
            items,
        } = msg
        else {
            return Err(ClusterError::Protocol(format!(
                "kll-dist root: unexpected message {msg:?}"
            )));
        };
        if !retry::admit(&mut self.sup, window.0, node.0) {
            return Ok(());
        }
        let state = self.states.entry(window.0).or_default();
        if !state.reported.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        if state.count == 0 || min < state.min {
            state.min = min;
        }
        if state.count == 0 || max > state.max {
            state.max = max;
        }
        state.items.extend(items);
        state.count += count;
        if retry::covered(&self.sup, &state.reported, self.n_locals) {
            self.finalize_window(window, resolved)?;
        }
        Ok(())
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        let (newly_dead, completable) = retry::run_tick(
            sup,
            &mut self.control,
            &self.states,
            self.n_locals,
            expected_windows,
            quiescent,
            missing_enders,
        )?;
        for w in completable {
            self.finalize_window(WindowId(w), resolved)?;
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }
}

/// Local half: sketch the window, ship the weighted summary.
pub struct KllLocal {
    k: usize,
}

impl KllLocal {
    /// Build the local half with sketch capacity parameter `k`.
    pub fn new(k: usize) -> KllLocal {
        KllLocal { k }
    }
}

impl LocalEngine for KllLocal {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        // Deterministic per-node seed so runs are reproducible regardless of
        // message interleaving or topology.
        let seed =
            0x9E37_79B9_7F4A_7C15 ^ (u64::from(node.0) + 1).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut sketch = KllSketch::with_seed(self.k, seed);
        for e in &events {
            sketch.insert(i64_to_f64(e.value));
        }
        // Non-finite values are rejected by the sketch; count what it kept.
        let count = sketch.count();
        debug_assert_eq!(count, len_to_u64(events.len()));
        to_root.send(&Message::SketchBatch {
            node,
            window,
            count,
            min: sketch.min().unwrap_or(0.0),
            max: sketch.max().unwrap_or(0.0),
            items: sketch.weighted_items(),
        })?;
        Ok(())
    }
}
