//! The Dema engine — the paper's contribution (exact).
//!
//! Locals sort each window and cut it into γ-sized slices, shipping only
//! slice synopses (first/last/count). The root runs the window-cut to
//! identify candidate slices, fetches exactly those, and computes the exact
//! quantile from a few merged runs. Fixed or adaptive γ (global or
//! per-node, §3.3).
//!
//! ## Window pipeline (root side)
//!
//! Windows move through a bounded two-stage pipeline keyed by window id.
//! Stage 1 (*ingest & order*) collects a window's synopses and sorts them
//! by value interval the moment the last local reports — this runs even
//! while earlier windows sit in stage 2, so the root's CPU work for `w+1`
//! overlaps the network round trip of `w`. Stage 2 (*identify & resolve*)
//! runs the window-cut, fires candidate requests, and awaits the replies;
//! at most [`PIPELINE_DEPTH`] windows hold a stage-2 slot at once, bounding
//! outstanding request fan-out and candidate-run memory no matter how far
//! the locals run ahead. The window-cut itself stays the pure,
//! single-threaded algorithm in `dema-core` — the pipeline only schedules
//! *when* it runs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::gamma::AdaptiveGamma;
use dema_core::merge::select_kth;
use dema_core::multi::{select_multi, MultiSelection};
use dema_core::numeric::{len_to_u32, len_to_u64, u64_to_usize};
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_core::shared::SharedRun;
use dema_core::slice::{cut_into_slices, Slice, SliceId, SliceSynopsis};
use dema_core::DemaError;
use dema_net::{MsgReceiver, MsgSender, NetError};
use dema_wire::Message;
use parking_lot::Mutex;

use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::config::GammaMode;
use crate::ClusterError;

/// Max Dema windows allowed in stage 2 (candidate requests outstanding) at
/// once. Two slots let the next window's requests go out the moment the
/// current one resolves while later windows keep ingesting; deeper
/// pipelines only add memory, not throughput, because the root's stage-2
/// work per window is tiny compared to the reply round trip.
pub const PIPELINE_DEPTH: usize = 2;

/// Most windows a local node keeps in its slice store awaiting candidate
/// requests. Windows resolve within a round trip; this bound only guards
/// against a stalled root.
pub(crate) const STORE_WINDOW_CAP: usize = 64;

/// State shared between a Dema local's main loop and its responder.
#[derive(Debug)]
pub struct LocalShared {
    /// Current slice factor (updated by `GammaUpdate`s from the root).
    pub gamma: AtomicU64,
    /// Closed windows' slices, awaiting (possible) candidate requests.
    pub store: Mutex<HashMap<u64, Vec<Slice>>>,
}

impl LocalShared {
    /// Fresh shared state starting at `gamma`.
    pub fn new(gamma: u64) -> Arc<LocalShared> {
        Arc::new(LocalShared {
            gamma: AtomicU64::new(gamma),
            store: Mutex::new(HashMap::new()),
        })
    }
}

/// Per-window accumulation state at the root.
#[derive(Default)]
struct WindowState {
    /// Stage 1: locals that delivered synopses; stage 2 (after `identify`):
    /// candidate replies expected.
    reported: usize,
    /// All synopses of the window, sorted by value interval at stage-1 end.
    synopses: Vec<SliceSynopsis>,
    /// The identification step's decision (index 0 = the primary quantile's
    /// plan, then the extra quantiles in order).
    selection: Option<MultiSelection>,
    /// Synopsis lookup for verification of replies.
    synopsis_of: HashMap<SliceId, SliceSynopsis>,
    /// Candidate runs received so far (shared views, zero-copy off the
    /// in-memory transport).
    runs: Vec<SharedRun>,
    runs_received: usize,
    /// Per-node local window sizes `l_i` (for per-node γ control).
    node_sizes: HashMap<u32, u64>,
    /// Per-node candidate-slice counts `m_i`.
    node_candidates: HashMap<u32, u64>,
    /// γ in effect when this window was sliced (node 0's γ under per-node
    /// control).
    gamma: u64,
}

/// The root's γ policy.
enum GammaPolicy {
    /// Fixed γ, never updated.
    Fixed(u64),
    /// One controller for the whole cluster (§3.3 default).
    Global(AdaptiveGamma),
    /// One controller per local node (§3.3 future-work variant).
    PerNode(Vec<AdaptiveGamma>),
}

impl GammaPolicy {
    /// γ to report for window outcomes (node 0's view).
    fn current(&self) -> u64 {
        match self {
            GammaPolicy::Fixed(g) => *g,
            GammaPolicy::Global(ctl) => ctl.current(),
            GammaPolicy::PerNode(ctls) => ctls.first().map_or(2, AdaptiveGamma::current),
        }
    }
}

/// The Dema root engine.
pub struct DemaRoot {
    quantile: Quantile,
    extra_quantiles: Vec<Quantile>,
    strategy: SelectionStrategy,
    n_locals: usize,
    states: BTreeMap<u64, WindowState>,
    gamma: GammaPolicy,
    control: Vec<Box<dyn MsgSender>>,
    /// Windows currently in stage 2 (requests sent, replies pending).
    in_flight: usize,
    /// Stage-1-complete windows waiting for a stage-2 slot, in the order
    /// their last synopsis arrived (window order for well-paced locals).
    ready: VecDeque<u64>,
}

impl DemaRoot {
    /// Build the root half from the γ mode, selector, and shell params.
    pub fn new(gamma: GammaMode, strategy: SelectionStrategy, params: RootParams) -> DemaRoot {
        let gamma = match gamma {
            GammaMode::Fixed(g) => GammaPolicy::Fixed(g),
            GammaMode::Adaptive { initial } => {
                GammaPolicy::Global(AdaptiveGamma::with_default_bounds(initial))
            }
            GammaMode::AdaptivePerNode { initial } => GammaPolicy::PerNode(
                (0..params.n_locals)
                    .map(|_| AdaptiveGamma::with_default_bounds(initial))
                    .collect(),
            ),
        };
        DemaRoot {
            quantile: params.quantile,
            extra_quantiles: params.extra_quantiles,
            strategy,
            n_locals: params.n_locals,
            states: BTreeMap::new(),
            gamma,
            control: params.control,
            in_flight: 0,
            ready: VecDeque::new(),
        }
    }

    /// Identification step once all synopses of `window` arrived and a
    /// stage-2 slot is free.
    fn identify(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self.states.get_mut(&window.0).ok_or_else(|| {
            ClusterError::Protocol(format!("identify of unknown window {window}"))
        })?;
        state.gamma = self.gamma.current();
        dema_core::invariant::check_synopsis_order(&state.synopses).map_err(ClusterError::Core)?;
        let total: u64 = state.synopses.iter().map(|s| s.count).sum();
        if total == 0 {
            let gamma = state.gamma;
            self.states.remove(&window.0);
            resolved.push((
                window,
                ResolvedWindow {
                    gamma,
                    ..ResolvedWindow::default()
                },
            ));
            return Ok(());
        }
        let mut ranks = Vec::with_capacity(1 + self.extra_quantiles.len());
        ranks.push(self.quantile.pos(total)?);
        for q in &self.extra_quantiles {
            ranks.push(q.pos(total)?);
        }
        let selection = select_multi(&state.synopses, &ranks, self.strategy)?;
        for plan in &selection.plans {
            dema_core::invariant::check_selection(
                &state.synopses,
                &selection.candidates,
                plan.rank,
                plan.offset_below,
            )
            .map_err(ClusterError::Core)?;
        }
        state.synopsis_of = state.synopses.iter().map(|s| (s.id, *s)).collect();
        // Per-node observations for the γ controllers.
        state.node_sizes.clear();
        for s in &state.synopses {
            *state.node_sizes.entry(s.id.node.0).or_insert(0) += s.count;
        }
        state.node_candidates.clear();
        for id in &selection.candidates {
            *state.node_candidates.entry(id.node.0).or_insert(0) += 1;
        }

        // Group candidate slices by owning node and fire the requests.
        let mut per_node: HashMap<u32, Vec<u32>> = HashMap::new();
        for id in &selection.candidates {
            per_node.entry(id.node.0).or_default().push(id.index);
        }
        state.runs_received = 0;
        state.runs.clear();
        let expected_replies = per_node.len();
        state.selection = Some(selection);
        for (node, slices) in per_node {
            let link = self
                .control
                .get_mut(u64_to_usize(u64::from(node)))
                .ok_or_else(|| ClusterError::Protocol(format!("no control link for n{node}")))?;
            link.send(&Message::CandidateRequest { window, slices })?;
        }
        // Stash how many replies we expect (one per involved node).
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("state lost for window {window}")))?;
        state.reported = expected_replies; // reuse as "replies expected"
        self.in_flight += 1; // stage-2 slot held until the window finalizes
        Ok(())
    }

    /// Admit ready windows into stage 2 while slots are free.
    fn advance_pipeline(
        &mut self,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        while self.in_flight < PIPELINE_DEPTH {
            let Some(w) = self.ready.pop_front() else {
                break;
            };
            self.identify(WindowId(w), resolved)?;
        }
        Ok(())
    }

    /// Absorb one candidate reply; resolve once all involved nodes replied.
    fn absorb_reply(
        &mut self,
        node: NodeId,
        window: WindowId,
        slices: Vec<(u32, SharedRun)>,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("reply for unknown window {window}")))?;
        for (index, events) in slices {
            let id = SliceId {
                node,
                window,
                index,
            };
            let selected = state
                .selection
                .as_ref()
                .is_some_and(|sel| sel.candidates.contains(&id));
            if !selected {
                return Err(ClusterError::Protocol(format!(
                    "reply for unselected slice {id}"
                )));
            }
            let syn = state
                .synopsis_of
                .get(&id)
                .ok_or_else(|| ClusterError::Protocol(format!("reply for unknown slice {id}")))?;
            // Cheap integrity check: count, endpoints, sortedness.
            let slice = Slice { id, events };
            slice.verify_against(syn).map_err(ClusterError::Core)?;
            state.runs.push(slice.events);
        }
        state.runs_received += 1;
        if state.runs_received == state.reported {
            let selection = state.selection.take().ok_or_else(|| {
                ClusterError::Protocol(format!("{window}: replies complete before identification"))
            })?;
            let run_count: u64 = state.runs.iter().map(|r| len_to_u64(r.len())).sum();
            if run_count != selection.candidate_events {
                return Err(ClusterError::Core(DemaError::InconsistentSynopses(
                    format!(
                        "{window}: {run_count} candidate events delivered, expected {}",
                        selection.candidate_events
                    ),
                )));
            }
            let mut values = selection
                .plans
                .iter()
                .map(|p| {
                    let event = select_kth(&state.runs, p.rank_within_candidates())
                        .map_err(ClusterError::Core)?;
                    dema_core::invariant::check_selected_event(
                        &state.runs,
                        p.rank_within_candidates(),
                        &event,
                    )
                    .map_err(ClusterError::Core)?;
                    Ok(event.value)
                })
                .collect::<Result<Vec<i64>, ClusterError>>()?;
            let primary = values.remove(0);
            let gamma = state.gamma;
            let total = selection.total_events;
            let m = len_to_u64(selection.candidates.len());
            let synopses = len_to_u64(state.synopsis_of.len());
            let node_sizes = std::mem::take(&mut state.node_sizes);
            let node_candidates = std::mem::take(&mut state.node_candidates);
            self.states.remove(&window.0);
            resolved.push((
                window,
                ResolvedWindow {
                    value: Some(primary),
                    extra_values: values,
                    total_events: total,
                    candidate_events: selection.candidate_events,
                    candidate_slices: m,
                    synopses,
                    gamma,
                },
            ));
            // Adaptive γ: re-optimize from this window's observation.
            match &mut self.gamma {
                GammaPolicy::Global(ctl) => {
                    let before = ctl.current();
                    let next = ctl.observe_checked(total, m).map_err(ClusterError::Core)?;
                    if next != before {
                        for link in &mut self.control {
                            link.send(&Message::GammaUpdate { gamma: next })?;
                        }
                    }
                }
                GammaPolicy::PerNode(ctls) => {
                    for (n, ctl) in ctls.iter_mut().enumerate() {
                        let l_i = node_sizes.get(&len_to_u32(n)).copied().unwrap_or(0);
                        if l_i == 0 {
                            continue; // node idle this window, keep its γ
                        }
                        let m_i = node_candidates.get(&len_to_u32(n)).copied().unwrap_or(0);
                        let before = ctl.current();
                        let next = ctl.observe_checked(l_i, m_i).map_err(ClusterError::Core)?;
                        if next != before {
                            let link = self.control.get_mut(n).ok_or_else(|| {
                                ClusterError::Protocol(format!("no control link for n{n}"))
                            })?;
                            link.send(&Message::GammaUpdate { gamma: next })?;
                        }
                    }
                }
                GammaPolicy::Fixed(_) => {}
            }
            // Stage-2 slot freed: pull the next ordered window in.
            self.in_flight -= 1;
            self.advance_pipeline(resolved)?;
        }
        Ok(())
    }
}

impl RootEngine for DemaRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        match msg {
            Message::SynopsisBatch {
                node: _,
                window,
                synopses,
            } => {
                let state = self.states.entry(window.0).or_default();
                state.synopses.extend(synopses);
                state.reported += 1;
                if state.reported == self.n_locals {
                    // Stage 1 complete: order the synopses by value interval
                    // now, overlapping the reply round trips of earlier
                    // windows. Identification is order-insensitive, so this
                    // only moves the sort work off the critical path.
                    state
                        .synopses
                        .sort_unstable_by_key(|s| (s.first, s.last, s.id));
                    if self.in_flight < PIPELINE_DEPTH {
                        self.identify(window, resolved)?;
                    } else {
                        self.ready.push_back(window.0);
                    }
                }
                Ok(())
            }
            Message::CandidateReply {
                node,
                window,
                slices,
            } => self.absorb_reply(node, window, slices, resolved),
            other => Err(ClusterError::Protocol(format!(
                "dema root: unexpected message {other:?}"
            ))),
        }
    }
}

/// The Dema local engine: sort, slice, store, ship synopses.
pub struct DemaLocal<'a> {
    shared: &'a LocalShared,
}

impl<'a> DemaLocal<'a> {
    /// Build the local half over the node's shared γ cell and slice store.
    pub fn new(shared: &'a LocalShared) -> DemaLocal<'a> {
        DemaLocal { shared }
    }
}

impl LocalEngine for DemaLocal<'_> {
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        mut events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        let gamma = self.shared.gamma.load(Ordering::Relaxed);
        events.sort_unstable();
        let l_local = len_to_u64(events.len());
        let slices = cut_into_slices(node, window, events, gamma)?;
        let total = len_to_u32(slices.len());
        let synopses = slices
            .iter()
            .map(|s| s.synopsis(total))
            .collect::<Result<Vec<_>, _>>()?;
        dema_core::invariant::check_partition(&slices, &synopses, l_local)?;
        {
            let mut store = self.shared.store.lock();
            store.insert(window.0, slices);
            // Bound memory if the root stalls; oldest windows first.
            while store.len() > STORE_WINDOW_CAP {
                let Some(&oldest) = store.keys().min() else {
                    break;
                };
                store.remove(&oldest);
            }
        }
        to_root.send(&Message::SynopsisBatch {
            node,
            window,
            synopses,
        })?;
        Ok(())
    }
}

/// Dema's responder: serves candidate requests and γ updates until the root
/// closes the control link.
pub fn run_responder(
    node: NodeId,
    from_root: &mut dyn MsgReceiver,
    to_root: &mut dyn MsgSender,
    shared: &LocalShared,
) -> Result<(), ClusterError> {
    loop {
        let msg = match from_root.recv() {
            Ok(m) => m,
            Err(NetError::Disconnected) => return Ok(()), // root finished
            Err(e) => return Err(e.into()),
        };
        match msg {
            Message::CandidateRequest { window, slices } => {
                let payload = {
                    let mut store = shared.store.lock();
                    let Some(stored) = store.remove(&window.0) else {
                        return Err(ClusterError::Protocol(format!(
                            "{node}: candidate request for unknown window {window}"
                        )));
                    };
                    slices
                        .iter()
                        .map(|&idx| {
                            stored
                                .get(u64_to_usize(u64::from(idx)))
                                // SharedRun clone: refcount bump, no event copy.
                                .map(|s| (idx, s.events.clone()))
                                .ok_or_else(|| {
                                    ClusterError::Protocol(format!(
                                        "{node}: request for missing slice {idx} of {window}"
                                    ))
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                };
                to_root.send(&Message::CandidateReply {
                    node,
                    window,
                    slices: payload,
                })?;
            }
            Message::GammaUpdate { gamma } => {
                shared.gamma.store(gamma.max(2), Ordering::Relaxed);
            }
            other => {
                return Err(ClusterError::Protocol(format!(
                    "{node}: unexpected control message {other:?}"
                )))
            }
        }
    }
}
