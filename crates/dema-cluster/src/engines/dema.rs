//! The Dema engine — the paper's contribution (exact).
//!
//! Locals sort each window and cut it into γ-sized slices, shipping only
//! slice synopses (first/last/count). The root runs the window-cut to
//! identify candidate slices, fetches exactly those, and computes the exact
//! quantile from a few merged runs. Fixed or adaptive γ (global or
//! per-node, §3.3).
//!
//! ## Window pipeline (root side)
//!
//! Windows move through a bounded two-stage pipeline keyed by window id.
//! Stage 1 (*ingest & order*) collects a window's synopses and sorts them
//! by value interval the moment the last local reports — this runs even
//! while earlier windows sit in stage 2, so the root's CPU work for `w+1`
//! overlaps the network round trip of `w`. Stage 2 (*identify & resolve*)
//! runs the window-cut, fires candidate requests, and awaits the replies;
//! at most the configured pipeline depth (default [`PIPELINE_DEPTH`])
//! windows hold a stage-2 slot at once, bounding
//! outstanding request fan-out and candidate-run memory no matter how far
//! the locals run ahead. The window-cut itself stays the pure,
//! single-threaded algorithm in `dema-core` — the pipeline only schedules
//! *when* it runs.
//!
//! ## Fault tolerance (resilient runs)
//!
//! With a [`crate::config::Resilience`] config, both stages carry a
//! deadline in the engine's [`Supervisor`]. A stage-1 expiry NACKs missing
//! synopses with [`Message::ResendWindow`]; a stage-2 expiry re-requests
//! the missing nodes' candidate slices with [`Message::CandidateRetry`].
//! Locals that exhaust the liveness or retry budget are declared dead, and
//! the window resolves from the surviving runs as a
//! [`Degraded`] outcome: the selected rank is clamped into the delivered
//! candidate set, and — when every local's synopses arrived — the answer
//! ships with a rank-error bound equal to the lost candidate slices'
//! synopsis counts (the root knows exactly how many events it never saw).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::gamma::AdaptiveGamma;
use dema_core::merge::select_kth;
use dema_core::multi::{select_multi, MultiSelection};
use dema_core::numeric::{len_to_u32, len_to_u64, u64_to_usize};
use dema_core::quantile::Quantile;
use dema_core::selector::SelectionStrategy;
use dema_core::shared::SharedRun;
use dema_core::slice::{cut_into_slices, Slice, SliceId, SliceSynopsis};
use dema_core::sync::{rank, Mutex};
use dema_core::DemaError;
use dema_net::{MsgReceiver, MsgSender, NetError};
use dema_wire::Message;

use super::retry::{self, ExpiryAction, Supervisor, END_KEY};
use super::{LocalEngine, ResolvedWindow, RootEngine, RootParams};
use crate::config::GammaMode;
use crate::membership::EpochLedger;
use crate::report::Degraded;
use crate::ClusterError;

/// Default max Dema windows allowed in stage 2 (candidate requests
/// outstanding) at once; [`RootParams::pipeline_depth`] overrides it per
/// run. Four slots keep the root's identify/merge work for windows
/// `w+1..w+4` overlapped with the reply round trip of `w` — on fast-paced
/// locals the round trip, not the root CPU, is the bottleneck, and two
/// slots left the root idle between reply bursts. Memory stays bounded:
/// each slot holds only the candidate runs of one window, and the
/// supervisor's per-window deadlines are keyed by window id, so deeper
/// pipelines change no retry semantics.
pub const PIPELINE_DEPTH: usize = 4;

/// Most windows a local node keeps in its slice store awaiting candidate
/// requests. Windows resolve within a round trip; this bound only guards
/// against a stalled root.
pub(crate) const STORE_WINDOW_CAP: usize = 64;

/// How often the responder wakes from its receive to notice a torn-down
/// link even when the root has gone silent.
const RESPONDER_POLL: Duration = Duration::from_millis(25);

/// State shared between a Dema local's main loop and its responder.
#[derive(Debug)]
pub struct LocalShared {
    /// Current slice factor (updated by `GammaUpdate`s from the root).
    pub gamma: AtomicU64,
    /// Closed windows' slices, awaiting (possible) candidate requests.
    pub store: Mutex<HashMap<u64, Vec<Slice>>>,
    /// Resilient mode: keep served windows in the store (candidate retries
    /// must be idempotent) and cache sent uplink messages for resends.
    pub retain_sent: bool,
    /// Last data-plane uplink message per window, for `ResendWindow`
    /// NACKs; the stream-end message lives under [`END_KEY`]'s slot.
    /// Populated only when `retain_sent` is set.
    pub sent: Mutex<HashMap<u64, Message>>,
    /// Thread budget for the per-window sort (`dema_core::par`); output is
    /// bit-identical at every value, only wall-clock changes.
    pub threads: usize,
}

impl LocalShared {
    /// Fresh shared state starting at `gamma` (seed protocol: served
    /// windows are evicted, nothing is cached for resend). Sort threads
    /// default from the `DEMA_THREADS` environment.
    pub fn new(gamma: u64) -> Arc<LocalShared> {
        LocalShared::configured(gamma, false, dema_core::par::default_threads())
    }

    /// Shared state for a resilient run: the store retains served windows
    /// and the uplink messages are cached for `ResendWindow` NACKs.
    pub fn resilient(gamma: u64) -> Arc<LocalShared> {
        LocalShared::configured(gamma, true, dema_core::par::default_threads())
    }

    /// Fully explicit constructor: resilience mode and sort-thread budget.
    pub fn configured(gamma: u64, resilient: bool, threads: usize) -> Arc<LocalShared> {
        Arc::new(LocalShared {
            gamma: AtomicU64::new(gamma),
            store: Mutex::new(rank::LOCAL_STORE, HashMap::new()),
            retain_sent: resilient,
            sent: Mutex::new(rank::LOCAL_SENT, HashMap::new()),
            threads: threads.max(1),
        })
    }
}

/// Per-window accumulation state at the root.
#[derive(Default)]
struct WindowState {
    /// Stage 1: locals whose synopses arrived.
    reported: HashSet<u32>,
    /// All synopses of the window, sorted by value interval at stage-1 end.
    synopses: Vec<SliceSynopsis>,
    /// The identification step's decision (index 0 = the primary quantile's
    /// plan, then the extra quantiles in order).
    selection: Option<MultiSelection>,
    /// Synopsis lookup for verification of replies.
    synopsis_of: HashMap<SliceId, SliceSynopsis>,
    /// Candidate runs received so far (shared views, zero-copy off the
    /// in-memory transport).
    runs: Vec<SharedRun>,
    /// Stage 2: nodes whose candidate replies arrived.
    replied: HashSet<u32>,
    /// Stage 2: live candidate owners a reply is expected from.
    expected_replies: HashSet<u32>,
    /// Candidate slice indices per owning node (kept for retries).
    node_requests: HashMap<u32, Vec<u32>>,
    /// Candidate owners already dead at identification time, ascending.
    dead_at_identify: Vec<u32>,
    /// Locals whose synopses never arrived (dead at stage-1 close),
    /// ascending.
    stage1_missing: Vec<u32>,
    /// Per-node local window sizes `l_i` (for per-node γ control).
    node_sizes: HashMap<u32, u64>,
    /// Per-node candidate-slice counts `m_i`.
    node_candidates: HashMap<u32, u64>,
    /// γ in effect when this window was sliced (node 0's γ under per-node
    /// control).
    gamma: u64,
}

/// The root's γ policy.
enum GammaPolicy {
    /// Fixed γ, never updated.
    Fixed(u64),
    /// One controller for the whole cluster (§3.3 default).
    Global(AdaptiveGamma),
    /// One controller per local node (§3.3 future-work variant).
    PerNode(Vec<AdaptiveGamma>),
}

impl GammaPolicy {
    /// γ to report for window outcomes (node 0's view).
    fn current(&self) -> u64 {
        match self {
            GammaPolicy::Fixed(g) => *g,
            GammaPolicy::Global(ctl) => ctl.current(),
            GammaPolicy::PerNode(ctls) => ctls.first().map_or(2, AdaptiveGamma::current),
        }
    }

    /// Restart the adaptive controllers from their current γ, discarding
    /// the `l_G` observation history. Called at an epoch switch: the old
    /// membership's window sizes no longer describe the cluster, so letting
    /// them smooth into the new epoch would bias γ toward the wrong `l_G`.
    fn reseed(&mut self) {
        match self {
            GammaPolicy::Fixed(_) => {}
            GammaPolicy::Global(ctl) => *ctl = AdaptiveGamma::with_default_bounds(ctl.current()),
            GammaPolicy::PerNode(ctls) => {
                for ctl in ctls {
                    *ctl = AdaptiveGamma::with_default_bounds(ctl.current());
                }
            }
        }
    }
}

/// The Dema root engine.
pub struct DemaRoot {
    quantile: Quantile,
    extra_quantiles: Vec<Quantile>,
    strategy: SelectionStrategy,
    states: BTreeMap<u64, WindowState>,
    gamma: GammaPolicy,
    control: Vec<Box<dyn MsgSender>>,
    /// Max windows admitted into stage 2 at once (configured pipeline
    /// depth, default [`PIPELINE_DEPTH`]).
    depth: usize,
    /// Windows currently in stage 2 (requests sent, replies pending).
    in_flight: usize,
    /// Stage-1-complete windows waiting for a stage-2 slot, in the order
    /// their last synopsis arrived (window order for well-paced locals).
    ready: VecDeque<u64>,
    /// Retry / liveness state for resilient runs.
    sup: Option<Supervisor>,
    /// Which locals contribute to which windows (trivial single-epoch
    /// table unless the shell installs a churn plan; DESIGN.md §14).
    ledger: Arc<EpochLedger>,
    /// Locals that drained away cleanly: skipped by every broadcast (their
    /// responder retired with the drain handshake, so their control link
    /// may be gone).
    departed: HashSet<u32>,
}

impl DemaRoot {
    /// Build the root half from the γ mode, selector, and shell params.
    pub fn new(gamma: GammaMode, strategy: SelectionStrategy, params: RootParams) -> DemaRoot {
        let gamma = match gamma {
            GammaMode::Fixed(g) => GammaPolicy::Fixed(g),
            GammaMode::Adaptive { initial } => {
                GammaPolicy::Global(AdaptiveGamma::with_default_bounds(initial))
            }
            GammaMode::AdaptivePerNode { initial } => GammaPolicy::PerNode(
                (0..params.n_locals)
                    .map(|_| AdaptiveGamma::with_default_bounds(initial))
                    .collect(),
            ),
        };
        DemaRoot {
            quantile: params.quantile,
            extra_quantiles: params.extra_quantiles,
            strategy,
            states: BTreeMap::new(),
            gamma,
            control: params.control,
            depth: params.pipeline_depth.max(1),
            in_flight: 0,
            ready: VecDeque::new(),
            sup: params.resilience.map(Supervisor::new),
            ledger: Arc::new(EpochLedger::trivial(params.n_locals)),
            departed: HashSet::new(),
        }
    }

    /// `true` when every member of `window` either reported or is
    /// dead/drained (the window cannot gain further synopses).
    fn stage1_covered(&self, reported: &HashSet<u32>, window: u64) -> bool {
        let members = self.ledger.members_of(window);
        match &self.sup {
            Some(s) => s.covered_members(Some(reported), members),
            None => members.iter().all(|n| reported.contains(n)),
        }
    }

    /// Stage 1 complete (every local reported or is dead): order the
    /// synopses and admit the window into stage 2 — or queue it when the
    /// pipeline is full.
    fn close_stage1(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let state = self.states.get_mut(&window.0).ok_or_else(|| {
            ClusterError::Protocol(format!("stage-1 close of unknown window {window}"))
        })?;
        if self.sup.is_some() {
            state.stage1_missing = self
                .ledger
                .members_of(window.0)
                .iter()
                .copied()
                .filter(|n| !state.reported.contains(n))
                .collect();
        }
        if let Some(sup) = self.sup.as_mut() {
            // Queued windows carry no deadline; `identify` arms stage 2.
            sup.disarm(window.0);
        }
        // Order the synopses by value interval now, overlapping the reply
        // round trips of earlier windows. Identification is
        // order-insensitive, so this only moves the sort work off the
        // critical path.
        state
            .synopses
            .sort_unstable_by_key(|s| (s.first, s.last, s.id));
        if self.in_flight < self.depth {
            self.identify(window, resolved)?;
        } else {
            self.ready.push_back(window.0);
        }
        Ok(())
    }

    /// Identification step once all synopses of `window` arrived and a
    /// stage-2 slot is free.
    fn identify(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let retries = self.sup.as_ref().map_or(0, |s| s.retries_of(window.0));
        let state = self.states.get_mut(&window.0).ok_or_else(|| {
            ClusterError::Protocol(format!("identify of unknown window {window}"))
        })?;
        state.gamma = self.gamma.current();
        dema_core::invariant::check_synopsis_order(&state.synopses).map_err(ClusterError::Core)?;
        let total: u64 = state.synopses.iter().map(|s| s.count).sum();
        if total == 0 {
            let gamma = state.gamma;
            let stage1_missing = std::mem::take(&mut state.stage1_missing);
            self.states.remove(&window.0);
            let degraded = if stage1_missing.is_empty() {
                None
            } else {
                if let Some(sup) = self.sup.as_mut() {
                    sup.counters.record_degraded_window();
                }
                Some(Degraded {
                    missing_nodes: stage1_missing,
                    rank_error_bound: None,
                    retries,
                })
            };
            if let Some(sup) = self.sup.as_mut() {
                sup.finish(window.0);
            }
            resolved.push((
                window,
                ResolvedWindow {
                    gamma,
                    degraded,
                    ..ResolvedWindow::default()
                },
            ));
            return Ok(());
        }
        let mut ranks = Vec::with_capacity(1 + self.extra_quantiles.len());
        ranks.push(self.quantile.pos(total)?);
        for q in &self.extra_quantiles {
            ranks.push(q.pos(total)?);
        }
        let selection = select_multi(&state.synopses, &ranks, self.strategy)?;
        for plan in &selection.plans {
            dema_core::invariant::check_selection(
                &state.synopses,
                &selection.candidates,
                plan.rank,
                plan.offset_below,
            )
            .map_err(ClusterError::Core)?;
        }
        state.synopsis_of = state.synopses.iter().map(|s| (s.id, *s)).collect();
        // Per-node observations for the γ controllers.
        state.node_sizes.clear();
        for s in &state.synopses {
            *state.node_sizes.entry(s.id.node.0).or_insert(0) += s.count;
        }
        state.node_candidates.clear();
        for id in &selection.candidates {
            *state.node_candidates.entry(id.node.0).or_insert(0) += 1;
        }

        // Group candidate slices by owning node; remember the grouping so a
        // stage-2 expiry can re-request exactly the missing slices.
        let mut per_node: HashMap<u32, Vec<u32>> = HashMap::new();
        for id in &selection.candidates {
            per_node.entry(id.node.0).or_default().push(id.index);
        }
        state.runs.clear();
        state.replied.clear();
        state.selection = Some(selection);
        state.node_requests = per_node;
        let mut expected = HashSet::new();
        let mut dead_at_identify = Vec::new();
        for &node in state.node_requests.keys() {
            if self.sup.as_ref().is_some_and(|s| s.is_dead(node)) {
                dead_at_identify.push(node);
            } else {
                expected.insert(node);
            }
        }
        dead_at_identify.sort_unstable();
        state.expected_replies = expected;
        state.dead_at_identify = dead_at_identify;
        let resilient = self.sup.is_some();
        for (node, slices) in &state.node_requests {
            if state.dead_at_identify.contains(node) {
                continue;
            }
            let link = self
                .control
                .get_mut(u64_to_usize(u64::from(*node)))
                .ok_or_else(|| ClusterError::Protocol(format!("no control link for n{node}")))?;
            let msg = Message::CandidateRequest {
                window,
                slices: slices.clone(),
            };
            if resilient {
                retry::send_lossy(link.as_mut(), &msg)?;
            } else {
                link.send(&msg)?;
            }
        }
        self.in_flight += 1; // stage-2 slot held until the window finalizes
        if let Some(sup) = self.sup.as_mut() {
            sup.arm(window.0);
        }
        // Every candidate owner is already dead: no reply will ever come.
        let no_repliers = self
            .states
            .get(&window.0)
            .is_some_and(|s| s.expected_replies.is_empty());
        if no_repliers {
            self.resolve(window, resolved)?;
        }
        Ok(())
    }

    /// Admit ready windows into stage 2 while slots are free.
    fn advance_pipeline(
        &mut self,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        while self.in_flight < self.depth {
            let Some(w) = self.ready.pop_front() else {
                break;
            };
            self.identify(WindowId(w), resolved)?;
        }
        Ok(())
    }

    /// Absorb one candidate reply; resolve once every live involved node
    /// replied.
    fn absorb_reply(
        &mut self,
        node: NodeId,
        window: WindowId,
        slices: Vec<(u32, SharedRun)>,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        if let Some(sup) = self.sup.as_mut() {
            if sup.is_done(window.0) {
                sup.counters.record_duplicate();
                return Ok(());
            }
            sup.note_alive(node.0);
        }
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("reply for unknown window {window}")))?;
        if state.selection.is_none() {
            return Err(ClusterError::Protocol(format!(
                "{window}: candidate reply before identification"
            )));
        }
        if !state.replied.insert(node.0) {
            retry::suppress_duplicate(&self.sup);
            return Ok(());
        }
        for (index, events) in slices {
            let id = SliceId {
                node,
                window,
                index,
            };
            let selected = state
                .selection
                .as_ref()
                .is_some_and(|sel| sel.candidates.contains(&id));
            if !selected {
                return Err(ClusterError::Protocol(format!(
                    "reply for unselected slice {id}"
                )));
            }
            let syn = state
                .synopsis_of
                .get(&id)
                .ok_or_else(|| ClusterError::Protocol(format!("reply for unknown slice {id}")))?;
            // Cheap integrity check: count, endpoints, sortedness.
            let slice = Slice { id, events };
            slice.verify_against(syn).map_err(ClusterError::Core)?;
            state.runs.push(slice.events);
        }
        let all_in = state
            .expected_replies
            .iter()
            .all(|n| state.replied.contains(n) || self.sup.as_ref().is_some_and(|s| s.is_dead(*n)));
        if all_in {
            self.resolve(window, resolved)?;
        }
        Ok(())
    }

    /// Finalize a stage-2 window from whatever runs arrived. Exact when
    /// every expected contribution is in; degraded (value from survivors,
    /// rank clamped, bound attached when derivable) otherwise.
    fn resolve(
        &mut self,
        window: WindowId,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        let retries = self.sup.as_ref().map_or(0, |s| s.retries_of(window.0));
        let state = self.states.get_mut(&window.0).ok_or_else(|| {
            ClusterError::Protocol(format!("resolution of unknown window {window}"))
        })?;
        let selection = state.selection.take().ok_or_else(|| {
            ClusterError::Protocol(format!("{window}: resolution before identification"))
        })?;
        let mut missing_repliers: Vec<u32> = state
            .expected_replies
            .iter()
            .copied()
            .filter(|n| !state.replied.contains(n))
            .collect();
        missing_repliers.sort_unstable();
        let run_count: u64 = state.runs.iter().map(|r| len_to_u64(r.len())).sum();
        let exact = missing_repliers.is_empty()
            && state.dead_at_identify.is_empty()
            && state.stage1_missing.is_empty();
        let (primary, extras, degraded) = if exact {
            if run_count != selection.candidate_events {
                return Err(ClusterError::Core(DemaError::InconsistentSynopses(
                    format!(
                        "{window}: {run_count} candidate events delivered, expected {}",
                        selection.candidate_events
                    ),
                )));
            }
            let mut values = selection
                .plans
                .iter()
                .map(|p| {
                    let event = select_kth(&state.runs, p.rank_within_candidates())
                        .map_err(ClusterError::Core)?;
                    dema_core::invariant::check_selected_event(
                        &state.runs,
                        p.rank_within_candidates(),
                        &event,
                    )
                    .map_err(ClusterError::Core)?;
                    Ok(event.value)
                })
                .collect::<Result<Vec<i64>, ClusterError>>()?;
            let primary = values.remove(0);
            (Some(primary), values, None)
        } else {
            // Degraded resolution from the survivors' runs. Lost candidate
            // slices are exactly known from the synopses, so when stage 1
            // was complete the answer's global rank can be off by at most
            // `m_lost` positions — that bound ships with the answer. A
            // missing node's synopses (stage-1 loss) make its window
            // contribution unknowable, so no bound is claimed then.
            let mut lost_owners: HashSet<u32> = missing_repliers.iter().copied().collect();
            lost_owners.extend(state.dead_at_identify.iter().copied());
            let m_lost: u64 = selection
                .candidates
                .iter()
                .filter(|id| lost_owners.contains(&id.node.0))
                .map(|id| state.synopsis_of.get(id).map_or(0, |s| s.count))
                .sum();
            let bound = if state.stage1_missing.is_empty() {
                Some(m_lost)
            } else {
                None
            };
            let mut missing_nodes: Vec<u32> = lost_owners.into_iter().collect();
            missing_nodes.extend(state.stage1_missing.iter().copied());
            missing_nodes.sort_unstable();
            missing_nodes.dedup();
            let (primary, extras) = if run_count == 0 {
                (None, Vec::new())
            } else {
                let mut values = selection
                    .plans
                    .iter()
                    .map(|p| {
                        let rank = p.rank_within_candidates().min(run_count).max(1);
                        Ok(select_kth(&state.runs, rank)
                            .map_err(ClusterError::Core)?
                            .value)
                    })
                    .collect::<Result<Vec<i64>, ClusterError>>()?;
                let primary = values.remove(0);
                (Some(primary), values)
            };
            if let Some(sup) = self.sup.as_mut() {
                sup.counters.record_degraded_window();
            }
            (
                primary,
                extras,
                Some(Degraded {
                    missing_nodes,
                    rank_error_bound: bound,
                    retries,
                }),
            )
        };
        let gamma = state.gamma;
        let total = selection.total_events;
        let m = len_to_u64(selection.candidates.len());
        let synopses = len_to_u64(state.synopsis_of.len());
        let node_sizes = std::mem::take(&mut state.node_sizes);
        let node_candidates = std::mem::take(&mut state.node_candidates);
        self.states.remove(&window.0);
        if let Some(sup) = self.sup.as_mut() {
            sup.finish(window.0);
        }
        let is_exact = degraded.is_none();
        resolved.push((
            window,
            ResolvedWindow {
                value: primary,
                extra_values: extras,
                total_events: total,
                candidate_events: run_count,
                candidate_slices: m,
                synopses,
                gamma,
                degraded,
            },
        ));
        // Adaptive γ: re-optimize from this window's observation. Degraded
        // windows are skipped — their per-node observations are incomplete
        // and would bias the controller.
        let resilient = self.sup.is_some();
        if is_exact {
            match &mut self.gamma {
                GammaPolicy::Global(ctl) => {
                    let before = ctl.current();
                    let next = ctl.observe_checked(total, m).map_err(ClusterError::Core)?;
                    if next != before {
                        for (n, link) in self.control.iter_mut().enumerate() {
                            if self.departed.contains(&len_to_u32(n)) {
                                continue; // drained: its responder retired
                            }
                            let msg = Message::GammaUpdate { gamma: next };
                            if resilient {
                                retry::send_lossy(link.as_mut(), &msg)?;
                            } else {
                                link.send(&msg)?;
                            }
                        }
                    }
                }
                GammaPolicy::PerNode(ctls) => {
                    for (n, ctl) in ctls.iter_mut().enumerate() {
                        if self.departed.contains(&len_to_u32(n)) {
                            continue; // drained: its responder retired
                        }
                        let l_i = node_sizes.get(&len_to_u32(n)).copied().unwrap_or(0);
                        if l_i == 0 {
                            continue; // node idle this window, keep its γ
                        }
                        let m_i = node_candidates.get(&len_to_u32(n)).copied().unwrap_or(0);
                        let before = ctl.current();
                        let next = ctl.observe_checked(l_i, m_i).map_err(ClusterError::Core)?;
                        if next != before {
                            let link = self.control.get_mut(n).ok_or_else(|| {
                                ClusterError::Protocol(format!("no control link for n{n}"))
                            })?;
                            let msg = Message::GammaUpdate { gamma: next };
                            if resilient {
                                retry::send_lossy(link.as_mut(), &msg)?;
                            } else {
                                link.send(&msg)?;
                            }
                        }
                    }
                }
                GammaPolicy::Fixed(_) => {}
            }
        }
        // Stage-2 slot freed: pull the next ordered window in.
        self.in_flight -= 1;
        self.advance_pipeline(resolved)?;
        Ok(())
    }
}

impl RootEngine for DemaRoot {
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError> {
        match msg {
            Message::SynopsisBatch {
                node,
                window,
                synopses,
            } => {
                if !self.ledger.is_member(window.0, node.0) {
                    return Err(ClusterError::Protocol(format!(
                        "{node}: synopsis for {window} outside its membership epochs"
                    )));
                }
                if let Some(sup) = self.sup.as_mut() {
                    if sup.is_done(window.0) {
                        sup.counters.record_duplicate();
                        return Ok(());
                    }
                    sup.note_alive(node.0);
                }
                let queued = self.ready.contains(&window.0);
                let state = self.states.entry(window.0).or_default();
                let stage1_open = state.selection.is_none() && !queued;
                if !stage1_open || !state.reported.insert(node.0) {
                    retry::suppress_duplicate(&self.sup);
                    return Ok(());
                }
                state.synopses.extend(synopses);
                if let Some(sup) = self.sup.as_mut() {
                    sup.arm(window.0);
                }
                let covered = self
                    .states
                    .get(&window.0)
                    .is_some_and(|s| self.stage1_covered(&s.reported, window.0));
                if covered {
                    self.close_stage1(window, resolved)?;
                }
                Ok(())
            }
            Message::CandidateReply {
                node,
                window,
                slices,
            } => self.absorb_reply(node, window, slices, resolved),
            other => Err(ClusterError::Protocol(format!(
                "dema root: unexpected message {other:?}"
            ))),
        }
    }

    fn next_deadline(&self) -> Option<std::time::Instant> {
        retry::next_due(&self.sup)
    }

    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let Some(sup) = self.sup.as_mut() else {
            return Ok(Vec::new());
        };
        if quiescent {
            // Nothing is arriving: every outstanding window (and silent
            // stream end) gets a deadline, so fully-dropped windows cannot
            // wedge the run.
            for w in 0..expected_windows {
                if !sup.is_done(w) && !self.ready.contains(&w) {
                    sup.arm(w);
                }
            }
            if !missing_enders.is_empty() {
                sup.arm(END_KEY);
            }
        }
        if missing_enders.is_empty() {
            sup.disarm(END_KEY);
        }
        let mut newly_dead: Vec<u32> = Vec::new();
        let now = Instant::now();
        for w in sup.expired(now) {
            if w == END_KEY {
                let missing: Vec<u32> = missing_enders
                    .iter()
                    .copied()
                    .filter(|&n| !sup.is_dead(n) && !sup.is_drained(n))
                    .collect();
                if missing.is_empty() {
                    sup.disarm(w);
                    continue;
                }
                match sup.on_expiry(w, &missing) {
                    ExpiryAction::Retry {
                        nodes,
                        attempt,
                        newly_dead: nd,
                    } => {
                        newly_dead.extend(nd);
                        for n in nodes {
                            retry::nack(
                                sup,
                                &mut self.control,
                                n,
                                Message::ResendWindow {
                                    window: WindowId(END_KEY),
                                    attempt,
                                },
                            )?;
                        }
                    }
                    ExpiryAction::GiveUp { newly_dead: nd } => newly_dead.extend(nd),
                }
                continue;
            }
            if self.ready.contains(&w) {
                sup.disarm(w);
                continue;
            }
            let stage2 = self.states.get(&w).is_some_and(|s| s.selection.is_some());
            if stage2 {
                let Some(state) = self.states.get(&w) else {
                    continue;
                };
                let missing: Vec<u32> = state
                    .expected_replies
                    .iter()
                    .copied()
                    .filter(|&n| !state.replied.contains(&n) && !sup.is_dead(n))
                    .collect();
                if missing.is_empty() {
                    sup.disarm(w);
                    continue;
                }
                match sup.on_expiry(w, &missing) {
                    ExpiryAction::Retry {
                        nodes,
                        attempt,
                        newly_dead: nd,
                    } => {
                        newly_dead.extend(nd);
                        for n in nodes {
                            let slices = state.node_requests.get(&n).cloned().unwrap_or_default();
                            retry::nack(
                                sup,
                                &mut self.control,
                                n,
                                Message::CandidateRetry {
                                    window: WindowId(w),
                                    slices,
                                    attempt,
                                },
                            )?;
                        }
                    }
                    ExpiryAction::GiveUp { newly_dead: nd } => newly_dead.extend(nd),
                }
            } else {
                let missing: Vec<u32> = self
                    .ledger
                    .members_of(w)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        !sup.is_dead(n)
                            && !sup.is_drained(n)
                            && !self.states.get(&w).is_some_and(|s| s.reported.contains(&n))
                    })
                    .collect();
                if missing.is_empty() {
                    sup.disarm(w);
                    continue;
                }
                match sup.on_expiry(w, &missing) {
                    ExpiryAction::Retry {
                        nodes,
                        attempt,
                        newly_dead: nd,
                    } => {
                        newly_dead.extend(nd);
                        for n in nodes {
                            retry::nack(
                                sup,
                                &mut self.control,
                                n,
                                Message::ResendWindow {
                                    window: WindowId(w),
                                    attempt,
                                },
                            )?;
                        }
                    }
                    ExpiryAction::GiveUp { newly_dead: nd } => newly_dead.extend(nd),
                }
            }
        }
        // Completion sweeps: stages that became covered through deaths
        // rather than arrivals.
        let mut stage1_closable: Vec<u64> = Vec::new();
        let mut resolvable: Vec<u64> = Vec::new();
        for (&w, state) in &self.states {
            if self.ready.contains(&w) || sup.is_done(w) {
                continue;
            }
            if state.selection.is_some() {
                if state
                    .expected_replies
                    .iter()
                    .all(|n| state.replied.contains(n) || sup.is_dead(*n))
                {
                    resolvable.push(w);
                }
            } else if sup.covered_members(Some(&state.reported), self.ledger.members_of(w)) {
                stage1_closable.push(w);
            }
        }
        // Windows abandoned by every member: no synopses at all, every
        // node of the window's epoch dead. They resolve empty-degraded so
        // the run can still finish.
        let mut all_dead: Vec<u64> = Vec::new();
        for w in 0..expected_windows {
            if !sup.is_done(w)
                && !self.states.contains_key(&w)
                && !self.ready.contains(&w)
                && self.ledger.members_of(w).iter().all(|&n| sup.is_dead(n))
            {
                all_dead.push(w);
            }
        }
        for w in stage1_closable {
            // Re-check: an earlier close may have chained into this window.
            if self.states.get(&w).is_some_and(|s| s.selection.is_none())
                && !self.ready.contains(&w)
            {
                self.close_stage1(WindowId(w), resolved)?;
            }
        }
        for w in resolvable {
            if self.states.get(&w).is_some_and(|s| s.selection.is_some()) {
                self.resolve(WindowId(w), resolved)?;
            }
        }
        for w in all_dead {
            if self.states.contains_key(&w) {
                continue;
            }
            let Some(sup) = self.sup.as_mut() else {
                break;
            };
            if sup.is_done(w) {
                continue;
            }
            sup.counters.record_degraded_window();
            let retries = sup.retries_of(w);
            sup.finish(w);
            resolved.push((
                WindowId(w),
                ResolvedWindow {
                    gamma: self.gamma.current(),
                    degraded: Some(Degraded {
                        missing_nodes: self.ledger.members_of(w).to_vec(),
                        rank_error_bound: None,
                        retries,
                    }),
                    ..ResolvedWindow::default()
                },
            ));
        }
        Ok(newly_dead.into_iter().map(NodeId).collect())
    }

    fn set_membership(&mut self, ledger: Arc<EpochLedger>) {
        self.ledger = ledger;
    }

    fn send_control(&mut self, node: u32, msg: &Message) -> Result<bool, ClusterError> {
        let resilient = self.sup.is_some();
        let Some(link) = self.control.get_mut(u64_to_usize(u64::from(node))) else {
            return Ok(false);
        };
        if resilient {
            retry::send_lossy(link.as_mut(), msg)?;
        } else {
            link.send(msg)?;
        }
        Ok(true)
    }

    fn current_gamma(&self) -> u64 {
        self.gamma.current()
    }

    fn on_node_drained(&mut self, node: NodeId) {
        self.departed.insert(node.0);
        if let Some(sup) = self.sup.as_mut() {
            sup.mark_drained(node.0);
        }
    }

    fn on_epoch_switch(&mut self, _epoch: u64) {
        // The member count (and with it l_G) just changed: restart the
        // adaptive γ controllers from their current value so the old
        // membership's observations stop steering the new epoch.
        self.gamma.reseed();
    }
}

/// The Dema local engine: sort, slice, store, ship synopses.
pub struct DemaLocal<'a> {
    shared: &'a LocalShared,
}

impl<'a> DemaLocal<'a> {
    /// Build the local half over the node's shared γ cell and slice store.
    pub fn new(shared: &'a LocalShared) -> DemaLocal<'a> {
        DemaLocal { shared }
    }
}

impl LocalEngine for DemaLocal<'_> {
    // hot-path: local-window
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        mut events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError> {
        let gamma = self.shared.gamma.load(Ordering::Relaxed);
        dema_core::par::sort_events_with(&mut events, self.shared.threads);
        let l_local = len_to_u64(events.len());
        let slices = cut_into_slices(node, window, events, gamma)?;
        let total = len_to_u32(slices.len());
        let synopses = slices
            .iter()
            .map(|s| s.synopsis(total))
            .collect::<Result<Vec<_>, _>>()?;
        dema_core::invariant::check_partition(&slices, &synopses, l_local)?;
        {
            let mut store = self.shared.store.lock();
            store.insert(window.0, slices);
            // Bound memory if the root stalls; oldest windows first.
            while store.len() > STORE_WINDOW_CAP {
                let Some(&oldest) = store.keys().min() else {
                    break;
                };
                store.remove(&oldest);
            }
        }
        to_root.send(&Message::SynopsisBatch {
            node,
            window,
            synopses,
        })?;
        Ok(())
    }
}

/// Build one candidate-reply payload from a stored window.
fn collect_payload(
    node: NodeId,
    window: WindowId,
    slices: &[u32],
    stored: &[Slice],
) -> Result<Vec<(u32, SharedRun)>, ClusterError> {
    slices
        .iter()
        .map(|&idx| {
            stored
                .get(u64_to_usize(u64::from(idx)))
                // SharedRun clone: refcount bump, no event copy.
                .map(|s| (idx, s.events.clone()))
                .ok_or_else(|| {
                    ClusterError::Protocol(format!(
                        "{node}: request for missing slice {idx} of {window}"
                    ))
                })
        })
        .collect()
}

/// Dema's responder: serves candidate requests (and, on resilient runs,
/// candidate retries and `ResendWindow` NACKs) plus γ updates until the
/// root closes the control link.
///
/// Seed runs serve each window destructively — the store entry is removed
/// with the reply, and an unknown window is a protocol error. Resilient
/// runs keep served windows (a retry must be idempotent) and treat an
/// unknown window as already-evicted: no reply, the root's retry budget
/// decides.
pub fn run_responder(
    node: NodeId,
    from_root: &mut dyn MsgReceiver,
    to_root: &mut dyn MsgSender,
    shared: &LocalShared,
) -> Result<(), ClusterError> {
    loop {
        let msg = match from_root.recv_timeout(RESPONDER_POLL) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(NetError::Disconnected) => return Ok(()), // root finished
            Err(e) => return Err(e.into()),
        };
        match responder_step(node, msg, to_root, shared)? {
            ResponderStatus::Continue => {}
            ResponderStatus::Stop => return Ok(()),
        }
    }
}

/// Outcome of one [`responder_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponderStatus {
    /// Keep serving control messages.
    Continue,
    /// Exit the responder loop cleanly (resilient run, uplink gone: the
    /// node is dead to the root and liveness accounting covers it).
    Stop,
}

/// Handle a single control message — one step of [`run_responder`],
/// factored out so the deterministic scheduler in `dema-model` can drive
/// the responder one delivery at a time with the same semantics as the
/// threaded loop.
// hot-path: responder-serve
pub fn responder_step(
    node: NodeId,
    msg: Message,
    to_root: &mut dyn MsgSender,
    shared: &LocalShared,
) -> Result<ResponderStatus, ClusterError> {
    match msg {
        Message::CandidateRequest { window, slices }
        | Message::CandidateRetry { window, slices, .. } => {
            let payload = {
                let mut store = shared.store.lock();
                if shared.retain_sent {
                    match store.get(&window.0) {
                        Some(stored) => Some(collect_payload(node, window, &slices, stored)?),
                        // Evicted (or a retry raced the store): stay
                        // silent, the root's retry budget handles it.
                        None => None,
                    }
                } else {
                    let stored = store.remove(&window.0).ok_or_else(|| {
                        ClusterError::Protocol(format!(
                            "{node}: candidate request for unknown window {window}"
                        ))
                    })?;
                    Some(collect_payload(node, window, &slices, &stored)?)
                }
            };
            if let Some(payload) = payload {
                let reply = Message::CandidateReply {
                    node,
                    window,
                    slices: payload,
                };
                if let Err(e) = to_root.send(&reply) {
                    return match e {
                        // Our uplink died mid-run: this node is dead to
                        // the root; exit cleanly, liveness covers it.
                        NetError::Disconnected if shared.retain_sent => Ok(ResponderStatus::Stop),
                        other => Err(other.into()),
                    };
                }
            }
        }
        Message::ResendWindow { window, .. } => {
            let cached = shared.sent.lock().get(&window.0).cloned();
            // A cache miss means the window was never processed here
            // (or was evicted): nothing to resend, the root retries.
            if let Some(m) = cached {
                if let Err(e) = to_root.send(&m) {
                    return match e {
                        NetError::Disconnected if shared.retain_sent => Ok(ResponderStatus::Stop),
                        other => Err(other.into()),
                    };
                }
            }
        }
        Message::GammaUpdate { gamma } => {
            shared.gamma.store(gamma.max(2), Ordering::Relaxed);
        }
        Message::JoinAccept { gamma, .. } => {
            // The root's γ at admission time: adopt it so the joiner's
            // early windows slice with live feedback instead of the run's
            // initial γ. γ 0 means the engine runs no γ control.
            if gamma >= 2 {
                shared.gamma.store(gamma, Ordering::Relaxed);
            }
        }
        Message::EpochSwitch { .. } => {
            // Membership bookkeeping lives at the root; locals only need
            // the boundary windows already fixed in their input plan.
        }
        Message::DrainComplete { .. } => {
            // The root finalized every window this node contributed to:
            // answer the handshake and retire the responder.
            let bye = Message::StreamEnd {
                node,
                late_events: 0,
            };
            if let Err(e) = to_root.send(&bye) {
                return match e {
                    NetError::Disconnected if shared.retain_sent => Ok(ResponderStatus::Stop),
                    other => Err(other.into()),
                };
            }
            return Ok(ResponderStatus::Stop);
        }
        other => {
            return Err(ClusterError::Protocol(format!(
                "{node}: unexpected control message {other:?}"
            )))
        }
    }
    Ok(ResponderStatus::Continue)
}
