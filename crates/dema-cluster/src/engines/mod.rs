//! The engine plugin layer: one module per aggregation engine behind the
//! [`RootEngine`] / [`LocalEngine`] traits, plus the registry that owns
//! labels, exactness flags, and config validation.
//!
//! The shells in `root.rs` / `local.rs` are engine-agnostic: the root shell
//! counts stream ends, records latencies, and turns the engine's
//! [`ResolvedWindow`]s into report outcomes; the local shell paces windows
//! and stamps close times. Everything protocol-specific — which wire
//! messages an engine sends, how the root combines them, when a window is
//! done — lives in this directory. Adding an engine means adding one module
//! here and one row to [`REGISTRY`]; no `match` arm elsewhere grows.

pub mod centralized;
pub mod dec_sort;
pub mod dema;
pub mod kll_distributed;
pub mod retry;
pub mod tdigest_central;
pub mod tdigest_distributed;

pub use retry::ResilienceCtx;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::quantile::Quantile;
use dema_net::MsgSender;
use dema_wire::Message;

use crate::config::EngineKind;
use crate::ClusterError;

/// Everything the root shell records when an engine finishes a window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResolvedWindow {
    /// The aggregate value (`None` for an empty window).
    pub value: Option<i64>,
    /// Extra quantile answers in configuration order (Dema engine only).
    pub extra_values: Vec<i64>,
    /// Global window size `l_G`.
    pub total_events: u64,
    /// Candidate events fetched in the calculation step (Dema only).
    pub candidate_events: u64,
    /// Candidate slice count `m` (Dema only).
    pub candidate_slices: u64,
    /// Synopses received for the window (Dema only).
    pub synopses: u64,
    /// γ in effect when the window was sliced (Dema), 0 otherwise.
    pub gamma: u64,
    /// `Some` when the window completed without every node's data
    /// (resilient runs only).
    pub degraded: Option<crate::report::Degraded>,
}

/// Root-side half of an engine: a per-window protocol state machine.
///
/// The shell feeds it every data-plane message except `StreamEnd` (which is
/// topology bookkeeping, not engine protocol). Finished windows are pushed
/// onto `resolved` — possibly several per call, e.g. when resolving one
/// window unblocks queued ones in a pipelined engine.
pub trait RootEngine: Send {
    /// Process one message from the locals.
    fn on_message(
        &mut self,
        msg: Message,
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<(), ClusterError>;

    /// Periodic fault-tolerance pass (resilient runs; the default is a
    /// no-op). `expected_windows` is the run's full window count,
    /// `quiescent` is `true` when nothing has reached the root for a full
    /// request timeout, and `missing_enders` lists locals that neither sent
    /// `StreamEnd` nor were declared dead. The engine checks deadlines,
    /// NACKs stragglers, and completes windows coverable from survivors.
    /// Returns nodes newly declared dead for the shell's accounting.
    fn on_tick(
        &mut self,
        expected_windows: u64,
        quiescent: bool,
        missing_enders: &[u32],
        resolved: &mut Vec<(WindowId, ResolvedWindow)>,
    ) -> Result<Vec<NodeId>, ClusterError> {
        let _ = (expected_windows, quiescent, missing_enders, resolved);
        Ok(Vec::new())
    }

    /// Earliest instant the engine's retry supervisor wants a tick —
    /// `None` when nothing is armed (and always on seed runs). The
    /// reactor runtime arms a timer here instead of ticking every sweep
    /// (DESIGN.md §13); an early or stale fire is harmless because
    /// `on_tick` re-checks real deadlines itself.
    fn next_deadline(&self) -> Option<std::time::Instant> {
        None
    }

    /// Install the run's membership epoch table (DESIGN.md §14). Engines
    /// without churn support ignore it; the root shell installs it before
    /// the first message and the runner rejects churn plans for such
    /// engines, so ignoring is safe.
    fn set_membership(&mut self, ledger: std::sync::Arc<crate::membership::EpochLedger>) {
        let _ = ledger;
    }

    /// Send one shell-originated control message (membership handshake) on
    /// `node`'s control link. Returns `Ok(false)` when the engine has no
    /// control plane — the shell treats that as a wiring error on churn
    /// runs.
    fn send_control(&mut self, node: u32, msg: &Message) -> Result<bool, ClusterError> {
        let _ = (node, msg);
        Ok(false)
    }

    /// The γ currently in effect (0 for engines without γ control) — what
    /// a `JoinAccept` hands a joiner so it slices its first window with
    /// fresh feedback instead of the run's initial γ.
    fn current_gamma(&self) -> u64 {
        0
    }

    /// A local departed cleanly (drain handshake finished). The engine
    /// cancels its liveness accounting for the node so no deadline ever
    /// produces a false death verdict for a drained member.
    fn on_node_drained(&mut self, node: NodeId) {
        let _ = node;
    }

    /// The shell broadcast `EpochSwitch { epoch }`: the member count just
    /// changed, so the engine re-seeds any `l_G`-dependent state (Dema's
    /// adaptive γ controllers restart from their current value — the old
    /// membership's observation history no longer describes the cluster).
    fn on_epoch_switch(&mut self, epoch: u64) {
        let _ = epoch;
    }
}

/// Local-side half of an engine: the duty performed per closed window.
pub trait LocalEngine {
    /// Handle one closed window's events, sending whatever the engine's
    /// protocol requires to the root.
    fn on_window(
        &mut self,
        node: NodeId,
        window: WindowId,
        events: Vec<Event>,
        to_root: &mut dyn MsgSender,
    ) -> Result<(), ClusterError>;
}

/// Construction parameters for a root engine.
pub struct RootParams {
    /// The quantile every window computes.
    pub quantile: Quantile,
    /// Extra per-window quantiles (engines without a shared identification
    /// step ignore these).
    pub extra_quantiles: Vec<Quantile>,
    /// Number of local (leaf) nodes reporting.
    pub n_locals: usize,
    /// Root→local control links, one per local, in node order (empty for
    /// engines without a control plane when the run is not resilient).
    pub control: Vec<Box<dyn MsgSender>>,
    /// Retry / liveness parameters plus the fault-counter sink. `None`
    /// runs the seed protocol unchanged.
    pub resilience: Option<ResilienceCtx>,
    /// Max windows the root admits into its identification/calculation
    /// stage at once (engines without a window pipeline ignore this;
    /// clamped to at least 1). See [`dema::PIPELINE_DEPTH`] for the
    /// default and the trade-off.
    pub pipeline_depth: usize,
}

/// Static facts about one registered engine.
pub struct EngineDescriptor {
    /// Short label for reports and tables.
    pub label: &'static str,
    /// `true` if the engine computes exact quantiles.
    pub exact: bool,
    /// `true` if the engine needs root→local control links and a responder
    /// thread per local (today: only Dema's calculation step).
    pub control_plane: bool,
    /// Human-readable wire-cost summary (README engine table).
    pub wire_cost: &'static str,
    /// A canonical instance for registry-driven matrix tests.
    pub example: fn() -> EngineKind,
    /// Protocol-spec roles this engine implements — names that must
    /// resolve in `dema-model`'s declarative protocol specification.
    /// The spec's conformance checkers (lint R6/R7, the interleaving
    /// explorer) pick the state machines to check from here, so an engine
    /// without roles fails the registry test, not in production.
    pub roles: &'static [&'static str],
}

/// All registered engines, in presentation order.
pub static REGISTRY: [EngineDescriptor; 6] = [
    EngineDescriptor {
        label: "dema",
        exact: true,
        control_plane: true,
        wire_cost: "2·l/γ + m·γ events per window",
        example: || EngineKind::Dema {
            gamma: crate::config::GammaMode::Fixed(128),
            strategy: dema_core::selector::SelectionStrategy::WindowCut,
        },
        roles: &["dema-root", "dema-local", "dema-responder"],
    },
    EngineDescriptor {
        label: "centralized",
        exact: true,
        control_plane: false,
        wire_cost: "l events per window (raw)",
        example: || EngineKind::Centralized,
        roles: &["centralized-root", "centralized-local"],
    },
    EngineDescriptor {
        label: "dec-sort",
        exact: true,
        control_plane: false,
        wire_cost: "l events per window (sorted runs)",
        example: || EngineKind::DecSort,
        roles: &["dec-sort-root", "dec-sort-local"],
    },
    EngineDescriptor {
        label: "tdigest",
        exact: false,
        control_plane: false,
        wire_cost: "l events per window (raw)",
        example: || EngineKind::TdigestCentral { compression: 100.0 },
        roles: &["tdigest-root", "tdigest-local"],
    },
    EngineDescriptor {
        label: "tdigest-dist",
        exact: false,
        control_plane: false,
        wire_cost: "O(δ) centroids per node per window",
        example: || EngineKind::TdigestDistributed { compression: 100.0 },
        roles: &["tdigest-dist-root", "tdigest-dist-local"],
    },
    EngineDescriptor {
        label: "kll-dist",
        exact: false,
        control_plane: false,
        wire_cost: "O(k) weighted items per node per window",
        example: || EngineKind::KllDistributed { k: 256 },
        roles: &["kll-root", "kll-local"],
    },
];

/// The registry row describing `kind`.
pub fn descriptor(kind: EngineKind) -> &'static EngineDescriptor {
    let idx = match kind {
        EngineKind::Dema { .. } => 0,
        EngineKind::Centralized => 1,
        EngineKind::DecSort => 2,
        EngineKind::TdigestCentral { .. } => 3,
        EngineKind::TdigestDistributed { .. } => 4,
        EngineKind::KllDistributed { .. } => 5,
    };
    &REGISTRY[idx]
}

/// Validate an engine configuration before wiring a cluster for it.
///
/// # Errors
/// [`ClusterError::Protocol`] describing the rejected parameter.
pub fn validate(kind: EngineKind) -> Result<(), ClusterError> {
    match kind {
        EngineKind::Dema { gamma, .. } if gamma.initial() < 2 => Err(ClusterError::Protocol(
            format!("dema: γ must be ≥ 2, got {}", gamma.initial()),
        )),
        EngineKind::TdigestCentral { compression }
        | EngineKind::TdigestDistributed { compression }
            if !(compression.is_finite() && compression > 0.0) =>
        {
            Err(ClusterError::Protocol(format!(
                "tdigest: compression must be finite and positive, got {compression}"
            )))
        }
        EngineKind::KllDistributed { k } if k < 8 => Err(ClusterError::Protocol(format!(
            "kll: k must be ≥ 8, got {k}"
        ))),
        _ => Ok(()),
    }
}

/// The γ the locals start with (2 — the no-op slice factor — for engines
/// without γ control).
pub fn initial_gamma(kind: EngineKind) -> u64 {
    match kind {
        EngineKind::Dema { gamma, .. } => gamma.initial(),
        _ => 2,
    }
}

/// Build the root-side engine for `kind`.
pub fn build_root(kind: EngineKind, params: RootParams) -> Box<dyn RootEngine> {
    match kind {
        EngineKind::Dema { gamma, strategy } => {
            Box::new(dema::DemaRoot::new(gamma, strategy, params))
        }
        EngineKind::Centralized => Box::new(centralized::CentralizedRoot::new(params)),
        EngineKind::DecSort => Box::new(dec_sort::DecSortRoot::new(params)),
        EngineKind::TdigestCentral { compression } => Box::new(
            tdigest_central::TdigestCentralRoot::new(compression, params),
        ),
        EngineKind::TdigestDistributed { .. } => {
            Box::new(tdigest_distributed::TdigestDistributedRoot::new(params))
        }
        EngineKind::KllDistributed { .. } => Box::new(kll_distributed::KllRoot::new(params)),
    }
}

/// Build the local-side engine for `kind`. `shared` carries the γ cell and
/// slice store; engines without a control plane ignore it.
pub fn build_local(kind: EngineKind, shared: &dema::LocalShared) -> Box<dyn LocalEngine + '_> {
    match kind {
        EngineKind::Dema { .. } => Box::new(dema::DemaLocal::new(shared)),
        EngineKind::Centralized => Box::new(centralized::CentralizedLocal),
        EngineKind::DecSort => Box::new(dec_sort::DecSortLocal::new(shared.threads)),
        EngineKind::TdigestCentral { .. } => Box::new(tdigest_central::TdigestCentralLocal),
        EngineKind::TdigestDistributed { compression } => Box::new(
            tdigest_distributed::TdigestDistributedLocal::new(compression),
        ),
        EngineKind::KllDistributed { k } => Box::new(kll_distributed::KllLocal::new(k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_labels_are_unique_and_consistent() {
        let mut labels: Vec<&str> = REGISTRY.iter().map(|d| d.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), REGISTRY.len(), "duplicate engine label");
        for d in &REGISTRY {
            let kind = (d.example)();
            assert_eq!(descriptor(kind).label, d.label);
            assert_eq!(kind.label(), d.label);
            assert_eq!(kind.is_exact(), d.exact);
            assert!(
                validate(kind).is_ok(),
                "example config for {} must validate",
                d.label
            );
        }
    }

    #[test]
    fn every_engine_declares_protocol_roles() {
        // Each engine names the protocol-spec state machines it implements:
        // at least a root-side and a local-side role, with no duplicates
        // across engines. `dema-model`'s registry test closes the loop by
        // resolving every name against the declarative spec.
        let mut seen = std::collections::HashSet::new();
        for d in &REGISTRY {
            assert!(
                !d.roles.is_empty(),
                "engine {} declares no protocol-spec roles",
                d.label
            );
            assert!(
                d.roles.iter().any(|r| r.ends_with("-root")),
                "engine {} declares no root-side role",
                d.label
            );
            assert!(
                d.roles.iter().any(|r| r.ends_with("-local")),
                "engine {} declares no local-side role",
                d.label
            );
            assert_eq!(
                d.roles.iter().any(|r| r.ends_with("-responder")),
                d.control_plane,
                "engine {}: responder role must match the control-plane flag",
                d.label
            );
            for r in d.roles {
                assert!(seen.insert(*r), "role {r} declared by two engines");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(validate(EngineKind::KllDistributed { k: 2 }).is_err());
        assert!(validate(EngineKind::TdigestCentral { compression: 0.0 }).is_err());
        assert!(validate(EngineKind::TdigestDistributed {
            compression: f64::NAN
        })
        .is_err());
        assert!(validate(EngineKind::Dema {
            gamma: crate::config::GammaMode::Fixed(1),
            strategy: dema_core::selector::SelectionStrategy::WindowCut,
        })
        .is_err());
    }
}
