//! Root-node logic: per-window state machines for every engine.
//!
//! The root consumes messages from all local nodes (interleaved arbitrarily
//! across windows) and finalizes each global window once every local has
//! reported — and, for Dema, once all candidate replies arrived. Dema's
//! root work per window is deliberately tiny: sort `S` synopses, compute
//! rank bounds, merge a few candidate runs; the baselines sort or merge the
//! entire window, which is exactly the bottleneck the paper measures.
//!
//! ## Window pipeline (Dema)
//!
//! Dema windows move through a bounded two-stage pipeline keyed by window
//! id. Stage 1 (*ingest & order*) collects a window's synopses and sorts
//! them by value interval the moment the last local reports — this runs
//! even while earlier windows sit in stage 2, so the root's CPU work for
//! `w+1` overlaps the network round trip of `w`. Stage 2 (*identify &
//! resolve*) runs the window-cut, fires candidate requests, and awaits the
//! replies; at most [`PIPELINE_DEPTH`] windows hold a stage-2 slot at once,
//! bounding outstanding request fan-out and candidate-run memory no matter
//! how far the locals run ahead. The window-cut itself stays the pure,
//! single-threaded algorithm in `dema-core` — the pipeline only schedules
//! *when* it runs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

use dema_core::event::{Event, NodeId, WindowId};
use dema_core::gamma::AdaptiveGamma;
use dema_core::merge::select_kth;
use dema_core::multi::{select_multi, MultiSelection};
use dema_core::quantile::Quantile;
use dema_core::shared::SharedRun;
use dema_core::slice::{Slice, SliceId, SliceSynopsis};
use dema_core::DemaError;
use dema_metrics::LatencyHistogram;
use dema_net::MsgSender;
use dema_sketch::{QuantileSketch, TDigest};
use dema_wire::Message;

use crate::config::{EngineKind, GammaMode};
use crate::local::CloseTimes;
use crate::report::WindowOutcome;
use crate::ClusterError;

/// Max Dema windows allowed in stage 2 (candidate requests outstanding) at
/// once. Two slots let the next window's requests go out the moment the
/// current one resolves while later windows keep ingesting; deeper
/// pipelines only add memory, not throughput, because the root's stage-2
/// work per window is tiny compared to the reply round trip.
pub const PIPELINE_DEPTH: usize = 2;

/// Per-window accumulation state.
#[derive(Default)]
struct WindowState {
    /// Locals that delivered their identification-step message.
    reported: usize,
    /// Dema: all synopses of the window.
    synopses: Vec<SliceSynopsis>,
    /// Centralized / DecSort: raw or sorted batches.
    batches: Vec<Vec<Event>>,
    /// Tdigest engines: the (merged) digest.
    digest: Option<TDigest>,
    digest_count: u64,
    /// Dema: the identification step's decision (index 0 = the primary
    /// quantile's plan, then the extra quantiles in order).
    selection: Option<MultiSelection>,
    /// Dema: synopsis lookup for verification of replies.
    synopsis_of: HashMap<SliceId, SliceSynopsis>,
    /// Dema: candidate runs received so far (shared views, zero-copy off
    /// the in-memory transport).
    runs: Vec<SharedRun>,
    runs_received: usize,
    /// Dema: per-node local window sizes `l_i` (for per-node γ control).
    node_sizes: HashMap<u32, u64>,
    /// Dema: per-node candidate-slice counts `m_i`.
    node_candidates: HashMap<u32, u64>,
    /// γ in effect when this window was sliced (node 0's γ under per-node
    /// control).
    gamma: u64,
}

/// The root's γ policy.
enum GammaPolicy {
    /// No γ control (non-Dema engines).
    Off,
    /// Fixed γ, never updated.
    Fixed(u64),
    /// One controller for the whole cluster (§3.3 default).
    Global(AdaptiveGamma),
    /// One controller per local node (§3.3 future-work variant).
    PerNode(Vec<AdaptiveGamma>),
}

impl GammaPolicy {
    /// γ to report for window outcomes (node 0's view).
    fn current(&self) -> u64 {
        match self {
            GammaPolicy::Off => 0,
            GammaPolicy::Fixed(g) => *g,
            GammaPolicy::Global(ctl) => ctl.current(),
            GammaPolicy::PerNode(ctls) => ctls.first().map_or(2, AdaptiveGamma::current),
        }
    }
}

/// The root node.
pub struct RootNode {
    quantile: Quantile,
    extra_quantiles: Vec<Quantile>,
    engine: EngineKind,
    n_locals: usize,
    expected_windows: u64,
    states: BTreeMap<u64, WindowState>,
    outcomes: BTreeMap<u64, WindowOutcome>,
    gamma: GammaPolicy,
    control: Vec<Box<dyn MsgSender>>,
    close_times: CloseTimes,
    latency: LatencyHistogram,
    ended: usize,
    late_events: u64,
    /// Dema windows currently in stage 2 (requests sent, replies pending).
    in_flight: usize,
    /// Stage-1-complete windows waiting for a stage-2 slot, in the order
    /// their last synopsis arrived (window order for well-paced locals).
    ready: VecDeque<u64>,
}

impl RootNode {
    /// Create a root for `n_locals` local nodes and `expected_windows`
    /// windows. `control[i]` is the root→local link of local `i` (empty for
    /// engines without a calculation step).
    pub fn new(
        quantile: Quantile,
        engine: EngineKind,
        n_locals: usize,
        expected_windows: u64,
        control: Vec<Box<dyn MsgSender>>,
        close_times: CloseTimes,
    ) -> RootNode {
        RootNode::with_extra_quantiles(
            quantile,
            Vec::new(),
            engine,
            n_locals,
            expected_windows,
            control,
            close_times,
        )
    }

    /// [`RootNode::new`] with extra per-window quantiles answered from the
    /// same identification step (Dema engine only).
    #[allow(clippy::too_many_arguments)]
    pub fn with_extra_quantiles(
        quantile: Quantile,
        extra_quantiles: Vec<Quantile>,
        engine: EngineKind,
        n_locals: usize,
        expected_windows: u64,
        control: Vec<Box<dyn MsgSender>>,
        close_times: CloseTimes,
    ) -> RootNode {
        let gamma = match engine {
            EngineKind::Dema { gamma: GammaMode::Adaptive { initial }, .. } => {
                GammaPolicy::Global(AdaptiveGamma::with_default_bounds(initial))
            }
            EngineKind::Dema { gamma: GammaMode::AdaptivePerNode { initial }, .. } => {
                GammaPolicy::PerNode(
                    (0..n_locals).map(|_| AdaptiveGamma::with_default_bounds(initial)).collect(),
                )
            }
            EngineKind::Dema { gamma: GammaMode::Fixed(g), .. } => GammaPolicy::Fixed(g),
            _ => GammaPolicy::Off,
        };
        RootNode {
            quantile,
            extra_quantiles,
            engine,
            n_locals,
            expected_windows,
            states: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            gamma,
            control,
            close_times,
            latency: LatencyHistogram::new(),
            ended: 0,
            late_events: 0,
            in_flight: 0,
            ready: VecDeque::new(),
        }
    }

    /// `true` once every window is finalized and every local has ended.
    pub fn finished(&self) -> bool {
        self.outcomes.len() as u64 == self.expected_windows && self.ended == self.n_locals
    }

    /// Windows finalized so far.
    pub fn completed_windows(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// Consume the root, yielding outcomes in window order plus the latency
    /// histogram.
    pub fn into_results(self) -> (Vec<WindowOutcome>, LatencyHistogram) {
        (self.outcomes.into_values().collect(), self.latency)
    }

    /// Late events reported by the locals' stream-end messages.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Process one message from a local node.
    pub fn handle(&mut self, msg: Message) -> Result<(), ClusterError> {
        match msg {
            Message::SynopsisBatch { node: _, window, synopses } => {
                let state = self.states.entry(window.0).or_default();
                state.synopses.extend(synopses);
                state.reported += 1;
                if state.reported == self.n_locals {
                    // Stage 1 complete: order the synopses by value interval
                    // now, overlapping the reply round trips of earlier
                    // windows. Identification is order-insensitive, so this
                    // only moves the sort work off the critical path.
                    state.synopses.sort_unstable_by_key(|s| (s.first, s.last, s.id));
                    if self.in_flight < PIPELINE_DEPTH {
                        self.identify(window)?;
                    } else {
                        self.ready.push_back(window.0);
                    }
                }
                Ok(())
            }
            Message::CandidateReply { node, window, slices } => {
                self.absorb_reply(node, window, slices)
            }
            Message::EventBatch { window, events, .. } => {
                let state = self.states.entry(window.0).or_default();
                match self.engine {
                    EngineKind::TdigestCentral { compression } => {
                        let digest =
                            state.digest.get_or_insert_with(|| TDigest::new(compression));
                        for e in &events {
                            digest.insert(e.value as f64);
                        }
                        state.digest_count += events.len() as u64;
                    }
                    _ => state.batches.push(events),
                }
                state.reported += 1;
                if state.reported == self.n_locals {
                    self.resolve_batches(window)?;
                }
                Ok(())
            }
            Message::DigestBatch { window, count, compression, centroids, .. } => {
                let state = self.states.entry(window.0).or_default();
                let incoming = TDigest::from_centroids(compression, centroids);
                match &mut state.digest {
                    Some(d) => d.merge_from(&incoming),
                    None => state.digest = Some(incoming),
                }
                state.digest_count += count;
                state.reported += 1;
                if state.reported == self.n_locals {
                    self.resolve_batches(window)?;
                }
                Ok(())
            }
            Message::StreamEnd { late_events, .. } => {
                self.ended += 1;
                self.late_events += late_events;
                Ok(())
            }
            other => Err(ClusterError::Protocol(format!("root: unexpected message {other:?}"))),
        }
    }

    /// Dema identification step once all synopses of `window` arrived.
    fn identify(&mut self, window: WindowId) -> Result<(), ClusterError> {
        let EngineKind::Dema { strategy, .. } = self.engine else {
            return Err(ClusterError::Protocol("synopses sent to non-Dema root".into()));
        };
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("identify of unknown window {window}")))?;
        state.gamma = self.gamma.current();
        dema_core::invariant::check_synopsis_order(&state.synopses).map_err(ClusterError::Core)?;
        let total: u64 = state.synopses.iter().map(|s| s.count).sum();
        if total == 0 {
            self.finalize(window, None, Vec::new(), 0, 0, 0, 0)?;
            return Ok(());
        }
        let mut ranks = Vec::with_capacity(1 + self.extra_quantiles.len());
        ranks.push(self.quantile.pos(total)?);
        for q in &self.extra_quantiles {
            ranks.push(q.pos(total)?);
        }
        let selection = select_multi(&state.synopses, &ranks, strategy)?;
        for plan in &selection.plans {
            dema_core::invariant::check_selection(
                &state.synopses,
                &selection.candidates,
                plan.rank,
                plan.offset_below,
            )
            .map_err(ClusterError::Core)?;
        }
        state.synopsis_of = state.synopses.iter().map(|s| (s.id, *s)).collect();
        // Per-node observations for the γ controllers.
        state.node_sizes.clear();
        for s in &state.synopses {
            *state.node_sizes.entry(s.id.node.0).or_insert(0) += s.count;
        }
        state.node_candidates.clear();
        for id in &selection.candidates {
            *state.node_candidates.entry(id.node.0).or_insert(0) += 1;
        }

        // Group candidate slices by owning node and fire the requests.
        let mut per_node: HashMap<u32, Vec<u32>> = HashMap::new();
        for id in &selection.candidates {
            per_node.entry(id.node.0).or_default().push(id.index);
        }
        state.runs_received = 0;
        state.runs.clear();
        let expected_replies = per_node.len();
        state.selection = Some(selection);
        for (node, slices) in per_node {
            let link = self
                .control
                .get_mut(node as usize)
                .ok_or_else(|| ClusterError::Protocol(format!("no control link for n{node}")))?;
            link.send(&Message::CandidateRequest { window, slices })?;
        }
        // Stash how many replies we expect (one per involved node).
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("state lost for window {window}")))?;
        state.reported = expected_replies; // reuse as "replies expected"
        self.in_flight += 1; // stage-2 slot held until the window finalizes
        Ok(())
    }

    /// Admit ready windows into stage 2 while slots are free.
    fn advance_pipeline(&mut self) -> Result<(), ClusterError> {
        while self.in_flight < PIPELINE_DEPTH {
            let Some(w) = self.ready.pop_front() else { break };
            self.identify(WindowId(w))?;
        }
        Ok(())
    }

    /// Absorb one candidate reply; finalize once all involved nodes replied.
    fn absorb_reply(
        &mut self,
        node: NodeId,
        window: WindowId,
        slices: Vec<(u32, SharedRun)>,
    ) -> Result<(), ClusterError> {
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("reply for unknown window {window}")))?;
        for (index, events) in slices {
            let id = SliceId { node, window, index };
            let selected = state
                .selection
                .as_ref()
                .is_some_and(|sel| sel.candidates.contains(&id));
            if !selected {
                return Err(ClusterError::Protocol(format!("reply for unselected slice {id}")));
            }
            let syn = state.synopsis_of.get(&id).ok_or_else(|| {
                ClusterError::Protocol(format!("reply for unknown slice {id}"))
            })?;
            // Cheap integrity check: count, endpoints, sortedness.
            let slice = Slice { id, events };
            slice.verify_against(syn).map_err(ClusterError::Core)?;
            state.runs.push(slice.events);
        }
        state.runs_received += 1;
        if state.runs_received == state.reported {
            let selection = state.selection.take().ok_or_else(|| {
                ClusterError::Protocol(format!("{window}: replies complete before identification"))
            })?;
            let run_count: u64 = state.runs.iter().map(|r| r.len() as u64).sum();
            if run_count != selection.candidate_events {
                return Err(ClusterError::Core(DemaError::InconsistentSynopses(format!(
                    "{window}: {run_count} candidate events delivered, expected {}",
                    selection.candidate_events
                ))));
            }
            let mut values = selection
                .plans
                .iter()
                .map(|p| {
                    let event = select_kth(&state.runs, p.rank_within_candidates())
                        .map_err(ClusterError::Core)?;
                    dema_core::invariant::check_selected_event(
                        &state.runs,
                        p.rank_within_candidates(),
                        &event,
                    )
                    .map_err(ClusterError::Core)?;
                    Ok(event.value)
                })
                .collect::<Result<Vec<i64>, ClusterError>>()?;
            let primary = values.remove(0);
            let total = selection.total_events;
            let m = selection.candidates.len() as u64;
            let synopses = state.synopsis_of.len() as u64;
            let node_sizes = std::mem::take(&mut state.node_sizes);
            let node_candidates = std::mem::take(&mut state.node_candidates);
            self.finalize(
                window,
                Some(primary),
                values,
                total,
                selection.candidate_events,
                m,
                synopses,
            )?;
            // Adaptive γ: re-optimize from this window's observation.
            match &mut self.gamma {
                GammaPolicy::Global(ctl) => {
                    let before = ctl.current();
                    let next = ctl.observe_checked(total, m).map_err(ClusterError::Core)?;
                    if next != before {
                        for link in &mut self.control {
                            link.send(&Message::GammaUpdate { gamma: next })?;
                        }
                    }
                }
                GammaPolicy::PerNode(ctls) => {
                    for (n, ctl) in ctls.iter_mut().enumerate() {
                        let l_i = node_sizes.get(&(n as u32)).copied().unwrap_or(0);
                        if l_i == 0 {
                            continue; // node idle this window, keep its γ
                        }
                        let m_i = node_candidates.get(&(n as u32)).copied().unwrap_or(0);
                        let before = ctl.current();
                        let next = ctl.observe_checked(l_i, m_i).map_err(ClusterError::Core)?;
                        if next != before {
                            let link = self.control.get_mut(n).ok_or_else(|| {
                                ClusterError::Protocol(format!("no control link for n{n}"))
                            })?;
                            link.send(&Message::GammaUpdate { gamma: next })?;
                        }
                    }
                }
                GammaPolicy::Off | GammaPolicy::Fixed(_) => {}
            }
            // Stage-2 slot freed: pull the next ordered window in.
            self.in_flight -= 1;
            self.advance_pipeline()?;
        }
        Ok(())
    }

    /// Baseline resolution once all batches/digests of `window` arrived.
    fn resolve_batches(&mut self, window: WindowId) -> Result<(), ClusterError> {
        let state = self
            .states
            .get_mut(&window.0)
            .ok_or_else(|| ClusterError::Protocol(format!("resolve of unknown window {window}")))?;
        match self.engine {
            EngineKind::Centralized => {
                let mut all: Vec<Event> =
                    state.batches.drain(..).flatten().collect();
                let total = all.len() as u64;
                if total == 0 {
                    return self.finalize(window, None, Vec::new(), 0, 0, 0, 0);
                }
                // The centralized root does the full sort itself.
                all.sort_unstable();
                let k = self.quantile.pos(total)?;
                let value = all[(k - 1) as usize].value;
                self.finalize(window, Some(value), Vec::new(), total, 0, 0, 0)
            }
            EngineKind::DecSort => {
                let runs = std::mem::take(&mut state.batches);
                let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
                if total == 0 {
                    return self.finalize(window, None, Vec::new(), 0, 0, 0, 0);
                }
                // Locals pre-sorted; the root only merges.
                let k = self.quantile.pos(total)?;
                let value = select_kth(&runs, k).map_err(ClusterError::Core)?.value;
                self.finalize(window, Some(value), Vec::new(), total, 0, 0, 0)
            }
            EngineKind::TdigestCentral { .. } | EngineKind::TdigestDistributed { .. } => {
                let total = state.digest_count;
                if total == 0 {
                    return self.finalize(window, None, Vec::new(), 0, 0, 0, 0);
                }
                let digest = state.digest.as_ref().ok_or_else(|| {
                    ClusterError::Protocol(format!(
                        "{window}: digest count {total} without a digest"
                    ))
                })?;
                let value = digest
                    .quantile(self.quantile.fraction())
                    .map(|v| v.round() as i64);
                self.finalize(window, value, Vec::new(), total, 0, 0, 0)
            }
            EngineKind::Dema { .. } => {
                Err(ClusterError::Protocol("event batch sent to Dema root".into()))
            }
        }
    }

    /// Record the outcome of `window` and its latency.
    #[allow(clippy::too_many_arguments)]
    fn finalize(
        &mut self,
        window: WindowId,
        value: Option<i64>,
        extra_values: Vec<i64>,
        total_events: u64,
        candidate_events: u64,
        candidate_slices: u64,
        synopses: u64,
    ) -> Result<(), ClusterError> {
        let gamma = self
            .states
            .get(&window.0)
            .map(|s| s.gamma)
            .unwrap_or_else(|| self.gamma.current());
        self.states.remove(&window.0);
        let now = Instant::now();
        let latency_us = {
            let mut times = self.close_times.lock();
            let mut latest: Option<Instant> = None;
            for n in 0..self.n_locals as u32 {
                if let Some(t) = times.remove(&(n, window.0)) {
                    latest = Some(latest.map_or(t, |l| l.max(t)));
                }
            }
            latest.map_or(0, |t| now.duration_since(t).as_micros() as u64)
        };
        self.latency.record(latency_us);
        self.outcomes.insert(
            window.0,
            WindowOutcome {
                window,
                value,
                extra_values,
                total_events,
                latency_us,
                candidate_events,
                candidate_slices,
                synopses,
                gamma,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GammaMode;
    use dema_metrics::NetworkCounters;
    use dema_net::mem::link;
    use dema_net::MsgReceiver;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn close_times() -> CloseTimes {
        Arc::new(Mutex::new(HashMap::new()))
    }

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter().enumerate().map(|(i, &v)| Event::new(v, 0, i as u64)).collect()
    }

    #[test]
    fn centralized_root_sorts_and_answers() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Centralized,
            2,
            1,
            vec![],
            close_times(),
        );
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: events(&[9, 1, 5]),
        })
        .unwrap();
        assert_eq!(root.completed_windows(), 0);
        root.handle(Message::EventBatch {
            node: NodeId(1),
            window: WindowId(0),
            sorted: false,
            events: events(&[2, 8]),
        })
        .unwrap();
        root.handle(Message::StreamEnd { node: NodeId(0), late_events: 0 }).unwrap();
        root.handle(Message::StreamEnd { node: NodeId(1), late_events: 3 }).unwrap();
        assert_eq!(root.late_events(), 3);
        assert!(root.finished());
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(5)); // rank 3 of [1,2,5,8,9]
        assert_eq!(outcomes[0].total_events, 5);
    }

    #[test]
    fn decsort_root_merges_sorted_runs() {
        let mut root =
            RootNode::new(Quantile::MEDIAN, EngineKind::DecSort, 2, 1, vec![], close_times());
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: true,
            events: events(&[1, 5, 9]),
        })
        .unwrap();
        root.handle(Message::EventBatch {
            node: NodeId(1),
            window: WindowId(0),
            sorted: true,
            events: events(&[2, 8]),
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(5));
    }

    #[test]
    fn dema_root_full_protocol() {
        // Control link to one local; we play the local manually.
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let (ctl_tx2, mut ctl_rx2) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(2),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            2,
            1,
            vec![Box::new(ctl_tx), Box::new(ctl_tx2)],
            close_times(),
        );
        // Build local windows: node 0 has [0..10), node 1 has [10..20).
        let node0 = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..10).collect::<Vec<i64>>()),
            5,
        )
        .unwrap();
        let node1 = dema_core::slice::cut_into_slices(
            NodeId(1),
            WindowId(0),
            events(&(10..20).collect::<Vec<i64>>()),
            5,
        )
        .unwrap();
        let syn = |slices: &[dema_core::slice::Slice]| {
            slices.iter().map(|s| s.synopsis(slices.len() as u32).unwrap()).collect::<Vec<_>>()
        };
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: syn(&node0),
        })
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(1),
            window: WindowId(0),
            synopses: syn(&node1),
        })
        .unwrap();
        // Median rank 10 lies in node 0's second slice [5..10).
        let req = ctl_rx.recv().unwrap();
        let Message::CandidateRequest { window, slices } = req else {
            panic!("expected request, got {req:?}");
        };
        assert_eq!(window, WindowId(0));
        assert_eq!(slices, vec![1]);
        assert!(ctl_rx2
            .recv_timeout(std::time::Duration::from_millis(20))
            .unwrap()
            .is_none(), "node 1 owns no candidates");
        root.handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(1, node0[1].events.clone())],
        })
        .unwrap();
        assert_eq!(root.completed_windows(), 1);
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(9)); // rank 10 of 0..20
        assert_eq!(outcomes[0].candidate_events, 5);
        assert_eq!(outcomes[0].candidate_slices, 1);
        assert_eq!(outcomes[0].synopses, 4);
        assert_eq!(outcomes[0].gamma, 2);
    }

    #[test]
    fn tdigest_central_root_is_approximate_but_close() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::TdigestCentral { compression: 100.0 },
            1,
            1,
            vec![],
            close_times(),
        );
        let vals: Vec<i64> = (0..10_000).collect();
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: events(&vals),
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        let v = outcomes[0].value.unwrap();
        assert!((v - 5000).abs() < 150, "tdigest median {v}");
    }

    #[test]
    fn corrupt_candidate_reply_is_rejected() {
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(4),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![Box::new(ctl_tx)],
            close_times(),
        );
        let slices = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..8).collect::<Vec<i64>>()),
            4,
        )
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: slices.iter().map(|s| s.synopsis(2).unwrap()).collect(),
        })
        .unwrap();
        let _ = ctl_rx.recv().unwrap();
        // Tamper: send the wrong events for the requested slice.
        let err = root
            .handle(Message::CandidateReply {
                node: NodeId(0),
                window: WindowId(0),
                slices: vec![(0, events(&[42, 43, 44, 45]).into())],
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Core(DemaError::CorruptCandidate(_))), "{err:?}");
    }

    #[test]
    fn empty_global_window_finalizes_none() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(4),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![],
            close_times(),
        );
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: vec![],
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, None);
        assert_eq!(outcomes[0].total_events, 0);
    }

    #[test]
    fn pipeline_bounds_outstanding_candidate_requests() {
        // One local, four windows delivered all at once: the root must fire
        // requests for only PIPELINE_DEPTH windows, queue the rest (already
        // ingested and ordered), and admit them as replies free slots. An
        // empty window (2) must pass through without wedging a slot.
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(2),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            4,
            vec![Box::new(ctl_tx)],
            close_times(),
        );
        let mut windows: HashMap<u64, Vec<Slice>> = HashMap::new();
        for w in 0u64..4 {
            if w == 2 {
                // Window 2 arrives empty.
                root.handle(Message::SynopsisBatch {
                    node: NodeId(0),
                    window: WindowId(2),
                    synopses: vec![],
                })
                .unwrap();
                continue;
            }
            let vals: Vec<i64> = (0..6).map(|i| w as i64 * 10 + i).collect();
            let slices =
                dema_core::slice::cut_into_slices(NodeId(0), WindowId(w), events(&vals), 2)
                    .unwrap();
            let synopses =
                slices.iter().map(|s| s.synopsis(slices.len() as u32).unwrap()).collect();
            windows.insert(w, slices);
            root.handle(Message::SynopsisBatch {
                node: NodeId(0),
                window: WindowId(w),
                synopses,
            })
            .unwrap();
        }
        // Slots are full: nothing finalized yet, windows 2 and 3 queued.
        assert_eq!(root.completed_windows(), 0);

        let next_request = |rx: &mut dema_net::mem::MemReceiver| match rx.recv().unwrap() {
            Message::CandidateRequest { window, slices } => (window.0, slices),
            other => panic!("expected request, got {other:?}"),
        };
        let reply = |root: &mut RootNode, windows: &HashMap<u64, Vec<Slice>>, w: u64, req: &[u32]| {
            let slices = req
                .iter()
                .map(|&i| (i, windows[&w][i as usize].events.clone()))
                .collect();
            root.handle(Message::CandidateReply {
                node: NodeId(0),
                window: WindowId(w),
                slices,
            })
            .unwrap();
        };

        // Only the first two windows hold stage-2 slots.
        let (w0, req0) = next_request(&mut ctl_rx);
        let (w1, req1) = next_request(&mut ctl_rx);
        assert_eq!((w0, w1), (0, 1));
        assert!(
            ctl_rx.recv_timeout(std::time::Duration::from_millis(20)).unwrap().is_none(),
            "window 3 must wait for a free slot"
        );
        // Resolving window 0 admits window 2 — empty, finalized on the spot
        // without taking a slot — and then window 3 into the freed slot.
        reply(&mut root, &windows, 0, &req0);
        assert_eq!(root.completed_windows(), 2);
        let (w3, req3) = next_request(&mut ctl_rx);
        assert_eq!(w3, 3);
        reply(&mut root, &windows, 1, &req1);
        reply(&mut root, &windows, 3, &req3);
        assert_eq!(root.completed_windows(), 4);
        let (outcomes, _) = root.into_results();
        // Median rank 3 of w*10 + [0..6) is w*10 + 2.
        assert_eq!(
            outcomes.iter().map(|o| o.value).collect::<Vec<_>>(),
            vec![Some(2), Some(12), None, Some(32)]
        );
    }

    #[test]
    fn adaptive_gamma_broadcasts_updates() {
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Adaptive { initial: 4 },
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![Box::new(ctl_tx)],
            close_times(),
        );
        let slices = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..1000).collect::<Vec<i64>>()),
            4,
        )
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: slices.iter().map(|s| s.synopsis(slices.len() as u32).unwrap()).collect(),
        })
        .unwrap();
        let Message::CandidateRequest { slices: req, .. } = ctl_rx.recv().unwrap() else {
            panic!()
        };
        let reply: Vec<(u32, SharedRun)> =
            req.iter().map(|&i| (i, slices[i as usize].events.clone())).collect();
        root.handle(Message::CandidateReply { node: NodeId(0), window: WindowId(0), slices: reply })
            .unwrap();
        // γ* = sqrt(2*1000/1) ≈ 45 ≠ 4 → update broadcast.
        match ctl_rx.recv().unwrap() {
            Message::GammaUpdate { gamma } => {
                assert_eq!(gamma, dema_core::gamma::optimal_gamma(1000, 1))
            }
            other => panic!("{other:?}"),
        }
    }
}
