//! The root-node shell: engine-agnostic window bookkeeping.
//!
//! The shell owns what every engine shares — counting stream ends, turning
//! the engine's [`ResolvedWindow`]s into [`WindowOutcome`]s, and measuring
//! window-close → result latency. All protocol logic (which messages an
//! engine expects, when a window is done) lives behind the
//! [`crate::engines::RootEngine`] trait; see the modules under
//! `crate::engines` for the per-engine state machines.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dema_core::event::{NodeId, WindowId};
use dema_core::numeric::len_to_u32;
use dema_core::quantile::Quantile;
use dema_metrics::LatencyHistogram;
use dema_net::MsgSender;
use dema_wire::Message;

use crate::config::{EngineKind, MembershipPlan};
use crate::engines::{self, ResilienceCtx, ResolvedWindow, RootEngine, RootParams};
use crate::local::CloseTimes;
use crate::membership::EpochLedger;
use crate::report::{EpochNodeTraffic, EpochStats, WindowOutcome};
use crate::ClusterError;

pub use crate::engines::dema::PIPELINE_DEPTH;

/// The root node: an engine plugged into the shared shell.
pub struct RootNode {
    engine: Box<dyn RootEngine>,
    n_locals: usize,
    expected_windows: u64,
    outcomes: BTreeMap<u64, WindowOutcome>,
    close_times: CloseTimes,
    latency: LatencyHistogram,
    /// Locals whose stream-end arrived (set, so a duplicated `StreamEnd`
    /// under fault injection cannot end the run early).
    ended: HashSet<u32>,
    /// Locals the engine declared dead (liveness / retry budget exhausted).
    dead: HashSet<u32>,
    late_events: u64,
    /// Resilient runs: the request timeout, doubling as the quiescence
    /// threshold for `tick`. `None` on seed (fail-fast) runs.
    resilience_timeout: Option<Duration>,
    /// Last time `handle` saw any message — staleness beyond the timeout
    /// means the run is quiescent and outstanding windows need deadlines.
    last_progress: Instant,
    /// Whether a quiescent `tick` already ran for the current
    /// `last_progress` epoch. Once it has, every outstanding window and
    /// silent stream end holds a supervisor deadline, so `next_deadline`
    /// can rely on the engine alone instead of re-offering the (now past)
    /// quiescence instant every sweep.
    quiescent_ticked: bool,
    /// Reused scratch buffer for the engine's resolved windows.
    resolved: Vec<(WindowId, ResolvedWindow)>,
    /// The membership schedule: which locals contribute to which windows
    /// (trivial single-epoch ledger unless [`RootNode::with_membership`]
    /// installed a churn plan; DESIGN.md §14).
    ledger: Arc<EpochLedger>,
    /// Leavers whose `LeaveAnnounce` arrived but whose drain is still
    /// gated on the watermark reaching their boundary.
    leave_announced: HashSet<u32>,
    /// Locals whose drain handshake finished (`DrainComplete` sent). A
    /// drained node is accounted for like an ended one, never chased by
    /// the liveness machinery, and never declared dead.
    drained: HashSet<u32>,
    /// Highest epoch whose `EpochSwitch` has been broadcast (0 = only the
    /// initial epoch is active).
    epoch_switched: u64,
    /// First window not yet finalized — every window below it has an
    /// outcome. Epoch switches and drains gate on this so a boundary only
    /// takes effect once the old epoch is fully resolved.
    watermark: u64,
    /// When each epoch's `EpochSwitch` broadcast went out.
    switch_instants: HashMap<u64, Instant>,
    /// When each epoch's first window finalized.
    first_finalize: HashMap<u64, Instant>,
    /// Windows finalized per epoch.
    epoch_windows: BTreeMap<u64, u64>,
    /// Degraded windows per epoch.
    epoch_degraded: BTreeMap<u64, u64>,
    /// Receive-side data-plane traffic per (epoch, node): window-keyed
    /// messages and their event units, keyed by the window's epoch. Being
    /// counted at the root's receive path makes the numbers identical
    /// across transports and thread counts.
    epoch_traffic: BTreeMap<(u64, u32), (u64, u64)>,
}

impl RootNode {
    /// Create a root for `n_locals` local nodes and `expected_windows`
    /// windows. `control[i]` is the root→local link of local `i` (empty for
    /// engines without a calculation step).
    pub fn new(
        quantile: Quantile,
        engine: EngineKind,
        n_locals: usize,
        expected_windows: u64,
        control: Vec<Box<dyn MsgSender>>,
        close_times: CloseTimes,
    ) -> RootNode {
        RootNode::with_extra_quantiles(
            quantile,
            Vec::new(),
            engine,
            n_locals,
            expected_windows,
            control,
            close_times,
            None,
            PIPELINE_DEPTH,
        )
    }

    /// [`RootNode::new`] with extra per-window quantiles answered from the
    /// same identification step (Dema engine only), an optional resilience
    /// context enabling retries and graceful degradation, and an explicit
    /// window-pipeline depth (see [`PIPELINE_DEPTH`] for the default).
    #[allow(clippy::too_many_arguments)]
    pub fn with_extra_quantiles(
        quantile: Quantile,
        extra_quantiles: Vec<Quantile>,
        engine: EngineKind,
        n_locals: usize,
        expected_windows: u64,
        control: Vec<Box<dyn MsgSender>>,
        close_times: CloseTimes,
        resilience: Option<ResilienceCtx>,
        pipeline_depth: usize,
    ) -> RootNode {
        let resilience_timeout = resilience
            .as_ref()
            .map(|r| Duration::from_millis(r.config.request_timeout_ms));
        let engine = engines::build_root(
            engine,
            RootParams {
                quantile,
                extra_quantiles,
                n_locals,
                control,
                resilience,
                pipeline_depth,
            },
        );
        RootNode {
            engine,
            n_locals,
            expected_windows,
            outcomes: BTreeMap::new(),
            close_times,
            latency: LatencyHistogram::new(),
            ended: HashSet::new(),
            dead: HashSet::new(),
            late_events: 0,
            resilience_timeout,
            last_progress: Instant::now(),
            quiescent_ticked: false,
            resolved: Vec::new(),
            ledger: Arc::new(EpochLedger::trivial(n_locals)),
            leave_announced: HashSet::new(),
            drained: HashSet::new(),
            epoch_switched: 0,
            watermark: 0,
            switch_instants: HashMap::new(),
            first_finalize: HashMap::new(),
            epoch_windows: BTreeMap::new(),
            epoch_degraded: BTreeMap::new(),
            epoch_traffic: BTreeMap::new(),
        }
    }

    /// Install a membership churn plan: windows are computed under the
    /// epochs it describes, joins are admitted and leavers drained at the
    /// planned boundaries. `n_locals` must count every node id the plan
    /// ever names (epoch-0 members and joiners alike).
    pub fn with_membership(mut self, plan: &MembershipPlan) -> Result<RootNode, ClusterError> {
        let ledger = Arc::new(EpochLedger::from_plan(self.n_locals, plan)?);
        self.engine.set_membership(Arc::clone(&ledger));
        self.ledger = ledger;
        Ok(self)
    }

    /// `true` once every window is finalized and every local has either
    /// ended its stream, drained away cleanly, or been declared dead.
    pub fn finished(&self) -> bool {
        let accounted = (0..len_to_u32(self.n_locals))
            .filter(|n| self.ended.contains(n) || self.dead.contains(n) || self.drained.contains(n))
            .count();
        self.outcomes.len() as u64 == self.expected_windows && accounted == self.n_locals
    }

    /// Windows finalized so far.
    pub fn completed_windows(&self) -> u64 {
        self.outcomes.len() as u64
    }

    /// Consume the root, yielding outcomes in window order plus the latency
    /// histogram.
    pub fn into_results(self) -> (Vec<WindowOutcome>, LatencyHistogram) {
        (self.outcomes.into_values().collect(), self.latency)
    }

    /// Late events reported by the locals' stream-end messages.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Locals the engine has declared dead so far (resilient runs), in
    /// node order. The interleaving explorer reads this to decide whether
    /// a missing reply was legitimized by a death verdict.
    pub fn dead_nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.dead.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Locals whose drain handshake finished, in node order. Disjoint from
    /// [`RootNode::dead_nodes`]: a drained node is a planned departure,
    /// not a failure.
    pub fn drained_nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.drained.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Per-epoch accounting for the run report, epoch order (a single
    /// entry when no membership plan was installed).
    pub fn epoch_stats(&self) -> Vec<EpochStats> {
        self.ledger
            .epochs()
            .iter()
            .map(|info| {
                let switch_latency_us = match (
                    self.switch_instants.get(&info.epoch),
                    self.first_finalize.get(&info.epoch),
                ) {
                    (Some(s), Some(f)) if f > s => f.duration_since(*s).as_micros() as u64,
                    _ => 0,
                };
                EpochStats {
                    epoch: info.epoch,
                    first_window: info.first_window,
                    members: info.members.clone(),
                    joined: info.joined.clone(),
                    left: info.left.clone(),
                    handoffs: (info.joined.len() + info.left.len()) as u64,
                    windows_completed: self.epoch_windows.get(&info.epoch).copied().unwrap_or(0),
                    degraded_windows: self.epoch_degraded.get(&info.epoch).copied().unwrap_or(0),
                    switch_latency_us,
                    per_node: info
                        .members
                        .iter()
                        .map(|&n| {
                            let (messages, events) = self
                                .epoch_traffic
                                .get(&(info.epoch, n))
                                .copied()
                                .unwrap_or((0, 0));
                            EpochNodeTraffic {
                                node: n,
                                messages,
                                events,
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// Process one message from a local node.
    pub fn handle(&mut self, msg: Message) -> Result<(), ClusterError> {
        self.last_progress = Instant::now();
        self.quiescent_ticked = false;
        match msg {
            Message::StreamEnd { node, late_events } => {
                if self.ended.insert(node.0) {
                    self.late_events += late_events;
                }
                return self.sweep_membership();
            }
            Message::JoinRequest { node, window } => {
                let planned = self.ledger.join_window(node.0);
                if planned == 0 || planned != window.0 {
                    return Err(ClusterError::Protocol(format!(
                        "{node}: unplanned join at {window}"
                    )));
                }
                // Joins are staged in the plan, so the accept is pure
                // acknowledgement plus the live γ — the joiner streams its
                // first window without waiting for it.
                let accept = Message::JoinAccept {
                    node,
                    epoch: self.ledger.epoch_of(window.0),
                    window,
                    gamma: self.engine.current_gamma(),
                };
                if !self.engine.send_control(node.0, &accept)? {
                    return Err(ClusterError::Protocol(format!(
                        "{node}: join on an engine without a control plane"
                    )));
                }
                return Ok(());
            }
            Message::LeaveAnnounce { node, window } => {
                if self.ledger.leave_window(node.0) != Some(window.0) {
                    return Err(ClusterError::Protocol(format!(
                        "{node}: unplanned leave at {window}"
                    )));
                }
                self.leave_announced.insert(node.0);
                return self.sweep_membership();
            }
            _ => {}
        }
        self.attribute_traffic(&msg);
        let mut resolved = std::mem::take(&mut self.resolved);
        let result = self.engine.on_message(msg, &mut resolved);
        for (window, r) in resolved.drain(..) {
            self.finalize(window, r);
        }
        self.resolved = resolved;
        result?;
        self.sweep_membership()
    }

    /// Charge one window-keyed data-plane message to its sender's account
    /// in the window's epoch. Control traffic (stream ends, membership
    /// handshakes, retries) is deliberately excluded: the per-epoch figures
    /// compare a node's *contribution*, not the fault layer's chatter.
    fn attribute_traffic(&mut self, msg: &Message) {
        let Some((node, window)) = msg.data_source() else {
            return;
        };
        let (node, window) = (node.0, window.0);
        let epoch = self.ledger.epoch_of(window);
        let slot = self.epoch_traffic.entry((epoch, node)).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += msg.event_units();
    }

    /// Advance the membership schedule: broadcast `EpochSwitch` for every
    /// boundary the watermark has crossed, then complete the drain of any
    /// announced leaver whose windows are all finalized. Idempotent; runs
    /// after every message and tick.
    fn sweep_membership(&mut self) -> Result<(), ClusterError> {
        if self.ledger.is_trivial() {
            return Ok(());
        }
        while self.epoch_switched + 1 < self.ledger.n_epochs() as u64 {
            let next = self.epoch_switched + 1;
            let Some(info) = self.ledger.info(next) else {
                break; // unreachable: the ledger's epochs are dense
            };
            if self.watermark < info.first_window {
                break;
            }
            let msg = Message::EpochSwitch {
                epoch: next,
                window: WindowId(info.first_window),
                joined: info.joined.iter().copied().map(NodeId).collect(),
                left: info.left.iter().copied().map(NodeId).collect(),
            };
            for &n in &info.members {
                if !self.engine.send_control(n, &msg)? {
                    return Err(ClusterError::Protocol(
                        "membership churn on an engine without a control plane".into(),
                    ));
                }
            }
            self.engine.on_epoch_switch(next);
            self.switch_instants.insert(next, Instant::now());
            self.epoch_switched = next;
        }
        for e in 1..=self.epoch_switched {
            let Some(info) = self.ledger.info(e) else {
                continue; // unreachable: the ledger's epochs are dense
            };
            for &n in &info.left {
                if self.drained.contains(&n)
                    || self.dead.contains(&n)
                    || !self.leave_announced.contains(&n)
                {
                    continue;
                }
                // Every window the leaver owed is below the boundary, and
                // the watermark gate above put all of them behind us — its
                // SentCache has nothing left to replay.
                let done = Message::DrainComplete {
                    node: NodeId(n),
                    epoch: e - 1,
                };
                if !self.engine.send_control(n, &done)? {
                    return Err(ClusterError::Protocol(
                        "membership churn on an engine without a control plane".into(),
                    ));
                }
                self.drained.insert(n);
                self.engine.on_node_drained(NodeId(n));
            }
        }
        Ok(())
    }

    /// Drive the engine's retry / liveness machinery. A no-op on seed runs;
    /// on resilient runs the driver calls this once per receive sweep.
    ///
    /// Quiescence (no message for a full request timeout) arms deadlines
    /// for *every* outstanding window and silent stream end, so even a
    /// window whose messages were all dropped eventually gets NACKed or
    /// degraded instead of wedging the run.
    pub fn tick(&mut self) -> Result<(), ClusterError> {
        let Some(timeout) = self.resilience_timeout else {
            return Ok(());
        };
        let quiescent = self.last_progress.elapsed() >= timeout;
        self.quiescent_ticked |= quiescent;
        // A drained node owes nothing; an announced leaver still owes its
        // end-of-stream obligation (the END_KEY retry path re-fetches a
        // lost LeaveAnnounce from its SentCache).
        let missing_enders: Vec<u32> = (0..len_to_u32(self.n_locals))
            .filter(|n| {
                !self.ended.contains(n) && !self.dead.contains(n) && !self.drained.contains(n)
            })
            .collect();
        let mut resolved = std::mem::take(&mut self.resolved);
        let result = self.engine.on_tick(
            self.expected_windows,
            quiescent,
            &missing_enders,
            &mut resolved,
        );
        for (window, r) in resolved.drain(..) {
            self.finalize(window, r);
        }
        self.resolved = resolved;
        for node in result? {
            self.dead.insert(node.0);
        }
        self.sweep_membership()
    }

    /// The next instant [`RootNode::tick`] needs to run: the earlier of
    /// the quiescence threshold (arming deadlines for fully-dropped
    /// windows) and the engine supervisor's earliest retry deadline.
    /// `None` on seed runs — tick is a no-op there, so the reactor arms
    /// no timer at all and the hot path stays timer-free (DESIGN.md §13).
    ///
    /// Once a quiescent tick has run for the current progress epoch, the
    /// quiescence instant is in the past and arming from it again would
    /// make the reactor fire an immediate timer every sweep; the engine's
    /// own deadlines cover all remaining work, so only those are offered.
    pub fn next_deadline(&self) -> Option<Instant> {
        let timeout = self.resilience_timeout?;
        if self.quiescent_ticked {
            return self.engine.next_deadline();
        }
        let quiescence = self
            .last_progress
            .checked_add(timeout)
            .unwrap_or(self.last_progress);
        Some(match self.engine.next_deadline() {
            Some(engine_due) => engine_due.min(quiescence),
            None => quiescence,
        })
    }

    /// Record the outcome of `window` and its latency.
    fn finalize(&mut self, window: WindowId, r: ResolvedWindow) {
        let now = Instant::now();
        let latency_us = {
            let mut times = self.close_times.lock();
            let mut latest: Option<Instant> = None;
            for n in 0..self.n_locals as u32 {
                if let Some(t) = times.remove(&(n, window.0)) {
                    latest = Some(latest.map_or(t, |l| l.max(t)));
                }
            }
            latest.map_or(0, |t| now.duration_since(t).as_micros() as u64)
        };
        self.latency.record(latency_us);
        let epoch = self.ledger.epoch_of(window.0);
        *self.epoch_windows.entry(epoch).or_insert(0) += 1;
        if r.degraded.is_some() {
            *self.epoch_degraded.entry(epoch).or_insert(0) += 1;
        }
        self.first_finalize.entry(epoch).or_insert(now);
        self.outcomes.insert(
            window.0,
            WindowOutcome {
                window,
                value: r.value,
                extra_values: r.extra_values,
                total_events: r.total_events,
                latency_us,
                candidate_events: r.candidate_events,
                candidate_slices: r.candidate_slices,
                synopses: r.synopses,
                gamma: r.gamma,
                epoch,
                degraded: r.degraded,
            },
        );
        while self.outcomes.contains_key(&self.watermark) {
            self.watermark += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GammaMode;
    use dema_core::event::{Event, NodeId};
    use dema_core::shared::SharedRun;
    use dema_core::slice::Slice;
    use dema_core::DemaError;
    use dema_metrics::NetworkCounters;
    use dema_net::mem::link;
    use dema_net::MsgReceiver;
    use std::collections::HashMap;

    fn close_times() -> CloseTimes {
        crate::local::new_close_times()
    }

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, 0, i as u64))
            .collect()
    }

    #[test]
    fn centralized_root_sorts_and_answers() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Centralized,
            2,
            1,
            vec![],
            close_times(),
        );
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: events(&[9, 1, 5]),
        })
        .unwrap();
        assert_eq!(root.completed_windows(), 0);
        root.handle(Message::EventBatch {
            node: NodeId(1),
            window: WindowId(0),
            sorted: false,
            events: events(&[2, 8]),
        })
        .unwrap();
        root.handle(Message::StreamEnd {
            node: NodeId(0),
            late_events: 0,
        })
        .unwrap();
        root.handle(Message::StreamEnd {
            node: NodeId(1),
            late_events: 3,
        })
        .unwrap();
        assert_eq!(root.late_events(), 3);
        assert!(root.finished());
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(5)); // rank 3 of [1,2,5,8,9]
        assert_eq!(outcomes[0].total_events, 5);
    }

    #[test]
    fn decsort_root_merges_sorted_runs() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::DecSort,
            2,
            1,
            vec![],
            close_times(),
        );
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: true,
            events: events(&[1, 5, 9]),
        })
        .unwrap();
        root.handle(Message::EventBatch {
            node: NodeId(1),
            window: WindowId(0),
            sorted: true,
            events: events(&[2, 8]),
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(5));
    }

    #[test]
    fn dema_root_full_protocol() {
        // Control link to one local; we play the local manually.
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let (ctl_tx2, mut ctl_rx2) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(2),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            2,
            1,
            vec![Box::new(ctl_tx), Box::new(ctl_tx2)],
            close_times(),
        );
        // Build local windows: node 0 has [0..10), node 1 has [10..20).
        let node0 = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..10).collect::<Vec<i64>>()),
            5,
        )
        .unwrap();
        let node1 = dema_core::slice::cut_into_slices(
            NodeId(1),
            WindowId(0),
            events(&(10..20).collect::<Vec<i64>>()),
            5,
        )
        .unwrap();
        let syn = |slices: &[dema_core::slice::Slice]| {
            slices
                .iter()
                .map(|s| s.synopsis(slices.len() as u32).unwrap())
                .collect::<Vec<_>>()
        };
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: syn(&node0),
        })
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(1),
            window: WindowId(0),
            synopses: syn(&node1),
        })
        .unwrap();
        // Median rank 10 lies in node 0's second slice [5..10).
        let req = ctl_rx.recv().unwrap();
        let Message::CandidateRequest { window, slices } = req else {
            panic!("expected request, got {req:?}");
        };
        assert_eq!(window, WindowId(0));
        assert_eq!(slices, vec![1]);
        assert!(
            ctl_rx2
                .recv_timeout(std::time::Duration::from_millis(20))
                .unwrap()
                .is_none(),
            "node 1 owns no candidates"
        );
        root.handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: vec![(1, node0[1].events.clone())],
        })
        .unwrap();
        assert_eq!(root.completed_windows(), 1);
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, Some(9)); // rank 10 of 0..20
        assert_eq!(outcomes[0].candidate_events, 5);
        assert_eq!(outcomes[0].candidate_slices, 1);
        assert_eq!(outcomes[0].synopses, 4);
        assert_eq!(outcomes[0].gamma, 2);
    }

    #[test]
    fn tdigest_central_root_is_approximate_but_close() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::TdigestCentral { compression: 100.0 },
            1,
            1,
            vec![],
            close_times(),
        );
        let vals: Vec<i64> = (0..10_000).collect();
        root.handle(Message::EventBatch {
            node: NodeId(0),
            window: WindowId(0),
            sorted: false,
            events: events(&vals),
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        let v = outcomes[0].value.unwrap();
        assert!((v - 5000).abs() < 150, "tdigest median {v}");
    }

    #[test]
    fn kll_root_unions_weighted_items() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::KllDistributed { k: 64 },
            2,
            1,
            vec![],
            close_times(),
        );
        // Two "sketches" of unit-weight items: [0..4) and [4..8).
        root.handle(Message::SketchBatch {
            node: NodeId(0),
            window: WindowId(0),
            count: 4,
            min: 0.0,
            max: 3.0,
            items: (0..4).map(|i| (i as f64, 1)).collect(),
        })
        .unwrap();
        assert_eq!(root.completed_windows(), 0);
        root.handle(Message::SketchBatch {
            node: NodeId(1),
            window: WindowId(0),
            count: 4,
            min: 4.0,
            max: 7.0,
            items: (4..8).map(|i| (i as f64, 1)).collect(),
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        // Rank 4 of 0..8 is value 3 (unit weights make the union exact).
        assert_eq!(outcomes[0].value, Some(3));
        assert_eq!(outcomes[0].total_events, 8);
    }

    #[test]
    fn kll_root_rejects_weight_drift() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::KllDistributed { k: 64 },
            1,
            1,
            vec![],
            close_times(),
        );
        let err = root
            .handle(Message::SketchBatch {
                node: NodeId(0),
                window: WindowId(0),
                count: 5,
                min: 0.0,
                max: 1.0,
                items: vec![(0.0, 1), (1.0, 1)],
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn corrupt_candidate_reply_is_rejected() {
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(4),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![Box::new(ctl_tx)],
            close_times(),
        );
        let slices = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..8).collect::<Vec<i64>>()),
            4,
        )
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: slices.iter().map(|s| s.synopsis(2).unwrap()).collect(),
        })
        .unwrap();
        let _ = ctl_rx.recv().unwrap();
        // Tamper: send the wrong events for the requested slice.
        let err = root
            .handle(Message::CandidateReply {
                node: NodeId(0),
                window: WindowId(0),
                slices: vec![(0, events(&[42, 43, 44, 45]).into())],
            })
            .unwrap_err();
        assert!(
            matches!(err, ClusterError::Core(DemaError::CorruptCandidate(_))),
            "{err:?}"
        );
    }

    #[test]
    fn empty_global_window_finalizes_none() {
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Fixed(4),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![],
            close_times(),
        );
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: vec![],
        })
        .unwrap();
        let (outcomes, _) = root.into_results();
        assert_eq!(outcomes[0].value, None);
        assert_eq!(outcomes[0].total_events, 0);
    }

    #[test]
    fn pipeline_bounds_outstanding_candidate_requests() {
        // One local, four windows delivered all at once into an explicit
        // depth-2 pipeline: the root must fire requests for only two
        // windows, queue the rest (already ingested and ordered), and admit
        // them as replies free slots. An empty window (2) must pass through
        // without wedging a slot. Constructing with an explicit depth also
        // pins the configurability: the default is deeper (PIPELINE_DEPTH),
        // so this test would see a third request if the override leaked.
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        const { assert!(PIPELINE_DEPTH > 2, "test relies on overriding the default") };
        let mut root = RootNode::with_extra_quantiles(
            Quantile::MEDIAN,
            Vec::new(),
            EngineKind::Dema {
                gamma: GammaMode::Fixed(2),
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            4,
            vec![Box::new(ctl_tx)],
            close_times(),
            None,
            2,
        );
        let mut windows: HashMap<u64, Vec<Slice>> = HashMap::new();
        for w in 0u64..4 {
            if w == 2 {
                // Window 2 arrives empty.
                root.handle(Message::SynopsisBatch {
                    node: NodeId(0),
                    window: WindowId(2),
                    synopses: vec![],
                })
                .unwrap();
                continue;
            }
            let vals: Vec<i64> = (0..6).map(|i| w as i64 * 10 + i).collect();
            let slices =
                dema_core::slice::cut_into_slices(NodeId(0), WindowId(w), events(&vals), 2)
                    .unwrap();
            let synopses = slices
                .iter()
                .map(|s| s.synopsis(slices.len() as u32).unwrap())
                .collect();
            windows.insert(w, slices);
            root.handle(Message::SynopsisBatch {
                node: NodeId(0),
                window: WindowId(w),
                synopses,
            })
            .unwrap();
        }
        // Slots are full: nothing finalized yet, windows 2 and 3 queued.
        assert_eq!(root.completed_windows(), 0);

        let next_request = |rx: &mut dema_net::mem::MemReceiver| match rx.recv().unwrap() {
            Message::CandidateRequest { window, slices } => (window.0, slices),
            other => panic!("expected request, got {other:?}"),
        };
        let reply =
            |root: &mut RootNode, windows: &HashMap<u64, Vec<Slice>>, w: u64, req: &[u32]| {
                let slices = req
                    .iter()
                    .map(|&i| (i, windows[&w][i as usize].events.clone()))
                    .collect();
                root.handle(Message::CandidateReply {
                    node: NodeId(0),
                    window: WindowId(w),
                    slices,
                })
                .unwrap();
            };

        // Only the first two windows hold stage-2 slots.
        let (w0, req0) = next_request(&mut ctl_rx);
        let (w1, req1) = next_request(&mut ctl_rx);
        assert_eq!((w0, w1), (0, 1));
        assert!(
            ctl_rx
                .recv_timeout(std::time::Duration::from_millis(20))
                .unwrap()
                .is_none(),
            "window 3 must wait for a free slot"
        );
        // Resolving window 0 admits window 2 — empty, finalized on the spot
        // without taking a slot — and then window 3 into the freed slot.
        reply(&mut root, &windows, 0, &req0);
        assert_eq!(root.completed_windows(), 2);
        let (w3, req3) = next_request(&mut ctl_rx);
        assert_eq!(w3, 3);
        reply(&mut root, &windows, 1, &req1);
        reply(&mut root, &windows, 3, &req3);
        assert_eq!(root.completed_windows(), 4);
        let (outcomes, _) = root.into_results();
        // Median rank 3 of w*10 + [0..6) is w*10 + 2.
        assert_eq!(
            outcomes.iter().map(|o| o.value).collect::<Vec<_>>(),
            vec![Some(2), Some(12), None, Some(32)]
        );
    }

    #[test]
    fn adaptive_gamma_broadcasts_updates() {
        let (ctl_tx, mut ctl_rx) = link(NetworkCounters::new_shared());
        let mut root = RootNode::new(
            Quantile::MEDIAN,
            EngineKind::Dema {
                gamma: GammaMode::Adaptive { initial: 4 },
                strategy: dema_core::selector::SelectionStrategy::WindowCut,
            },
            1,
            1,
            vec![Box::new(ctl_tx)],
            close_times(),
        );
        let slices = dema_core::slice::cut_into_slices(
            NodeId(0),
            WindowId(0),
            events(&(0..1000).collect::<Vec<i64>>()),
            4,
        )
        .unwrap();
        root.handle(Message::SynopsisBatch {
            node: NodeId(0),
            window: WindowId(0),
            synopses: slices
                .iter()
                .map(|s| s.synopsis(slices.len() as u32).unwrap())
                .collect(),
        })
        .unwrap();
        let Message::CandidateRequest { slices: req, .. } = ctl_rx.recv().unwrap() else {
            panic!()
        };
        let reply: Vec<(u32, SharedRun)> = req
            .iter()
            .map(|&i| (i, slices[i as usize].events.clone()))
            .collect();
        root.handle(Message::CandidateReply {
            node: NodeId(0),
            window: WindowId(0),
            slices: reply,
        })
        .unwrap();
        // γ* = sqrt(2*1000/1) ≈ 45 ≠ 4 → update broadcast.
        match ctl_rx.recv().unwrap() {
            Message::GammaUpdate { gamma } => {
                assert_eq!(gamma, dema_core::gamma::optimal_gamma(1000, 1))
            }
            other => panic!("{other:?}"),
        }
    }
}
