#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dema-cluster
//!
//! The decentralized cluster runtime: local-node and root-node threads wired
//! by accounted transports, executing one of six pluggable engines (see
//! [`engines`]) over identical inputs:
//!
//! * **Dema** — the paper's contribution: local sort + slice, synopses to
//!   the root, window-cut candidate selection, candidate fetch, exact
//!   quantile. Fixed or adaptive γ.
//! * **Centralized** — the Scotty/Flink baseline: every raw event to the
//!   root, which sorts and picks the quantile.
//! * **DecSort** — the modified-Desis baseline: locals sort, ship sorted
//!   runs, the root k-way merges (never re-sorts).
//! * **TdigestCentral** — the paper's Tdigest baseline: raw events to the
//!   root, which feeds a t-digest and reports an approximate quantile.
//! * **TdigestDistributed** — the extension the paper predicts ("we expect
//!   Tdigest to outperform Dema also with a decentralized setup"): locals
//!   build digests, the root merges them.
//! * **KllDistributed** — locals build KLL sketches, weighted items are
//!   shipped and unioned at the root (approximate); added to prove the
//!   engine plugin surface.
//!
//! Engines implement the [`engines::RootEngine`] / [`engines::LocalEngine`]
//! trait pair and are registered in [`engines::REGISTRY`]; the shells in
//! [`root`] and [`local`] and the wiring in [`runner`] are engine-agnostic.
//!
//! The runner consumes pre-generated per-window inputs (see `dema-gen`),
//! runs one OS thread per node plus a responder thread per Dema local, and
//! produces a [`report::RunReport`] with per-window results, latencies, and
//! exact per-link traffic. Nodes are wired either as a flat star or as a
//! multi-level aggregation tree of relay nodes ([`config::Topology`]), with
//! per-tier traffic attribution in [`report::TierTraffic`].

pub mod config;
pub mod engines;
pub mod host;
pub mod local;
pub mod membership;
pub mod relay;
pub mod report;
pub mod root;
pub mod runner;

pub use config::{
    ClusterConfig, EngineKind, GammaMode, MembershipChange, MembershipPlan, Topology, TransportKind,
};
pub use membership::EpochLedger;
pub use report::{EpochStats, RunReport, TierTraffic, WindowOutcome};
pub use runner::run_cluster;

/// Errors from a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// The core algorithm rejected inputs (empty window asked for quantile…).
    Core(dema_core::DemaError),
    /// A transport failed mid-run.
    Net(dema_net::NetError),
    /// Protocol violation (unexpected message, missing reply).
    Protocol(String),
    /// A node thread panicked.
    NodePanic(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Core(e) => write!(f, "core error: {e}"),
            ClusterError::Net(e) => write!(f, "transport error: {e}"),
            ClusterError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClusterError::NodePanic(msg) => write!(f, "node thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<dema_core::DemaError> for ClusterError {
    fn from(e: dema_core::DemaError) -> ClusterError {
        ClusterError::Core(e)
    }
}

impl From<dema_net::NetError> for ClusterError {
    fn from(e: dema_net::NetError) -> ClusterError {
        ClusterError::Net(e)
    }
}
