//! Checked invariants of the rank-bound correctness model.
//!
//! Dema's exactness guarantee rests on properties the compiler cannot see:
//! synopses must partition the local window exactly (`Σ counts = l_local`,
//! endpoints monotone under the sort order), the candidate set must cover
//! the target rank `Pos(q) = ⌈q·l_G⌉`, the selected event's true rank must
//! equal `Pos(q)`, and γ must sit at the discrete minimum of
//! `Cost(γ) = 2·l_G/γ + m·(γ−2)` (continuous optimum `γ* = √(2·l_G/m)`).
//! Violating any of these silently degrades the system from "exact" to
//! "wrong" — the failure mode that separates Dema from sketch baselines.
//!
//! This module is an audit layer threaded through the coordinator, the
//! window-cut, and the root pipeline. Every check:
//!
//! * is active under `debug_assertions` (all dev/test builds) and under the
//!   `strict` cargo feature (opt-in for release builds);
//! * compiles to a no-op returning `Ok(())` otherwise, so the release hot
//!   path pays nothing;
//! * reports failures as [`DemaError::InvariantViolation`] through the
//!   normal error channel instead of panicking, so a corrupted synopsis
//!   takes down one window's query, not the node.
//!
//! The checks deliberately recompute from *independent* information (raw
//! events, a fresh [`RankIndex`]) rather than trusting the values under
//! test; a check that re-derives its expectation from the code it audits
//! would be a tautology.

use crate::error::{DemaError, Result};
use crate::event::Event;
use crate::gamma::cost;
use crate::numeric::len_to_u64;
use crate::rank::RankIndex;
use crate::slice::{Slice, SliceId, SliceSynopsis};

/// Relative tolerance for float comparisons in the cost-model check.
const COST_EPS: f64 = 1e-9;

/// `true` when the invariant layer is active: any `debug_assertions` build,
/// or a release build with `--features strict`.
#[inline]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "strict")
}

#[inline]
fn fail(msg: String) -> Result<()> {
    Err(DemaError::InvariantViolation(msg))
}

/// Local-node invariant: the slices and their synopses partition the sorted
/// window of `l_local` events.
///
/// Checks, per slice/synopsis pair: identity, count, endpoint agreement and
/// index continuity; across pairs: counts sum to `l_local` and consecutive
/// slices are monotone under the event sort order.
///
/// # Errors
/// [`DemaError::InvariantViolation`] naming the first violated property.
pub fn check_partition(slices: &[Slice], synopses: &[SliceSynopsis], l_local: u64) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    if slices.len() != synopses.len() {
        return fail(format!(
            "partition: {} slices but {} synopses",
            slices.len(),
            synopses.len()
        ));
    }
    let mut total = 0u64;
    for (i, (slice, syn)) in slices.iter().zip(synopses).enumerate() {
        if slice.id != syn.id {
            return fail(format!("partition: slice {} labelled {}", slice.id, syn.id));
        }
        if u64::from(syn.id.index) != len_to_u64(i) {
            return fail(format!(
                "partition: slice #{i} carries index {}",
                syn.id.index
            ));
        }
        if len_to_u64(slice.events.len()) != syn.count {
            return fail(format!(
                "partition: slice {} holds {} events, synopsis says {}",
                slice.id,
                slice.events.len(),
                syn.count
            ));
        }
        match (slice.events.first(), slice.events.last()) {
            (Some(first), Some(last)) => {
                if first.value != syn.first || last.value != syn.last {
                    return fail(format!(
                        "partition: slice {} endpoints [{}, {}] vs synopsis [{}, {}]",
                        slice.id, first.value, last.value, syn.first, syn.last
                    ));
                }
            }
            _ => return fail(format!("partition: slice {} is empty", slice.id)),
        }
        total = total.saturating_add(syn.count);
    }
    if total != l_local {
        return fail(format!(
            "partition: synopsis counts sum to {total}, window holds {l_local}"
        ));
    }
    for pair in slices.windows(2) {
        if let (Some(prev_last), Some(next_first)) = (pair[0].events.last(), pair[1].events.first())
        {
            if prev_last > next_first {
                return fail(format!(
                    "partition: slice {} ends after slice {} begins",
                    pair[0].id, pair[1].id
                ));
            }
        }
    }
    Ok(())
}

/// Root-side structural invariant over the synopses of one global window:
/// every slice is non-empty with `first <= last`, each node's slices carry
/// contiguous indices `0..total_slices` and are monotone by value interval.
///
/// This is the root's view of the partition property — it has no events yet,
/// only synopses, so it checks what synopses alone can prove.
///
/// # Errors
/// [`DemaError::InvariantViolation`] naming the first violated property.
pub fn check_synopsis_order(synopses: &[SliceSynopsis]) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    let mut by_node: std::collections::HashMap<_, Vec<&SliceSynopsis>> =
        std::collections::HashMap::new();
    for s in synopses {
        if s.count == 0 {
            return fail(format!("order: slice {} reports zero events", s.id));
        }
        if s.first > s.last {
            return fail(format!(
                "order: slice {} interval [{}, {}] is inverted",
                s.id, s.first, s.last
            ));
        }
        by_node.entry((s.id.node, s.id.window)).or_default().push(s);
    }
    for ((node, window), mut group) in by_node {
        group.sort_by_key(|s| s.id.index);
        let n = len_to_u64(group.len());
        for (i, s) in group.iter().enumerate() {
            if u64::from(s.id.index) != len_to_u64(i) {
                return fail(format!(
                    "order: {node}/{window} slice indices not contiguous at {}",
                    s.id.index
                ));
            }
            if u64::from(s.total_slices) != n {
                return fail(format!(
                    "order: slice {} claims {} total slices, node sent {n}",
                    s.id, s.total_slices
                ));
            }
        }
        for pair in group.windows(2) {
            if pair[0].last > pair[1].first {
                return fail(format!(
                    "order: slice {} last {} exceeds slice {} first {}",
                    pair[0].id, pair[0].last, pair[1].id, pair[1].first
                ));
            }
        }
    }
    Ok(())
}

/// Identification invariant: the candidate set covers the target rank.
///
/// Rebuilds a fresh [`RankIndex`] and verifies that (1) `k` lies within the
/// global window, (2) some candidate's rank interval contains `k`, (3) every
/// non-candidate is provably entirely before or after `k`, and (4) the
/// claimed `offset_below` equals the event count of the non-candidates
/// entirely before `k` — the value later subtracted from `k` to index into
/// the merged candidate runs.
///
/// # Errors
/// [`DemaError::InvariantViolation`] naming the first violated property.
pub fn check_selection(
    synopses: &[SliceSynopsis],
    candidates: &[SliceId],
    k: u64,
    offset_below: u64,
) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    let index = RankIndex::build(synopses);
    let total = index.total();
    if k == 0 || k > total {
        return fail(format!(
            "selection: target rank {k} outside window of {total}"
        ));
    }
    let chosen: std::collections::HashSet<SliceId> = candidates.iter().copied().collect();
    let mut covered = false;
    let mut below = 0u64;
    for s in synopses {
        let iv = index.interval(s);
        if chosen.contains(&s.id) {
            covered = covered || iv.contains(k);
        } else if iv.entirely_before(k) {
            below = below.saturating_add(s.count);
        } else if !iv.entirely_after(k) {
            return fail(format!(
                "selection: unpicked slice {} may contain rank {k}",
                s.id
            ));
        }
    }
    if !covered {
        return fail(format!(
            "selection: no candidate interval contains rank {k}"
        ));
    }
    if below != offset_below {
        return fail(format!(
            "selection: offset_below {offset_below} but {below} events rank before {k}"
        ));
    }
    Ok(())
}

/// Calculation invariant: the event picked from the merged candidate runs
/// really occupies position `rank_within` of their union, under the total
/// event order.
///
/// Counts, independently of the merge, how many candidate events order
/// strictly below and at-or-below the selected event; exactness requires
/// `below < rank_within <= at_or_below`.
///
/// # Errors
/// [`DemaError::InvariantViolation`] with both counts on failure.
pub fn check_selected_event<R: AsRef<[Event]>>(
    runs: &[R],
    rank_within: u64,
    selected: &Event,
) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    let mut below = 0u64;
    let mut at_or_below = 0u64;
    for run in runs {
        for e in run.as_ref() {
            if e < selected {
                below += 1;
            }
            if e <= selected {
                at_or_below += 1;
            }
        }
    }
    if below < rank_within && rank_within <= at_or_below {
        Ok(())
    } else {
        fail(format!(
            "selected event {selected:?} spans candidate ranks ({below}, {at_or_below}], \
             target rank within candidates is {rank_within}"
        ))
    }
}

/// End-to-end invariant: the reported quantile value has true rank `k`
/// among all `values` of the global window.
///
/// By the value-ordered definition of `Pos(q)`, the event at global rank `k`
/// has value `v` iff strictly fewer than `k` values are `< v` and at least
/// `k` are `<= v`. This is the naive O(n) oracle — no sort, no synopses —
/// so it cannot share a bug with the protocol under audit.
///
/// # Errors
/// [`DemaError::InvariantViolation`] with both counts on failure.
pub fn check_true_rank<I>(values: I, k: u64, value: i64) -> Result<()>
where
    I: IntoIterator<Item = i64>,
{
    if !enabled() {
        return Ok(());
    }
    let mut below = 0u64;
    let mut at_or_below = 0u64;
    for v in values {
        if v < value {
            below += 1;
        }
        if v <= value {
            at_or_below += 1;
        }
    }
    if below < k && k <= at_or_below {
        Ok(())
    } else {
        fail(format!(
            "value {value} occupies global ranks ({below}, {at_or_below}], Pos(q) is {k}"
        ))
    }
}

/// Cost-model invariant: `gamma` is a valid discrete minimizer of
/// `Cost(γ) = 2·l_G/γ + m·(γ−2)` over `[2, max(l_G, 2)]`.
///
/// With `m = 0` the synopsis term dominates and the unique optimum is one
/// slice per window (`γ = max(l_G, 2)`). Otherwise convexity makes "no
/// cheaper neighbour" sufficient: `Cost(γ) ≤ Cost(γ±1)` (within float
/// tolerance) brackets the continuous optimum `γ* = √(2·l_G/m)`.
///
/// # Errors
/// [`DemaError::InvariantViolation`] if `gamma < 2` or a neighbour is
/// strictly cheaper.
pub fn check_gamma(l_g: u64, m: u64, gamma: u64) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    if gamma < 2 {
        return fail(format!("gamma: γ={gamma} below the minimum of 2"));
    }
    let hi = l_g.max(2);
    if m == 0 {
        return if gamma == hi {
            Ok(())
        } else {
            fail(format!(
                "gamma: m=0 demands γ={hi} (one slice), got {gamma}"
            ))
        };
    }
    if gamma > hi {
        return fail(format!("gamma: γ={gamma} exceeds window bound {hi}"));
    }
    let here = cost(l_g, m, gamma);
    let tol = here.abs() * COST_EPS + COST_EPS;
    if gamma > 2 && cost(l_g, m, gamma - 1) + tol < here {
        return fail(format!(
            "gamma: Cost({}) < Cost({gamma}) for l_G={l_g}, m={m}",
            gamma - 1
        ));
    }
    if gamma < hi && cost(l_g, m, gamma + 1) + tol < here {
        return fail(format!(
            "gamma: Cost({}) < Cost({gamma}) for l_G={l_g}, m={m}",
            gamma + 1
        ));
    }
    Ok(())
}

#[cfg(all(test, any(debug_assertions, feature = "strict")))]
mod tests {
    use super::*;
    use crate::event::{NodeId, WindowId};
    use crate::gamma::optimal_gamma;
    use crate::slice::cut_into_slices;

    fn sorted_events(n: i64) -> Vec<Event> {
        (0..n).map(|v| Event::new(v, 0, v as u64)).collect()
    }

    fn slices_and_synopses(n: i64, gamma: u64) -> (Vec<Slice>, Vec<SliceSynopsis>) {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(n), gamma).unwrap();
        let total = slices.len() as u32;
        let synopses = slices.iter().map(|s| s.synopsis(total).unwrap()).collect();
        (slices, synopses)
    }

    #[test]
    fn layer_is_active_in_tests() {
        assert!(enabled());
    }

    #[test]
    fn faithful_partition_passes() {
        let (slices, synopses) = slices_and_synopses(100, 16);
        check_partition(&slices, &synopses, 100).unwrap();
        check_synopsis_order(&synopses).unwrap();
    }

    #[test]
    fn corrupted_count_trips_partition() {
        // The acceptance scenario: a synopsis count off by one must surface
        // as InvariantViolation, not a silently wrong quantile.
        let (slices, mut synopses) = slices_and_synopses(100, 16);
        synopses[2].count -= 1;
        let err = check_partition(&slices, &synopses, 100).unwrap_err();
        assert!(matches!(err, DemaError::InvariantViolation(_)), "{err}");
    }

    #[test]
    fn wrong_window_total_trips_partition() {
        let (slices, synopses) = slices_and_synopses(100, 16);
        assert!(matches!(
            check_partition(&slices, &synopses, 99),
            Err(DemaError::InvariantViolation(_))
        ));
    }

    #[test]
    fn tampered_endpoint_trips_partition() {
        let (slices, mut synopses) = slices_and_synopses(100, 16);
        synopses[0].last += 1;
        assert!(check_partition(&slices, &synopses, 100).is_err());
    }

    #[test]
    fn order_rejects_gaps_and_inversions() {
        let (_, mut synopses) = slices_and_synopses(100, 16);
        check_synopsis_order(&synopses).unwrap();

        let mut gap = synopses.clone();
        gap.remove(1); // indices no longer contiguous
        assert!(check_synopsis_order(&gap).is_err());

        synopses[0].first = synopses[0].last + 5; // inverted interval
        assert!(check_synopsis_order(&synopses).is_err());
    }

    #[test]
    fn order_rejects_non_monotone_neighbours() {
        let (_, mut synopses) = slices_and_synopses(100, 16);
        synopses[0].last = synopses[1].first + 10;
        assert!(check_synopsis_order(&synopses).is_err());
    }

    #[test]
    fn selection_accepts_the_real_selector() {
        let (_, synopses) = slices_and_synopses(1000, 64);
        let sel = crate::selector::select(
            &synopses,
            500,
            crate::selector::SelectionStrategy::WindowCut,
        )
        .unwrap();
        check_selection(&synopses, &sel.candidates, 500, sel.offset_below).unwrap();
    }

    #[test]
    fn selection_rejects_missing_candidate_and_bad_offset() {
        let (_, synopses) = slices_and_synopses(1000, 64);
        let sel = crate::selector::select(
            &synopses,
            500,
            crate::selector::SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert!(check_selection(&synopses, &[], 500, sel.offset_below).is_err());
        assert!(check_selection(&synopses, &sel.candidates, 500, sel.offset_below + 1).is_err());
        assert!(check_selection(&synopses, &sel.candidates, 0, sel.offset_below).is_err());
    }

    #[test]
    fn selected_event_rank_is_verified() {
        let runs = [sorted_events(10)];
        let third = Event::new(2, 0, 2);
        check_selected_event(&runs, 3, &third).unwrap();
        assert!(check_selected_event(&runs, 4, &third).is_err());
        assert!(check_selected_event(&runs, 2, &third).is_err());
    }

    #[test]
    fn true_rank_oracle_handles_duplicates() {
        let values = [5i64, 5, 5, 7, 9];
        check_true_rank(values, 1, 5).unwrap();
        check_true_rank(values, 3, 5).unwrap();
        check_true_rank(values, 4, 7).unwrap();
        assert!(check_true_rank(values, 4, 5).is_err());
        assert!(check_true_rank(values, 3, 7).is_err());
    }

    #[test]
    fn gamma_bracketing_matches_optimal_gamma() {
        for &(l_g, m) in &[
            (1_000u64, 1u64),
            (10_000, 3),
            (123, 5),
            (2, 1),
            (500, 0),
            (0, 0),
        ] {
            check_gamma(l_g, m, optimal_gamma(l_g, m)).unwrap();
        }
        assert!(check_gamma(10_000, 3, 2).is_err());
        assert!(check_gamma(10_000, 3, 10_000).is_err());
        assert!(check_gamma(10_000, 3, 1).is_err());
        assert!(check_gamma(500, 0, 123).is_err());
    }
}
