//! Sliding-window Dema: the paper's protocol composed with pane-based
//! stream slicing.
//!
//! The paper evaluates time-based *tumbling* windows. Sliding windows
//! (length `len`, slide `s`, `s | len`) follow naturally by cutting each
//! node's stream into non-overlapping **panes** of `s` ms: a sliding window
//! is the concatenation of `len/s` consecutive panes. Each pane is sorted
//! and γ-sliced *once* when it closes; every window that spans the pane
//! reuses its synopses — the identification step pays per *pane*, not per
//! window, exactly the sharing trick Scotty plays for decomposable
//! aggregates, now applied to Dema's synopses.
//!
//! Two further consequences fall out for free:
//!
//! * the rank-interval selector never assumed slices of one node are
//!   disjoint in value, so synopses of different panes may overlap
//!   arbitrarily — candidate selection and exactness carry over unchanged;
//! * the root can *cache* fetched candidate slices while their pane is
//!   alive: overlapping windows that select the same slice ship it once
//!   ([`SlidingStats::candidate_events_saved`] counts the savings).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::error::{DemaError, Result};
use crate::event::{Event, NodeId, WindowId};
use crate::merge::select_kth;
use crate::quantile::Quantile;
use crate::selector::{select, SelectionStrategy};
use crate::slice::{cut_into_slices, Slice, SliceId, SliceSynopsis};

/// Configuration of a sliding-window Dema evaluation.
#[derive(Debug, Clone, Copy)]
pub struct SlidingConfig {
    /// Window length in ms.
    pub window_len: u64,
    /// Slide (pane length) in ms; must divide `window_len`.
    pub slide: u64,
    /// Slice factor γ.
    pub gamma: u64,
    /// Quantile to compute per window.
    pub quantile: Quantile,
    /// Candidate selector.
    pub strategy: SelectionStrategy,
}

/// Result of one sliding window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindowResult {
    /// Inclusive start of the window (ms).
    pub start: u64,
    /// Exclusive end (ms).
    pub end: u64,
    /// Exact quantile value, `None` if the window was empty.
    pub value: Option<i64>,
    /// Events in the window.
    pub total_events: u64,
}

/// Traffic accounting across the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlidingStats {
    /// Synopses shipped (once per pane slice, shared across windows).
    pub synopses_sent: u64,
    /// Candidate events actually shipped.
    pub candidate_events_sent: u64,
    /// Candidate events *not* re-shipped thanks to the root's pane cache.
    pub candidate_events_saved: u64,
    /// Total events ingested.
    pub total_events: u64,
    /// Windows evaluated.
    pub windows: u64,
}

/// Evaluate exact quantiles over sliding windows for events distributed
/// across local nodes (single-process reference implementation).
///
/// `nodes[i]` holds node `i`'s events (any order); windows are derived from
/// event time. Only *complete* windows — those whose entire span lies within
/// the observed time range of the input — are reported.
///
/// # Errors
/// * [`DemaError::InvalidGamma`] for `gamma < 2`;
/// * [`DemaError::InvalidQuantile`] if `slide` is 0, doesn't divide
///   `window_len`, or no events exist.
pub fn sliding_quantiles(
    nodes: &[Vec<Event>],
    config: SlidingConfig,
) -> Result<(Vec<SlidingWindowResult>, SlidingStats)> {
    if config.slide == 0 || !config.window_len.is_multiple_of(config.slide) {
        return Err(DemaError::InvalidQuantile(format!(
            "slide {} must divide window length {}",
            config.slide, config.window_len
        )));
    }
    let panes_per_window = config.window_len / config.slide;
    let total_events: u64 = nodes.iter().map(|n| n.len() as u64).sum();
    if total_events == 0 {
        return Err(DemaError::EmptyWindow);
    }

    // 1. Cut every node's stream into sorted, γ-sliced panes.
    //    SliceId.window encodes the pane index.
    let mut pane_slices: HashMap<SliceId, Slice> = HashMap::new();
    let mut pane_synopses: BTreeMap<u64, Vec<SliceSynopsis>> = BTreeMap::new();
    let mut stats = SlidingStats {
        total_events,
        ..Default::default()
    };
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    for (n, events) in nodes.iter().enumerate() {
        let mut by_pane: BTreeMap<u64, Vec<Event>> = BTreeMap::new();
        for e in events {
            min_ts = min_ts.min(e.ts);
            max_ts = max_ts.max(e.ts);
            by_pane.entry(e.ts / config.slide).or_default().push(*e);
        }
        for (pane, mut pane_events) in by_pane {
            pane_events.sort_unstable();
            let slices =
                cut_into_slices(NodeId(n as u32), WindowId(pane), pane_events, config.gamma)?;
            let total = slices.len() as u32;
            let entry = pane_synopses.entry(pane).or_default();
            for s in slices {
                entry.push(s.synopsis(total)?);
                stats.synopses_sent += 1;
                pane_slices.insert(s.id, s);
            }
        }
    }

    // 2. Evaluate every complete window over the shared pane synopses.
    let first_window = min_ts / config.slide;
    let last_pane = max_ts / config.slide;
    let mut results = Vec::new();
    // Root-side cache: slices fetched for earlier overlapping windows.
    let mut fetched: HashSet<SliceId> = HashSet::new();
    let mut window_start_pane = first_window;
    while window_start_pane + panes_per_window <= last_pane + 1 {
        let pane_range = window_start_pane..window_start_pane + panes_per_window;
        let synopses: Vec<SliceSynopsis> = pane_range
            .clone()
            .flat_map(|p| pane_synopses.get(&p).cloned().unwrap_or_default())
            .collect();
        let window_total: u64 = synopses.iter().map(|s| s.count).sum();
        let start = window_start_pane * config.slide;
        let end = start + config.window_len;
        if window_total == 0 {
            results.push(SlidingWindowResult {
                start,
                end,
                value: None,
                total_events: 0,
            });
        } else {
            let k = config.quantile.pos(window_total)?;
            let selection = select(&synopses, k, config.strategy)?;
            let runs: Vec<crate::shared::SharedRun> = selection
                .candidates
                .iter()
                .map(|id| {
                    let slice = pane_slices.get(id).ok_or(DemaError::MissingCandidate {
                        slice: id.to_string(),
                    })?;
                    if fetched.insert(*id) {
                        stats.candidate_events_sent += slice.events.len() as u64;
                    } else {
                        stats.candidate_events_saved += slice.events.len() as u64;
                    }
                    Ok(slice.events.clone())
                })
                .collect::<Result<Vec<_>>>()?;
            let event = select_kth(&runs, selection.rank_within_candidates())?;
            results.push(SlidingWindowResult {
                start,
                end,
                value: Some(event.value),
                total_events: window_total,
            });
        }
        // Evict cache entries for panes that slid out of every open window.
        window_start_pane += 1;
        let horizon = window_start_pane;
        fetched.retain(|id| id.window.0 >= horizon);
        stats.windows += 1;
    }
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_len: u64, slide: u64, gamma: u64) -> SlidingConfig {
        SlidingConfig {
            window_len,
            slide,
            gamma,
            quantile: Quantile::MEDIAN,
            strategy: SelectionStrategy::WindowCut,
        }
    }

    /// Brute-force ground truth over sliding windows.
    fn ground_truth(
        nodes: &[Vec<Event>],
        window_len: u64,
        slide: u64,
        q: Quantile,
    ) -> Vec<Option<i64>> {
        let all: Vec<Event> = nodes.iter().flatten().copied().collect();
        let min_ts = all.iter().map(|e| e.ts).min().unwrap();
        let max_ts = all.iter().map(|e| e.ts).max().unwrap();
        let first = min_ts / slide;
        let last_pane = max_ts / slide;
        let panes_per_window = window_len / slide;
        let mut out = Vec::new();
        let mut w = first;
        while w + panes_per_window <= last_pane + 1 {
            let start = w * slide;
            let end = start + window_len;
            let mut in_window: Vec<Event> = all
                .iter()
                .filter(|e| e.ts >= start && e.ts < end)
                .copied()
                .collect();
            if in_window.is_empty() {
                out.push(None);
            } else {
                in_window.sort_unstable();
                let k = q.pos(in_window.len() as u64).unwrap();
                out.push(Some(in_window[(k - 1) as usize].value));
            }
            w += 1;
        }
        out
    }

    fn stream(node: u64, n: u64, rate: u64) -> Vec<Event> {
        // Deterministic pseudo-random values, timestamps at `rate`/s.
        (0..n)
            .map(|i| {
                Event::new(
                    ((i * 7919 + node * 104729) % 10_000) as i64,
                    i * 1000 / rate,
                    node * 1_000_000 + i,
                )
            })
            .collect()
    }

    #[test]
    fn sliding_matches_ground_truth() {
        let nodes = vec![stream(0, 4000, 1000), stream(1, 4000, 1000)];
        let (results, stats) = sliding_quantiles(&nodes, cfg(1000, 250, 64)).unwrap();
        let expect = ground_truth(&nodes, 1000, 250, Quantile::MEDIAN);
        let got: Vec<Option<i64>> = results.iter().map(|r| r.value).collect();
        assert_eq!(got, expect);
        assert_eq!(stats.windows as usize, results.len());
        assert!(results.len() > 10);
    }

    #[test]
    fn tumbling_is_the_special_case_slide_equals_len() {
        let nodes = vec![stream(0, 3000, 1000), stream(1, 3000, 1000)];
        let (results, _) = sliding_quantiles(&nodes, cfg(1000, 1000, 64)).unwrap();
        let expect = ground_truth(&nodes, 1000, 1000, Quantile::MEDIAN);
        let got: Vec<Option<i64>> = results.iter().map(|r| r.value).collect();
        assert_eq!(got, expect);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn synopses_are_shared_across_overlapping_windows() {
        let nodes = vec![stream(0, 8000, 1000)];
        // len/slide = 8 overlapping windows per pane.
        let (_, sliding_stats) = sliding_quantiles(&nodes, cfg(2000, 250, 64)).unwrap();
        // Tumbling over the same panes (no sharing possible): same synopsis
        // count — panes are sliced exactly once either way.
        let (_, tumbling_stats) = sliding_quantiles(&nodes, cfg(250, 250, 64)).unwrap();
        assert_eq!(sliding_stats.synopses_sent, tumbling_stats.synopses_sent);
    }

    #[test]
    fn root_cache_avoids_refetching_candidates() {
        // Smooth values: consecutive windows select mostly the same slices.
        let nodes = vec![stream(0, 6000, 1000), stream(1, 6000, 1000)];
        let (_, stats) = sliding_quantiles(&nodes, cfg(2000, 500, 128)).unwrap();
        assert!(
            stats.candidate_events_saved > 0,
            "overlapping windows should reuse fetched slices: {stats:?}"
        );
    }

    #[test]
    fn different_quantiles() {
        let nodes = vec![stream(0, 3000, 1000), stream(1, 2000, 700)];
        for q in [0.25, 0.5, 0.9] {
            let q = Quantile::new(q).unwrap();
            let mut c = cfg(1000, 500, 32);
            c.quantile = q;
            let (results, _) = sliding_quantiles(&nodes, c).unwrap();
            let expect = ground_truth(&nodes, 1000, 500, q);
            let got: Vec<Option<i64>> = results.iter().map(|r| r.value).collect();
            assert_eq!(got, expect, "q={q}");
        }
    }

    #[test]
    fn misaligned_slide_rejected() {
        let nodes = vec![stream(0, 100, 100)];
        assert!(matches!(
            sliding_quantiles(&nodes, cfg(1000, 300, 32)),
            Err(DemaError::InvalidQuantile(_))
        ));
        assert!(matches!(
            sliding_quantiles(&nodes, cfg(1000, 0, 32)),
            Err(DemaError::InvalidQuantile(_))
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            sliding_quantiles(&[vec![], vec![]], cfg(1000, 500, 32)),
            Err(DemaError::EmptyWindow)
        ));
    }

    #[test]
    fn gap_in_stream_yields_empty_windows() {
        // Events only in the first and last second of a 5-second range.
        let mut events = stream(0, 1000, 1000);
        events.extend(stream(0, 1000, 1000).into_iter().map(|mut e| {
            e.ts += 4000;
            e.id += 50_000;
            e
        }));
        let (results, _) = sliding_quantiles(&[events], cfg(1000, 1000, 32)).unwrap();
        assert_eq!(results.len(), 5);
        assert!(results[0].value.is_some());
        assert!(results[1].value.is_none());
        assert!(results[4].value.is_some());
    }

    #[test]
    fn window_spans_are_correct() {
        let nodes = vec![stream(0, 2000, 1000)];
        let (results, _) = sliding_quantiles(&nodes, cfg(1000, 500, 32)).unwrap();
        assert_eq!(results[0].start, 0);
        assert_eq!(results[0].end, 1000);
        assert_eq!(results[1].start, 500);
        assert_eq!(results[1].end, 1500);
    }
}
