//! Single-process reference implementation of the full Dema protocol.
//!
//! [`exact_quantile_decentralized`] runs both protocol steps — local
//! sort + slice, root-side identification, candidate fetch, merge + select —
//! in one call, and reports exactly how many records would have crossed the
//! network. It is the executable specification the distributed runtime in
//! `dema-cluster` is tested against, and the workhorse of this crate's
//! property tests.

use crate::error::{DemaError, Result};
use crate::event::{Event, NodeId, WindowId};
use crate::invariant;
use crate::merge::select_kth;
use crate::numeric::{len_to_u32, len_to_u64, u64_to_f64, u64_to_usize};
use crate::quantile::Quantile;
use crate::selector::{select, Selection, SelectionStrategy};
use crate::shared::SharedRun;
use crate::slice::{cut_into_slices, Slice, SliceId, SliceSynopsis};

/// What one Dema window exchange would have put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Synopsis records sent root-wards in the identification step.
    pub synopses_sent: u64,
    /// Candidate slices requested (the cost model's `m`).
    pub candidate_slices: u64,
    /// Raw events shipped in the calculation step.
    pub candidate_events_sent: u64,
    /// Global window size `l_G`.
    pub total_events: u64,
}

impl TrafficStats {
    /// Events-on-the-wire measure used by the paper's cost model: every
    /// synopsis counts as two events (its endpoints) plus the candidate
    /// events that were not already shipped as endpoints.
    pub fn total_events_on_wire(&self) -> u64 {
        2 * self.synopses_sent
            + self
                .candidate_events_sent
                .saturating_sub(2 * self.candidate_slices)
    }

    /// Fraction of events a centralized approach would have shipped that
    /// Dema avoided, in `[0, 1]`.
    pub fn savings_vs_centralized(&self) -> f64 {
        if self.total_events == 0 {
            return 0.0;
        }
        1.0 - u64_to_f64(self.total_events_on_wire()) / u64_to_f64(self.total_events)
    }
}

/// Result of one decentralized quantile computation.
#[derive(Debug, Clone)]
pub struct DecentralizedRun {
    /// The exact quantile value.
    pub result: i64,
    /// The event carrying that value (rank `Pos(q)` under the total order).
    pub event: Event,
    /// Network traffic the exchange generated.
    pub stats: TrafficStats,
    /// The identification step's decision, for inspection.
    pub selection: Selection,
}

/// Compute the exact quantile over one global window whose events are
/// distributed across local nodes, using the full Dema protocol.
///
/// `nodes[i]` holds the (unsorted) events local node `i` collected for the
/// window. `gamma` is the slice factor; `strategy` the candidate selector.
///
/// # Errors
/// * [`DemaError::EmptyWindow`] if all nodes are empty.
/// * [`DemaError::InvalidGamma`] if `gamma < 2`.
pub fn exact_quantile_decentralized(
    nodes: &[Vec<Event>],
    q: Quantile,
    gamma: u64,
    strategy: SelectionStrategy,
) -> Result<DecentralizedRun> {
    let window = WindowId(0);
    // --- local nodes: sort and slice, emit synopses -----------------------
    let mut synopses: Vec<SliceSynopsis> = Vec::new();
    let mut slice_store: Vec<Slice> = Vec::new();
    for (i, events) in nodes.iter().enumerate() {
        let mut sorted = events.clone();
        sorted.sort_unstable();
        let l_local = len_to_u64(sorted.len());
        let slices = cut_into_slices(NodeId(len_to_u32(i)), window, sorted, gamma)?;
        let total = len_to_u32(slices.len());
        let node_synopses = slices
            .iter()
            .map(|s| s.synopsis(total))
            .collect::<Result<Vec<_>>>()?;
        invariant::check_partition(&slices, &node_synopses, l_local)?;
        synopses.extend(node_synopses);
        slice_store.extend(slices);
    }
    let total: u64 = synopses.iter().map(|s| s.count).sum();
    if total == 0 {
        return Err(DemaError::EmptyWindow);
    }

    // --- root: identification step ----------------------------------------
    invariant::check_synopsis_order(&synopses)?;
    let k = q.pos(total)?;
    let selection = select(&synopses, k, strategy)?;
    invariant::check_selection(&synopses, &selection.candidates, k, selection.offset_below)?;

    // --- calculation step: fetch candidates, merge, pick rank -------------
    let runs = fetch_candidates(&slice_store, &selection.candidates)?;
    let event = select_kth(&runs, selection.rank_within_candidates())?;
    invariant::check_selected_event(&runs, selection.rank_within_candidates(), &event)?;
    invariant::check_true_rank(nodes.iter().flatten().map(|e| e.value), k, event.value)?;

    let stats = TrafficStats {
        synopses_sent: len_to_u64(synopses.len()),
        candidate_slices: len_to_u64(selection.candidates.len()),
        candidate_events_sent: selection.candidate_events,
        total_events: total,
    };
    Ok(DecentralizedRun {
        result: event.value,
        event,
        stats,
        selection,
    })
}

/// Look up the requested candidate slices in the local nodes' stores.
///
/// Returns shared views into the stored windows: "fetching" a candidate is
/// a refcount bump, not an event copy.
fn fetch_candidates(store: &[Slice], wanted: &[SliceId]) -> Result<Vec<SharedRun>> {
    wanted
        .iter()
        .map(|id| {
            store
                .iter()
                .find(|s| s.id == *id)
                .map(|s| s.events.clone())
                .ok_or(DemaError::MissingCandidate {
                    slice: id.to_string(),
                })
        })
        .collect()
}

/// Ground truth: the quantile by fully sorting all events centrally (what
/// the centralized baseline computes). Dema must match this bit-for-bit.
///
/// # Errors
/// [`DemaError::EmptyWindow`] if no events are present.
pub fn quantile_ground_truth(nodes: &[Vec<Event>], q: Quantile) -> Result<Event> {
    let mut all: Vec<Event> = nodes.iter().flatten().copied().collect();
    if all.is_empty() {
        return Err(DemaError::EmptyWindow);
    }
    all.sort_unstable();
    let k = q.pos(len_to_u64(all.len()))?;
    Ok(all[u64_to_usize(k - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(vals: &[i64]) -> Vec<Event> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Event::new(v, 0, i as u64))
            .collect()
    }

    const ALL: [SelectionStrategy; 3] = [
        SelectionStrategy::WindowCut,
        SelectionStrategy::ClassifiedScan,
        SelectionStrategy::NoCut,
    ];

    #[test]
    fn median_of_two_disjoint_nodes() {
        let a: Vec<Event> = (0..1000).map(|i| Event::new(i, 0, i as u64)).collect();
        let b: Vec<Event> = (1000..2000).map(|i| Event::new(i, 0, i as u64)).collect();
        let truth = quantile_ground_truth(&[a.clone(), b.clone()], Quantile::MEDIAN).unwrap();
        for strat in ALL {
            let run =
                exact_quantile_decentralized(&[a.clone(), b.clone()], Quantile::MEDIAN, 100, strat)
                    .unwrap();
            assert_eq!(run.result, truth.value, "{strat:?}");
        }
    }

    #[test]
    fn interleaved_nodes_all_quantiles() {
        let a: Vec<Event> = (0..500).map(|i| Event::new(i * 2, 0, i as u64)).collect();
        let b: Vec<Event> = (0..500)
            .map(|i| Event::new(i * 2 + 1, 0, 1000 + i as u64))
            .collect();
        for q in [
            Quantile::P25,
            Quantile::MEDIAN,
            Quantile::P75,
            Quantile::new(0.3).unwrap(),
        ] {
            let truth = quantile_ground_truth(&[a.clone(), b.clone()], q).unwrap();
            for strat in ALL {
                let run =
                    exact_quantile_decentralized(&[a.clone(), b.clone()], q, 64, strat).unwrap();
                assert_eq!(run.result, truth.value, "{q} {strat:?}");
            }
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let a = events(&[5; 100]);
        let b = events(&[5; 50]);
        let run = exact_quantile_decentralized(
            &[a, b],
            Quantile::MEDIAN,
            10,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(run.result, 5);
    }

    #[test]
    fn single_node_single_event() {
        let run = exact_quantile_decentralized(
            &[events(&[42])],
            Quantile::MEDIAN,
            10,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(run.result, 42);
        assert_eq!(run.stats.total_events, 1);
    }

    #[test]
    fn empty_nodes_are_skipped() {
        let run = exact_quantile_decentralized(
            &[events(&[]), events(&[1, 2, 3]), events(&[])],
            Quantile::MEDIAN,
            10,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(run.result, 2);
    }

    #[test]
    fn all_empty_is_error() {
        assert_eq!(
            exact_quantile_decentralized(
                &[vec![], vec![]],
                Quantile::MEDIAN,
                10,
                SelectionStrategy::WindowCut
            )
            .unwrap_err(),
            DemaError::EmptyWindow
        );
        assert_eq!(
            quantile_ground_truth(&[vec![]], Quantile::MEDIAN).unwrap_err(),
            DemaError::EmptyWindow
        );
    }

    #[test]
    fn traffic_is_far_below_centralized_for_disjoint_ranges() {
        let a: Vec<Event> = (0..10_000).map(|i| Event::new(i, 0, i as u64)).collect();
        let b: Vec<Event> = (10_000..20_000)
            .map(|i| Event::new(i, 0, i as u64))
            .collect();
        let run = exact_quantile_decentralized(
            &[a, b],
            Quantile::MEDIAN,
            500,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(run.stats.total_events, 20_000);
        assert!(run.stats.total_events_on_wire() < 1200, "{:?}", run.stats);
        assert!(run.stats.savings_vs_centralized() > 0.9);
    }

    #[test]
    fn skewed_scale_rates_still_exact() {
        // Dema #10 situation: node b's values are 10x node a's.
        let a: Vec<Event> = (0..2000)
            .map(|i| Event::new(i % 700, i as u64, i as u64))
            .collect();
        let b: Vec<Event> = (0..2000)
            .map(|i| Event::new((i % 700) * 10, i as u64, 5000 + i as u64))
            .collect();
        let q = Quantile::new(0.3).unwrap();
        let truth = quantile_ground_truth(&[a.clone(), b.clone()], q).unwrap();
        for strat in ALL {
            let run = exact_quantile_decentralized(&[a.clone(), b.clone()], q, 128, strat).unwrap();
            assert_eq!(run.result, truth.value, "{strat:?}");
        }
    }

    #[test]
    fn gamma_larger_than_windows() {
        let a = events(&[3, 1, 2]);
        let b = events(&[6, 4, 5]);
        let run = exact_quantile_decentralized(
            &[a, b],
            Quantile::MEDIAN,
            1_000_000,
            SelectionStrategy::WindowCut,
        )
        .unwrap();
        assert_eq!(run.result, 3);
    }

    #[test]
    fn stats_events_on_wire_formula() {
        let stats = TrafficStats {
            synopses_sent: 10,
            candidate_slices: 2,
            candidate_events_sent: 100,
            total_events: 1000,
        };
        // 2*10 synopsis events + (100 - 2*2) candidate events
        assert_eq!(stats.total_events_on_wire(), 20 + 96);
        assert!((stats.savings_vs_centralized() - (1.0 - 116.0 / 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn savings_zero_for_empty_stats() {
        assert_eq!(TrafficStats::default().savings_vs_centralized(), 0.0);
    }
}
