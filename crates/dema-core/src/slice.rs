//! Slices and slice synopses.
//!
//! When a local window closes, its (sorted) events are cut into *slices* of
//! roughly γ events each (§3.1). For every slice, only a small **synopsis**
//! travels to the root during the identification step: the first and last
//! event values, the event count, and the slice's position among its node's
//! slices. The raw events of a slice are only shipped if the root selects the
//! slice as a candidate.

use crate::error::{DemaError, Result};
use crate::event::{Event, NodeId, WindowId};
use crate::numeric::{len_to_u32, len_to_u64, u64_to_usize};
use crate::shared::SharedRun;

/// Globally unique identifier of a slice: which node produced it, for which
/// window, and its index within that node's sorted slice sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SliceId {
    /// Producing local node.
    pub node: NodeId,
    /// Global window this slice belongs to.
    pub window: WindowId,
    /// 0-based index of the slice within the node's local window.
    pub index: u32,
}

impl std::fmt::Display for SliceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/s{}", self.node, self.window, self.index)
    }
}

/// The statistical summary of one slice, sent root-wards during the
/// identification step.
///
/// Invariant: `first <= last` and `count >= 1` (the slicer produces slices of
/// at least two events whenever the window has two or more).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSynopsis {
    /// Identity of the summarized slice.
    pub id: SliceId,
    /// Smallest event value in the slice (events are sorted).
    pub first: i64,
    /// Largest event value in the slice.
    pub last: i64,
    /// Number of events in the slice.
    pub count: u64,
    /// Total number of slices the producing node cut its window into.
    /// Lets the root detect missing synopses.
    pub total_slices: u32,
}

impl SliceSynopsis {
    /// `true` if this slice's value interval overlaps `other`'s.
    ///
    /// Intervals are closed; touching endpoints count as overlap because an
    /// equal value could belong to either slice in the global order.
    #[inline]
    pub fn overlaps(&self, other: &SliceSynopsis) -> bool {
        self.first <= other.last && other.first <= self.last
    }

    /// `true` if this slice's value interval lies entirely within `other`'s
    /// (the paper's *cover-slice* relation: `self` is covered by `other`).
    #[inline]
    pub fn covered_by(&self, other: &SliceSynopsis) -> bool {
        other.first <= self.first && self.last <= other.last && self.id != other.id
    }
}

/// A slice with its events, as held on the local node (and shipped to the
/// root when selected as a candidate).
///
/// The events are a [`SharedRun`]: all slices cut from one window share the
/// window's single sorted buffer, and cloning a slice (to answer a candidate
/// request, say) bumps a refcount instead of copying events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Identity of the slice.
    pub id: SliceId,
    /// Events of the slice in ascending order.
    pub events: SharedRun,
}

impl Slice {
    /// Build the synopsis of this slice.
    ///
    /// # Errors
    /// Returns [`DemaError::EmptyWindow`] for an empty slice (the slicer
    /// never produces one; this guards direct construction).
    pub fn synopsis(&self, total_slices: u32) -> Result<SliceSynopsis> {
        let (Some(first), Some(last)) = (self.events.first(), self.events.last()) else {
            return Err(DemaError::EmptyWindow);
        };
        debug_assert!(crate::event::is_sorted(&self.events));
        Ok(SliceSynopsis {
            id: self.id,
            first: first.value,
            last: last.value,
            count: len_to_u64(self.events.len()),
            total_slices,
        })
    }

    /// Verify delivered candidate events against the synopsis the root holds.
    ///
    /// Used by the root in the calculation step to detect corruption or
    /// truncation in transit.
    pub fn verify_against(&self, syn: &SliceSynopsis) -> Result<()> {
        if self.id != syn.id {
            return Err(DemaError::CorruptCandidate(format!(
                "slice id mismatch: got {}, expected {}",
                self.id, syn.id
            )));
        }
        if len_to_u64(self.events.len()) != syn.count {
            return Err(DemaError::CorruptCandidate(format!(
                "slice {}: {} events delivered, synopsis says {}",
                self.id,
                self.events.len(),
                syn.count
            )));
        }
        let (Some(first), Some(last)) = (self.events.first(), self.events.last()) else {
            return Err(DemaError::CorruptCandidate(format!(
                "slice {}: empty delivery for a synopsis claiming {} events",
                self.id, syn.count
            )));
        };
        if first.value != syn.first || last.value != syn.last {
            return Err(DemaError::CorruptCandidate(format!(
                "slice {}: endpoints [{}, {}] disagree with synopsis [{}, {}]",
                self.id, first.value, last.value, syn.first, syn.last
            )));
        }
        if !crate::event::is_sorted(&self.events) {
            return Err(DemaError::CorruptCandidate(format!(
                "slice {}: events not sorted",
                self.id
            )));
        }
        Ok(())
    }
}

/// Cut a sorted event run into slices of `gamma` events.
///
/// The final slice may be smaller. If it would contain a single event it is
/// folded into the previous slice (the paper requires every slice to contain
/// at least two events, since a synopsis needs two endpoints); a window with
/// exactly one event yields one single-event slice as a degenerate case.
///
/// The sorted buffer is moved into a single shared allocation; every slice
/// is a [`SharedRun`] view into it, so cutting is O(slices), not O(events),
/// and no event is ever copied.
///
/// # Errors
/// * [`DemaError::InvalidGamma`] if `gamma < 2`.
///
/// # Panics
/// Debug-asserts that `events` is sorted.
// hot-path: slicer
pub fn cut_into_slices(
    node: NodeId,
    window: WindowId,
    events: Vec<Event>,
    gamma: u64,
) -> Result<Vec<Slice>> {
    let _phase = crate::alloc::enter_phase(crate::alloc::Phase::Slice);
    if gamma < 2 {
        return Err(DemaError::InvalidGamma(gamma));
    }
    debug_assert!(crate::event::is_sorted(&events));
    if events.is_empty() {
        return Ok(Vec::new()); // lint: allow(R15): Vec::new is allocation-free; cold empty-window return
    }
    let mut bounds: Vec<usize> = (0..events.len()).step_by(u64_to_usize(gamma)).collect();
    bounds.push(events.len());
    // Fold a trailing single-event slice into its predecessor.
    if bounds.len() >= 3 && bounds[bounds.len() - 1] - bounds[bounds.len() - 2] == 1 {
        let last = bounds.len() - 2;
        bounds.remove(last);
    }

    let run = SharedRun::from_vec(events);
    let mut slices = Vec::with_capacity(bounds.len() - 1);
    for (index, pair) in bounds.windows(2).enumerate() {
        slices.push(Slice {
            id: SliceId {
                node,
                window,
                index: len_to_u32(index),
            },
            events: run.slice(pair[0]..pair[1]),
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64) -> Event {
        Event::new(v, 0, v as u64)
    }

    fn sorted_events(n: i64) -> Vec<Event> {
        (0..n).map(ev).collect()
    }

    fn sid(index: u32) -> SliceId {
        SliceId {
            node: NodeId(1),
            window: WindowId(0),
            index,
        }
    }

    #[test]
    fn cut_exact_multiple() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].events.len(), 5);
        assert_eq!(slices[1].events.len(), 5);
        assert_eq!(slices[0].id, sid(0));
        assert_eq!(slices[1].id, sid(1));
    }

    #[test]
    fn cut_with_smaller_tail() {
        // Paper's example: l_a = 1000, γ = 150 → 7 slices, last holds 100.
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(1000), 150).unwrap();
        assert_eq!(slices.len(), 7);
        assert!(slices[..6].iter().all(|s| s.events.len() == 150));
        assert_eq!(slices[6].events.len(), 100);
    }

    #[test]
    fn single_trailing_event_is_folded_into_previous_slice() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(11), 5).unwrap();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].events.len(), 5);
        assert_eq!(slices[1].events.len(), 6);
    }

    #[test]
    fn slices_partition_the_window_in_order() {
        let events = sorted_events(37);
        let slices = cut_into_slices(NodeId(2), WindowId(3), events.clone(), 7).unwrap();
        let rejoined: Vec<Event> = slices
            .iter()
            .flat_map(|s| s.events.iter().copied())
            .collect();
        assert_eq!(rejoined, events);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.id.index as usize, i);
            assert_eq!(s.id.node, NodeId(2));
            assert_eq!(s.id.window, WindowId(3));
        }
    }

    #[test]
    fn empty_window_yields_no_slices() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), Vec::new(), 10).unwrap();
        assert!(slices.is_empty());
    }

    #[test]
    fn one_event_window_yields_degenerate_slice() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(1), 10).unwrap();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].events.len(), 1);
        let syn = slices[0].synopsis(1).unwrap();
        assert_eq!(syn.first, syn.last);
    }

    #[test]
    fn gamma_below_two_rejected() {
        assert_eq!(
            cut_into_slices(NodeId(1), WindowId(0), sorted_events(5), 1),
            Err(DemaError::InvalidGamma(1))
        );
        assert_eq!(
            cut_into_slices(NodeId(1), WindowId(0), sorted_events(5), 0),
            Err(DemaError::InvalidGamma(0))
        );
    }

    #[test]
    fn synopsis_reports_endpoints_and_count() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        let syn = slices[1].synopsis(2).unwrap();
        assert_eq!(syn.first, 5);
        assert_eq!(syn.last, 9);
        assert_eq!(syn.count, 5);
        assert_eq!(syn.total_slices, 2);
        assert_eq!(syn.id, sid(1));
    }

    #[test]
    fn overlap_relation() {
        let mk = |index, first, last| SliceSynopsis {
            id: sid(index),
            first,
            last,
            count: 2,
            total_slices: 3,
        };
        let a = mk(0, 0, 10);
        let b = mk(1, 10, 20); // touching endpoint counts as overlap
        let c = mk(2, 11, 20);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn cover_relation() {
        let mk = |index, first, last| SliceSynopsis {
            id: sid(index),
            first,
            last,
            count: 2,
            total_slices: 3,
        };
        let big = mk(0, 0, 100);
        let inner = mk(1, 10, 20);
        let partial = mk(2, 50, 150);
        assert!(inner.covered_by(&big));
        assert!(!big.covered_by(&inner));
        assert!(!partial.covered_by(&big));
        // A slice does not cover itself.
        assert!(!big.covered_by(&big));
    }

    /// Rebuild a slice with its events replaced by a mutated copy
    /// (SharedRun views are immutable, so tampering means re-wrapping).
    fn tamper(slice: &Slice, mutate: impl FnOnce(&mut Vec<Event>)) -> Slice {
        let mut events = slice.events.to_vec();
        mutate(&mut events);
        Slice {
            id: slice.id,
            events: events.into(),
        }
    }

    #[test]
    fn verify_detects_count_mismatch() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        let syn = slices[0].synopsis(2).unwrap();
        let tampered = tamper(&slices[0], |ev| {
            ev.pop();
        });
        assert!(matches!(
            tampered.verify_against(&syn),
            Err(DemaError::CorruptCandidate(_))
        ));
    }

    #[test]
    fn verify_detects_endpoint_mismatch() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        let syn = slices[0].synopsis(2).unwrap();
        let tampered = tamper(&slices[0], |ev| ev[0].value = -99);
        assert!(matches!(
            tampered.verify_against(&syn),
            Err(DemaError::CorruptCandidate(_))
        ));
    }

    #[test]
    fn slices_share_one_backing_buffer() {
        use crate::shared::SharedRun;
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(20), 5).unwrap();
        assert_eq!(slices.len(), 4);
        for pair in slices.windows(2) {
            assert!(SharedRun::ptr_eq(&pair[0].events, &pair[1].events));
        }
        // Cloning a slice (what the responder does) also shares, not copies.
        let served = slices[2].clone();
        assert!(SharedRun::ptr_eq(&served.events, &slices[0].events));
    }

    #[test]
    fn verify_accepts_faithful_delivery() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        let syn = slices[1].synopsis(2).unwrap();
        assert!(slices[1].verify_against(&syn).is_ok());
    }

    #[test]
    fn verify_detects_id_mismatch() {
        let slices = cut_into_slices(NodeId(1), WindowId(0), sorted_events(10), 5).unwrap();
        let syn = slices[0].synopsis(2).unwrap();
        assert!(matches!(
            slices[1].verify_against(&syn),
            Err(DemaError::CorruptCandidate(_))
        ));
    }
}
