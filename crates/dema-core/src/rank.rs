//! Rank-interval arithmetic over slice synopses.
//!
//! The root node never sees raw events during the identification step; it
//! only knows, per slice, the value interval `[first, last]` and the event
//! count. Over *all* orderings of the global window consistent with that
//! information, each slice `S` occupies a range of possible ranks:
//!
//! * `min_start(S) = 1 + Σ_{T≠S} count(T) · [last(T) < first(S)]` — the
//!   best-case (smallest possible) rank of S's smallest event: only slices
//!   guaranteed to lie entirely below S can precede it.
//! * `max_end(S) = Σ_T count(T) · [first(T) ≤ last(S)]` — the worst-case
//!   (largest possible) rank of S's largest event: any slice whose interval
//!   starts at or below S's maximum might contribute events not after S.
//!   (The sum includes S itself, which accounts for the `+ count(S)` term.)
//!
//! Ties are treated conservatively (`≤` in `max_end`), so the intervals are
//! sound for any tie-breaking rule. These are the `Pos(start)`/`Pos(end)`
//! bounds of the paper generalized to arbitrarily overlapping slices, and
//! they drive candidate selection in [`crate::selector`].
//!
//! Complexity: `O(S log S)` for `S` synopses (two sorts + binary searches).

use crate::slice::SliceSynopsis;

/// The possible global-rank range of one slice (1-based, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankInterval {
    /// Smallest possible rank of the slice's smallest event.
    pub min_start: u64,
    /// Largest possible rank of the slice's largest event.
    pub max_end: u64,
}

impl RankInterval {
    /// `true` if rank `k` may fall inside this slice.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        self.min_start <= k && k <= self.max_end
    }

    /// `true` if every event of the slice is certain to rank before `k`.
    #[inline]
    pub fn entirely_before(&self, k: u64) -> bool {
        self.max_end < k
    }

    /// `true` if every event of the slice is certain to rank after `k`.
    #[inline]
    pub fn entirely_after(&self, k: u64) -> bool {
        self.min_start > k
    }
}

/// Prefix-sum index over synopsis endpoints for `O(log S)` rank-bound
/// queries. Build once per identification step, query per slice.
#[derive(Debug, Clone)]
pub struct RankIndex {
    /// `(last, count)` sorted by `last`, with `below_prefix[i]` = total count
    /// of the first `i` entries.
    lasts: Vec<i64>,
    below_prefix: Vec<u64>,
    /// `(first, count)` sorted by `first`.
    firsts: Vec<i64>,
    le_prefix: Vec<u64>,
    total: u64,
}

impl RankIndex {
    /// Build the index from all synopses of a global window.
    pub fn build(synopses: &[SliceSynopsis]) -> RankIndex {
        let mut by_last: Vec<(i64, u64)> = synopses.iter().map(|s| (s.last, s.count)).collect();
        by_last.sort_unstable();
        let mut by_first: Vec<(i64, u64)> = synopses.iter().map(|s| (s.first, s.count)).collect();
        by_first.sort_unstable();

        let prefix = |v: &[(i64, u64)]| {
            let mut acc = 0u64;
            let mut out = Vec::with_capacity(v.len() + 1);
            out.push(0);
            for &(_, c) in v {
                acc += c;
                out.push(acc);
            }
            out
        };
        let below_prefix = prefix(&by_last);
        let le_prefix = prefix(&by_first);
        RankIndex {
            total: below_prefix.last().copied().unwrap_or(0),
            lasts: by_last.into_iter().map(|(v, _)| v).collect(),
            below_prefix,
            firsts: by_first.into_iter().map(|(v, _)| v).collect(),
            le_prefix,
        }
    }

    /// Total number of events across all synopses (`l_G`).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of events guaranteed to have value `< v` (their slice's `last`
    /// lies strictly below `v`).
    #[inline]
    pub fn guaranteed_below(&self, v: i64) -> u64 {
        let idx = self.lasts.partition_point(|&last| last < v);
        self.below_prefix[idx]
    }

    /// Number of events that *might* have value `<= v` (their slice's
    /// `first` lies at or below `v`).
    #[inline]
    pub fn possibly_le(&self, v: i64) -> u64 {
        let idx = self.firsts.partition_point(|&first| first <= v);
        self.le_prefix[idx]
    }

    /// Rank interval of one slice.
    #[inline]
    pub fn interval(&self, s: &SliceSynopsis) -> RankInterval {
        RankInterval {
            min_start: 1 + self.guaranteed_below(s.first),
            max_end: self.possibly_le(s.last),
        }
    }
}

/// Compute the rank interval of every synopsis, aligned with the input order.
pub fn rank_intervals(synopses: &[SliceSynopsis]) -> Vec<RankInterval> {
    let index = RankIndex::build(synopses);
    synopses.iter().map(|s| index.interval(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NodeId, WindowId};
    use crate::slice::SliceId;

    fn syn(node: u32, index: u32, first: i64, last: i64, count: u64) -> SliceSynopsis {
        SliceSynopsis {
            id: SliceId {
                node: NodeId(node),
                window: WindowId(0),
                index,
            },
            first,
            last,
            count,
            total_slices: 0,
        }
    }

    #[test]
    fn disjoint_slices_get_exact_consecutive_intervals() {
        // Paper's Figure 2 situation: no overlap between slices — rank
        // intervals collapse to the exact consecutive positions.
        let s = vec![
            syn(0, 0, 0, 9, 10),
            syn(1, 0, 10, 19, 10),
            syn(0, 1, 20, 29, 10),
        ];
        let iv = rank_intervals(&s);
        assert_eq!(
            iv[0],
            RankInterval {
                min_start: 1,
                max_end: 10
            }
        );
        assert_eq!(
            iv[1],
            RankInterval {
                min_start: 11,
                max_end: 20
            }
        );
        assert_eq!(
            iv[2],
            RankInterval {
                min_start: 21,
                max_end: 30
            }
        );
    }

    #[test]
    fn overlapping_slices_widen_intervals() {
        let s = vec![syn(0, 0, 0, 15, 10), syn(1, 0, 10, 25, 10)];
        let iv = rank_intervals(&s);
        // Neither slice is guaranteed below the other.
        assert_eq!(
            iv[0],
            RankInterval {
                min_start: 1,
                max_end: 20
            }
        );
        assert_eq!(
            iv[1],
            RankInterval {
                min_start: 1,
                max_end: 20
            }
        );
    }

    #[test]
    fn touching_endpoints_are_conservative() {
        // b.first == a.last: a tie — b's events could interleave with a's.
        let s = vec![syn(0, 0, 0, 10, 5), syn(1, 0, 10, 20, 5)];
        let iv = rank_intervals(&s);
        assert_eq!(iv[0].max_end, 10); // b might contribute nothing <= 10? No: b.first <= 10 counts.
        assert_eq!(iv[1].min_start, 1); // a is NOT guaranteed below b (a.last == b.first)
    }

    #[test]
    fn cover_slice_is_contained_in_coverers_interval() {
        let s = vec![syn(0, 0, 0, 100, 50), syn(1, 0, 40, 60, 10)];
        let iv = rank_intervals(&s);
        assert!(iv[0].min_start <= iv[1].min_start);
        assert!(iv[1].max_end <= iv[0].max_end);
    }

    #[test]
    fn intervals_are_sound_for_every_true_arrangement() {
        // Construct concrete events, derive synopses, and check that the
        // true rank range of each slice lies within the computed interval.
        use crate::event::Event;
        use crate::slice::cut_into_slices;
        let mut all: Vec<(usize, Event)> = Vec::new();
        let runs: Vec<Vec<i64>> = vec![
            vec![1, 3, 5, 7, 9, 11],
            vec![4, 4, 4, 8, 8, 20],
            vec![2, 6, 10, 14, 18, 22],
        ];
        let mut synopses = Vec::new();
        let mut slice_of_run = Vec::new();
        for (n, vals) in runs.iter().enumerate() {
            let events: Vec<Event> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| Event::new(v, 0, (n * 100 + i) as u64))
                .collect();
            let slices = cut_into_slices(NodeId(n as u32), WindowId(0), events, 3).unwrap();
            for s in &slices {
                synopses.push(s.synopsis(slices.len() as u32).unwrap());
                for e in &s.events {
                    all.push((synopses.len() - 1, *e));
                }
                slice_of_run.push(s.clone());
            }
        }
        all.sort_by_key(|&(_, e)| e);
        let iv = rank_intervals(&synopses);
        for (rank0, &(slice_idx, _)) in all.iter().enumerate() {
            let rank = rank0 as u64 + 1;
            assert!(
                iv[slice_idx].min_start <= rank && rank <= iv[slice_idx].max_end,
                "rank {rank} of slice {slice_idx} outside {:?}",
                iv[slice_idx]
            );
        }
    }

    #[test]
    fn total_counts_all_events() {
        let s = vec![syn(0, 0, 0, 5, 7), syn(1, 0, 2, 9, 13)];
        assert_eq!(RankIndex::build(&s).total(), 20);
    }

    #[test]
    fn empty_input() {
        let index = RankIndex::build(&[]);
        assert_eq!(index.total(), 0);
        assert_eq!(index.guaranteed_below(5), 0);
        assert_eq!(index.possibly_le(5), 0);
    }

    #[test]
    fn duplicate_heavy_slices() {
        // All slices the same constant value: nothing guaranteed below,
        // everything possibly <=.
        let s: Vec<_> = (0..4).map(|n| syn(n, 0, 42, 42, 5)).collect();
        let iv = rank_intervals(&s);
        for i in &iv {
            assert_eq!(
                *i,
                RankInterval {
                    min_start: 1,
                    max_end: 20
                }
            );
        }
    }

    #[test]
    fn interval_predicates() {
        let iv = RankInterval {
            min_start: 10,
            max_end: 20,
        };
        assert!(iv.contains(10) && iv.contains(20) && iv.contains(15));
        assert!(!iv.contains(9) && !iv.contains(21));
        assert!(iv.entirely_before(21) && !iv.entirely_before(20));
        assert!(iv.entirely_after(9) && !iv.entirely_after(10));
    }
}
