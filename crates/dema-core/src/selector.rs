//! Candidate-slice selection — the identification step and the window-cut
//! algorithm (§3.1–3.2, Algorithm 1).
//!
//! Given all slice synopses of a global window and a target rank
//! `k = Pos(q)`, the selector decides which slices the root must fetch
//! (the *candidates*) and how many events of unfetched slices are certain to
//! rank before `k` (the *offset*). Exactness argument:
//!
//! * With the rank intervals of [`crate::rank`], a slice is a candidate iff
//!   `min_start ≤ k ≤ max_end`. Every non-candidate therefore satisfies
//!   `max_end < k` (all its events rank before `k` in every consistent
//!   ordering) or `min_start > k` (all rank after).
//! * Let `offset = Σ count` over the `max_end < k` non-candidates. Exactly
//!   `k − 1` events rank before the target globally, `offset` of them are
//!   never fetched, so the target sits at position `k − offset` (1-based)
//!   of the merged candidate multiset. Equal values are interchangeable at
//!   any rank, so the selected *value* is exact regardless of tie-breaking.
//! * Any superset of the minimal candidate set stays exact under the same
//!   offset rule (extra fetched events rank strictly before/after and shift
//!   indices consistently), which is why the scan-based variant below may
//!   safely over-approximate.
//!
//! Three strategies are provided:
//!
//! * [`SelectionStrategy::WindowCut`] — the rank-bound form above; the
//!   tightest set, `O(S log S)`. This is the default and the paper's
//!   window-cut algorithm in its exact formulation.
//! * [`SelectionStrategy::ClassifiedScan`] — a faithful rendering of the
//!   paper's Algorithm 1: classify slices (separate / compound / cover),
//!   locate the overlap group holding `k`, then scan from the group's left
//!   and right edges towards the quantile position, keeping slices that
//!   overlap the `[k − γ, k + γ]` rank range and cover-slices enclosed by
//!   kept candidates. May keep slightly more than `WindowCut`.
//! * [`SelectionStrategy::NoCut`] — fetch the whole overlap group containing
//!   `k`. The ablation baseline showing what Algorithm 1 saves when slices
//!   overlap heavily (Figure 8b's left-skew scenario).

use crate::classify::{classify, SliceKind};
use crate::error::{DemaError, Result};
use crate::rank::RankIndex;
use crate::slice::{SliceId, SliceSynopsis};

/// Which candidate-selection algorithm the root runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Exact rank-interval window-cut (default).
    #[default]
    WindowCut,
    /// The paper's Algorithm 1 as written: classification + two-sided scan.
    ClassifiedScan,
    /// No cut: fetch the entire overlap component containing the rank.
    NoCut,
}

/// Outcome of the identification step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Slices the root must fetch, ascending by `(first, last, id)`.
    pub candidates: Vec<SliceId>,
    /// Events of *unfetched* slices certain to rank before the target.
    pub offset_below: u64,
    /// Total number of candidate events that will travel in the
    /// calculation step.
    pub candidate_events: u64,
    /// Global window size `l_G` implied by the synopses.
    pub total_events: u64,
    /// The target rank `Pos(q)` this selection was computed for.
    pub target_rank: u64,
}

impl Selection {
    /// 1-based position of the target within the merged candidate events.
    #[inline]
    pub fn rank_within_candidates(&self) -> u64 {
        self.target_rank - self.offset_below
    }
}

/// Run the identification step: choose candidate slices for rank `k`.
///
/// # Errors
/// * [`DemaError::EmptyWindow`] if there are no synopses / zero events.
/// * [`DemaError::RankOutOfRange`] if `k` is 0 or exceeds `l_G`.
pub fn select(
    synopses: &[SliceSynopsis],
    k: u64,
    strategy: SelectionStrategy,
) -> Result<Selection> {
    let total: u64 = synopses.iter().map(|s| s.count).sum();
    if total == 0 {
        return Err(DemaError::EmptyWindow);
    }
    if k == 0 || k > total {
        return Err(DemaError::RankOutOfRange { rank: k, total });
    }
    let picked: Vec<usize> = match strategy {
        SelectionStrategy::WindowCut => window_cut(synopses, k),
        SelectionStrategy::ClassifiedScan => classified_scan(synopses, k),
        SelectionStrategy::NoCut => no_cut(synopses, k),
    };
    finish(synopses, k, total, picked)
}

/// Assemble the [`Selection`] from picked indices, computing the offset over
/// the slices that were *not* picked.
fn finish(
    synopses: &[SliceSynopsis],
    k: u64,
    total: u64,
    mut picked: Vec<usize>,
) -> Result<Selection> {
    picked.sort_unstable_by_key(|&i| (synopses[i].first, synopses[i].last, synopses[i].id));
    picked.dedup();
    let index = RankIndex::build(synopses);
    let mut offset_below = 0u64;
    let mut candidate_events = 0u64;
    let mut is_picked = vec![false; synopses.len()];
    for &i in &picked {
        is_picked[i] = true;
        candidate_events += synopses[i].count;
    }
    for (i, s) in synopses.iter().enumerate() {
        if !is_picked[i] {
            let iv = index.interval(s);
            if iv.entirely_before(k) {
                offset_below += s.count;
            } else if !iv.entirely_after(k) {
                // A strategy failed to pick a slice that may contain k:
                // would silently corrupt the result, so refuse.
                return Err(DemaError::InconsistentSynopses(format!(
                    "slice {} may contain rank {k} but was not selected",
                    s.id
                )));
            }
        }
    }
    Ok(Selection {
        candidates: picked.iter().map(|&i| synopses[i].id).collect(),
        offset_below,
        candidate_events,
        total_events: total,
        target_rank: k,
    })
}

/// Rank-bound window-cut: pick exactly the slices whose rank interval
/// contains `k`.
fn window_cut(synopses: &[SliceSynopsis], k: u64) -> Vec<usize> {
    let index = RankIndex::build(synopses);
    synopses
        .iter()
        .enumerate()
        .filter(|(_, s)| index.interval(s).contains(k))
        .map(|(i, _)| i)
        .collect()
}

/// Whole-overlap-group selection (ablation baseline).
fn no_cut(synopses: &[SliceSynopsis], k: u64) -> Vec<usize> {
    let c = classify(synopses);
    match c.group_containing_rank(k) {
        Some(g) => c.groups[g].members.clone(),
        None => Vec::new(),
    }
}

/// The paper's Algorithm 1: locate the overlap group containing `k`, then
/// scan its slices from the left edge (increasing `Pos_start`) and the right
/// edge (decreasing `Pos_end`), adding slices that overlap the
/// `[k − γ̄, k + γ̄]` rank range (γ̄ = the group's largest slice count, the
/// paper's γ) and stopping once past the quantile position. Cover-slices
/// enclosed by a kept candidate are added if they overlap the range.
fn classified_scan(synopses: &[SliceSynopsis], k: u64) -> Vec<usize> {
    let c = classify(synopses);
    let Some(gidx) = c.group_containing_rank(k) else {
        return Vec::new();
    };
    let group = &c.groups[gidx];
    if group.members.len() == 1 {
        return group.members.clone();
    }
    let index = RankIndex::build(synopses);
    let gamma = group
        .members
        .iter()
        .map(|&i| synopses[i].count)
        .max()
        .unwrap_or(2);
    let pos_left = k.saturating_sub(gamma);
    let pos_right = k.saturating_add(gamma);

    let mut keep = vec![false; synopses.len()];

    // Left scan: increasing Pos_start.
    let mut by_start: Vec<usize> = group.members.clone();
    by_start.sort_unstable_by_key(|&i| index.interval(&synopses[i]).min_start);
    for &i in &by_start {
        let iv = index.interval(&synopses[i]);
        if iv.max_end >= pos_left && iv.min_start <= k {
            keep[i] = true; // overlaps the left range
        } else if iv.min_start > k {
            break; // crossed the quantile position
        }
    }
    // Right scan: decreasing Pos_end.
    let mut by_end: Vec<usize> = group.members.clone();
    by_end.sort_unstable_by_key(|&i| std::cmp::Reverse(index.interval(&synopses[i]).max_end));
    for &i in &by_end {
        let iv = index.interval(&synopses[i]);
        if iv.min_start <= pos_right && iv.max_end >= k {
            keep[i] = true; // overlaps the right range
        } else if iv.max_end < k {
            break; // crossed the quantile position
        }
    }
    // Cover-slices enclosed by a kept candidate are candidates when they
    // overlap the quantile's rank range (their event positions relative to
    // the coverer are unknown to the root).
    for &i in &group.members {
        if let SliceKind::Cover { coverer } = c.kinds[i] {
            if keep[coverer] && index.interval(&synopses[i]).contains(k) {
                keep[i] = true;
            }
        }
    }
    (0..synopses.len()).filter(|&i| keep[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NodeId, WindowId};
    use crate::slice::SliceId;

    fn syn(node: u32, index: u32, first: i64, last: i64, count: u64) -> SliceSynopsis {
        SliceSynopsis {
            id: SliceId {
                node: NodeId(node),
                window: WindowId(0),
                index,
            },
            first,
            last,
            count,
            total_slices: 0,
        }
    }

    const ALL: [SelectionStrategy; 3] = [
        SelectionStrategy::WindowCut,
        SelectionStrategy::ClassifiedScan,
        SelectionStrategy::NoCut,
    ];

    #[test]
    fn disjoint_slices_single_candidate() {
        // Figure 2: non-overlapping slices — exactly one candidate.
        let s = vec![
            syn(0, 0, 0, 9, 150),   // ranks 1..150
            syn(1, 0, 10, 19, 150), // ranks 151..300
            syn(0, 1, 20, 29, 150), // ranks 301..450
            syn(0, 2, 30, 39, 100), // ranks 451..550
            syn(1, 1, 40, 49, 150), // ranks 551..700
        ];
        for strat in ALL {
            let sel = select(&s, 350, strat).unwrap();
            assert_eq!(sel.candidates, vec![s[2].id], "{strat:?}");
            assert_eq!(sel.offset_below, 300);
            assert_eq!(sel.rank_within_candidates(), 50);
            assert_eq!(sel.total_events, 700);
        }
    }

    #[test]
    fn boundary_ranks() {
        let s = vec![syn(0, 0, 0, 9, 10), syn(0, 1, 10, 19, 10)];
        for strat in ALL {
            let first = select(&s, 1, strat).unwrap();
            assert!(first.candidates.contains(&s[0].id));
            let last = select(&s, 20, strat).unwrap();
            assert!(last.candidates.contains(&s[1].id));
        }
    }

    #[test]
    fn overlapping_pair_both_candidates() {
        let s = vec![syn(0, 0, 0, 15, 10), syn(1, 0, 10, 25, 10)];
        for strat in ALL {
            let sel = select(&s, 10, strat).unwrap();
            assert_eq!(sel.candidates.len(), 2, "{strat:?}");
            assert_eq!(sel.offset_below, 0);
        }
    }

    #[test]
    fn window_cut_prunes_far_slices_in_large_compound() {
        // A long chain of pairwise-overlapping slices; k in the middle.
        // NoCut fetches the whole chain; WindowCut only the neighbourhood.
        let s: Vec<SliceSynopsis> = (0..20)
            .map(|i| syn(0, i, (i as i64) * 10, (i as i64) * 10 + 12, 100))
            .collect();
        let k = 1000; // middle of 2000 events
        let cut = select(&s, k, SelectionStrategy::WindowCut).unwrap();
        let nocut = select(&s, k, SelectionStrategy::NoCut).unwrap();
        assert_eq!(nocut.candidates.len(), 20);
        assert!(
            cut.candidates.len() < 6,
            "window-cut kept {}",
            cut.candidates.len()
        );
        // Every window-cut candidate is also a no-cut candidate.
        for c in &cut.candidates {
            assert!(nocut.candidates.contains(c));
        }
    }

    #[test]
    fn classified_scan_is_superset_of_window_cut() {
        let s: Vec<SliceSynopsis> = (0..15)
            .map(|i| {
                syn(
                    i % 3,
                    i / 3,
                    (i as i64) * 7,
                    (i as i64) * 7 + 20,
                    10 + (i as u64) % 5,
                )
            })
            .collect();
        let total: u64 = s.iter().map(|x| x.count).sum();
        for k in [1, total / 4, total / 2, (3 * total) / 4, total] {
            let cut = select(&s, k, SelectionStrategy::WindowCut).unwrap();
            let scan = select(&s, k, SelectionStrategy::ClassifiedScan).unwrap();
            for c in &cut.candidates {
                assert!(scan.candidates.contains(c), "k={k}: {c} missing from scan");
            }
        }
    }

    #[test]
    fn cover_slice_inside_candidate_is_selected() {
        // Big slice spans the rank; a small cover-slice hides inside it.
        let s = vec![
            syn(0, 0, 0, 100, 50), // candidate (contains the median range)
            syn(1, 0, 40, 60, 10), // cover-slice inside
            syn(0, 1, 200, 300, 40),
        ];
        for strat in ALL {
            let sel = select(&s, 30, strat).unwrap();
            assert!(sel.candidates.contains(&s[0].id), "{strat:?}");
            assert!(
                sel.candidates.contains(&s[1].id),
                "{strat:?} must include cover-slice"
            );
            assert!(!sel.candidates.contains(&s[2].id), "{strat:?}");
        }
    }

    #[test]
    fn cover_slice_outside_rank_range_is_dropped_by_window_cut() {
        // The cover-slice sits below every possible position of rank k, so
        // the exact selector can drop it even though its coverer is kept.
        let s = vec![
            syn(0, 0, 0, 100, 10),
            syn(1, 0, 0, 4, 50), // covered, but certainly all before k
            syn(2, 0, 5, 90, 10),
        ];
        // guaranteed below k=70: slice 1 max_end = 60 < 70? possibly_le(4):
        // firsts <= 4: slices 0,1 -> 60. yes.
        let sel = select(&s, 70, SelectionStrategy::WindowCut).unwrap();
        assert!(!sel.candidates.contains(&s[1].id));
        assert_eq!(sel.offset_below, 50);
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let s = vec![syn(0, 0, 0, 9, 10)];
        for strat in ALL {
            assert!(matches!(
                select(&s, 0, strat),
                Err(DemaError::RankOutOfRange { .. })
            ));
            assert!(matches!(
                select(&s, 11, strat),
                Err(DemaError::RankOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn unpicked_candidate_slice_is_refused() {
        // Defensive path: if a (buggy) strategy fails to pick a slice whose
        // rank interval contains k, `finish` must refuse rather than let a
        // silently wrong quantile escape.
        let s = vec![syn(0, 0, 0, 9, 10), syn(0, 1, 10, 19, 10)];
        let err = finish(&s, 15, 20, vec![0]).unwrap_err();
        assert!(matches!(err, DemaError::InconsistentSynopses(_)), "{err}");
    }

    #[test]
    fn empty_synopses_rejected() {
        for strat in ALL {
            assert_eq!(select(&[], 1, strat), Err(DemaError::EmptyWindow));
        }
    }

    #[test]
    fn candidates_sorted_by_value_interval() {
        let s = vec![
            syn(1, 0, 50, 60, 10),
            syn(0, 0, 45, 55, 10),
            syn(2, 0, 40, 52, 10),
        ];
        let sel = select(&s, 15, SelectionStrategy::WindowCut).unwrap();
        assert_eq!(sel.candidates.len(), 3);
        assert_eq!(sel.candidates[0], s[2].id);
        assert_eq!(sel.candidates[1], s[1].id);
        assert_eq!(sel.candidates[2], s[0].id);
    }

    #[test]
    fn candidate_events_counts_fetched_volume() {
        let s = vec![
            syn(0, 0, 0, 9, 10),
            syn(0, 1, 20, 29, 30),
            syn(0, 2, 40, 49, 10),
        ];
        let sel = select(&s, 25, SelectionStrategy::WindowCut).unwrap();
        assert_eq!(sel.candidate_events, 30);
    }

    #[test]
    fn all_strategies_agree_on_single_slice() {
        let s = vec![syn(0, 0, 5, 5, 100)];
        for strat in ALL {
            let sel = select(&s, 50, strat).unwrap();
            assert_eq!(sel.candidates, vec![s[0].id]);
            assert_eq!(sel.offset_below, 0);
        }
    }
}
