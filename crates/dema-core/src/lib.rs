// `deny` instead of `forbid`: the one sanctioned exception is the
// counting global allocator ([`alloc`]), whose `GlobalAlloc` contract is
// unsafe by nature. It carries a module-scoped `#[allow(unsafe_code)]`;
// everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # dema-core
//!
//! Core algorithm of **Dema** (EDBT 2025): exact, decentralized window
//! aggregation for non-decomposable quantile functions (median, arbitrary
//! quantiles) in edge topologies.
//!
//! Non-decomposable aggregates cannot be computed from partial results:
//! a median of medians is not the median. The classical decentralized
//! options are to ship every raw event to a root node (network-heavy) or to
//! use approximate sketches (inexact). Dema instead:
//!
//! 1. sorts events on each **local node** as they arrive into a time-based
//!    tumbling window ([`window::LocalWindow`]),
//! 2. cuts the sorted window into slices of roughly `γ` events and sends
//!    only a per-slice **synopsis** — first value, last value, count — to
//!    the root ([`slice::SliceSynopsis`]),
//! 3. on the root, computes rank intervals for every slice and selects the
//!    few **candidate slices** that can contain the target rank
//!    `Pos(q) = ⌈q·l_G⌉` ([`selector`], the *window-cut* algorithm),
//! 4. fetches only the candidate slices' events, merges the pre-sorted runs
//!    and picks the event at the target rank ([`merge`]),
//! 5. adapts `γ` per window to minimize network cost ([`gamma`]).
//!
//! The result is the *exact* quantile value with, typically, a ~99 %
//! reduction in network traffic versus centralized aggregation.
//!
//! This crate is pure: no I/O and no external effects. The algorithms are
//! single-threaded except [`par`], an opt-in deterministic sort pool whose
//! output is bit-identical to the serial path at every thread count. The
//! cluster runtime lives in `dema-cluster`, transports in `dema-net`, and
//! the wire format in `dema-wire`.
//!
//! ## Quick example
//!
//! ```
//! use dema_core::coordinator::{exact_quantile_decentralized, DecentralizedRun};
//! use dema_core::event::Event;
//! use dema_core::quantile::Quantile;
//! use dema_core::selector::SelectionStrategy;
//!
//! // Two local nodes, each with its own events for the same window.
//! let node_a: Vec<Event> = (0..1000).map(|i| Event::new(i, 0, i as u64)).collect();
//! let node_b: Vec<Event> = (500..1500).map(|i| Event::new(i, 0, i as u64)).collect();
//!
//! let run: DecentralizedRun = exact_quantile_decentralized(
//!     &[node_a, node_b],
//!     Quantile::MEDIAN,
//!     150, // γ
//!     SelectionStrategy::WindowCut,
//! )
//! .unwrap();
//!
//! assert_eq!(run.result, 749); // exact global median
//! // ... at a fraction of the 2000 events a centralized approach ships:
//! assert!(run.stats.total_events_on_wire() < 500);
//! ```

pub mod alloc;
pub mod classify;
pub mod coordinator;
pub mod error;
pub mod event;
pub mod gamma;
pub mod invariant;
pub mod merge;
pub mod multi;
pub mod numeric;
pub mod par;
pub mod quantile;
pub mod rank;
pub mod runbuf;
pub mod selector;
pub mod shared;
pub mod slice;
pub mod sliding;
pub mod sync;
pub mod window;

pub use error::{DemaError, Result};
pub use event::{Event, NodeId, WindowId};
pub use quantile::Quantile;
pub use shared::SharedRun;
pub use slice::{Slice, SliceId, SliceSynopsis};
