//! Event tuples and node/window identifiers.
//!
//! Following the paper's model (§2.3), an event is produced by a data-stream
//! node and consists of a *value*, an *event-time timestamp*, and an *id*.
//! Values are `i64` sensor readings: integer values keep comparisons total
//! (no NaN), make exactness bit-for-bit testable, and match the DEBS 2013
//! sensor schema the paper replays.

use std::cmp::Ordering;

/// Identifier of a node in the topology (local nodes and the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a (global) tumbling window.
///
/// Windows are time-based, so the id is the window's start timestamp divided
/// by the window length; every node derives the same id for the same instant
/// without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WindowId(pub u64);

impl WindowId {
    /// Window containing event-time `ts` for tumbling windows of `len` ms.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    #[inline]
    pub fn for_timestamp(ts: u64, len: u64) -> WindowId {
        assert!(len > 0, "window length must be positive");
        WindowId(ts / len)
    }

    /// Inclusive start timestamp of this window for length `len`.
    #[inline]
    pub fn start(self, len: u64) -> u64 {
        self.0 * len
    }

    /// Exclusive end timestamp of this window for length `len`.
    #[inline]
    pub fn end(self, len: u64) -> u64 {
        (self.0 + 1) * len
    }
}

impl std::fmt::Display for WindowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A single stream event: `(value, event-time, id)`.
///
/// Events are totally ordered by `(value, ts, id)`. The secondary keys give a
/// deterministic tie-break so that ranks are well-defined even with duplicate
/// values; the quantile *value* at a rank is independent of the tie-break
/// (equal values are interchangeable), but a total order keeps merges and
/// tests deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Sensor reading / measurement the quantile ranges over.
    pub value: i64,
    /// Event time (ms since epoch of the stream) assigned at the source.
    pub ts: u64,
    /// Source-assigned identifier, unique per stream node.
    pub id: u64,
}

impl Event {
    /// Create an event.
    #[inline]
    pub fn new(value: i64, ts: u64, id: u64) -> Event {
        Event { value, ts, id }
    }
}

impl Ord for Event {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        (self.value, self.ts, self.id).cmp(&(other.value, other.ts, other.id))
    }
}

impl PartialOrd for Event {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Check that `events` is sorted by the total event order.
pub fn is_sorted(events: &[Event]) -> bool {
    events.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_id_assignment() {
        assert_eq!(WindowId::for_timestamp(0, 1000), WindowId(0));
        assert_eq!(WindowId::for_timestamp(999, 1000), WindowId(0));
        assert_eq!(WindowId::for_timestamp(1000, 1000), WindowId(1));
        assert_eq!(WindowId::for_timestamp(123_456, 1000), WindowId(123));
    }

    #[test]
    fn window_bounds_roundtrip() {
        let w = WindowId::for_timestamp(4321, 1000);
        assert_eq!(w.start(1000), 4000);
        assert_eq!(w.end(1000), 5000);
        assert!(w.start(1000) <= 4321 && 4321 < w.end(1000));
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_length_panics() {
        let _ = WindowId::for_timestamp(1, 0);
    }

    #[test]
    fn event_order_is_by_value_then_ts_then_id() {
        let a = Event::new(1, 5, 9);
        let b = Event::new(2, 0, 0);
        let c = Event::new(1, 6, 0);
        let d = Event::new(1, 5, 10);
        assert!(a < b);
        assert!(a < c);
        assert!(a < d);
        assert!(d < c);
    }

    #[test]
    fn negative_values_sort_before_positive() {
        let neg = Event::new(-5, 0, 0);
        let pos = Event::new(5, 0, 0);
        assert!(neg < pos);
    }

    #[test]
    fn is_sorted_detects_order() {
        let sorted = vec![
            Event::new(1, 0, 0),
            Event::new(1, 0, 1),
            Event::new(2, 0, 0),
        ];
        let unsorted = vec![Event::new(2, 0, 0), Event::new(1, 0, 0)];
        assert!(is_sorted(&sorted));
        assert!(!is_sorted(&unsorted));
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[Event::new(0, 0, 0)]));
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(WindowId(7).to_string(), "w7");
    }
}
